//! Bench drift check: compare freshly generated `BENCH_*.json` files
//! against the checked-in baselines and flag >20% regressions.
//!
//! ```sh
//! # regenerate one or more benches somewhere fresh …
//! GTS_BENCH_OUT=/tmp/fresh/BENCH_metrics.json \
//!     cargo bench -p gts-bench --bench metrics_overhead
//! # … then hold them against the checked-in numbers
//! cargo run --release --bin bench_drift -- /tmp/fresh [baseline-dir]
//! ```
//!
//! `baseline-dir` defaults to the current directory (the workspace root,
//! where the `BENCH_*.json` files are checked in). Every numeric leaf
//! present in both files is compared under a direction inferred from its
//! key: wall/latency/overhead-style keys regress upward,
//! throughput/speedup-style keys regress downward, and neutral keys
//! (dataset sizes, counts, simulated cycles — deterministic by contract)
//! must not drift at all are reported only when they change. Exits
//! non-zero when any key regresses past the 20% gate.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const GATE: f64 = 0.20;

// ---- minimal JSON numeric-leaf extraction ------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "byte {}: expected {:?}, found {:?}",
                self.pos,
                b as char,
                other.map(|c| c as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.bytes.get(self.pos) {
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "truncated escape".to_string())?;
                    self.pos += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }

    /// Walk one JSON value, recording every numeric leaf under its dotted
    /// path into `out`.
    fn value(&mut self, path: &str, out: &mut BTreeMap<String, f64>) -> Result<(), String> {
        match self.peek().ok_or_else(|| "truncated value".to_string())? {
            b'{' => {
                self.pos += 1;
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    let sub = if path.is_empty() {
                        key
                    } else {
                        format!("{path}.{key}")
                    };
                    self.value(&sub, out)?;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("object: unexpected {other:?}")),
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                let mut i = 0usize;
                loop {
                    self.value(&format!("{path}[{i}]"), out)?;
                    i += 1;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("array: unexpected {other:?}")),
                    }
                }
            }
            b'"' => {
                self.string()?;
                Ok(())
            }
            b't' | b'f' | b'n' => {
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphabetic())
                {
                    self.pos += 1;
                }
                Ok(())
            }
            _ => {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    self.pos += 1;
                }
                let text =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
                let num: f64 = text
                    .parse()
                    .map_err(|e| format!("bad number {text:?}: {e}"))?;
                out.insert(path.to_string(), num);
                Ok(())
            }
        }
    }
}

fn numeric_leaves(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = BTreeMap::new();
    let mut p = Parser::new(&text);
    p.value("", &mut out)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(out)
}

// ---- comparison --------------------------------------------------------

/// Which way a key regresses. Wall/latency-style keys regress when they
/// grow; throughput-style keys regress when they shrink; everything else
/// (configuration, counts, simulated cycles) is deterministic by contract
/// and only reported when it changes at all.
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
    Neutral,
}

fn direction(key: &str) -> Direction {
    let key = key.to_ascii_lowercase();
    let lower = ["_ms", "_us", "wall", "overhead", "latency", "p50", "p99"];
    let higher = ["throughput", "speedup", "rps", "qps", "per_sec"];
    if higher.iter().any(|m| key.contains(m)) {
        Direction::HigherIsBetter
    } else if lower.iter().any(|m| key.contains(m)) {
        Direction::LowerIsBetter
    } else {
        Direction::Neutral
    }
}

struct Finding {
    file: String,
    key: String,
    baseline: f64,
    fresh: f64,
    regression: bool,
}

fn compare(
    file: &str,
    base: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (key, &b) in base {
        let Some(&f) = fresh.get(key) else { continue };
        let finding = |regression| Finding {
            file: file.to_string(),
            key: key.clone(),
            baseline: b,
            fresh: f,
            regression,
        };
        match direction(key) {
            Direction::LowerIsBetter if b > 0.0 && f > b * (1.0 + GATE) => {
                out.push(finding(true));
            }
            Direction::HigherIsBetter if b > 0.0 && f < b * (1.0 - GATE) => {
                out.push(finding(true));
            }
            Direction::Neutral if f != b => out.push(finding(false)),
            _ => {}
        }
    }
    out
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(fresh_dir) = args.next().map(PathBuf::from) else {
        eprintln!("usage: bench_drift <fresh-dir> [baseline-dir]");
        return ExitCode::from(2);
    };
    let base_dir = args
        .next()
        .map_or_else(|| PathBuf::from("."), PathBuf::from);

    let mut fresh_files: Vec<PathBuf> = match std::fs::read_dir(&fresh_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("bench_drift: cannot read {}: {e}", fresh_dir.display());
            return ExitCode::from(2);
        }
    };
    fresh_files.sort();
    if fresh_files.is_empty() {
        eprintln!(
            "bench_drift: no BENCH_*.json under {} — nothing to check",
            fresh_dir.display()
        );
        return ExitCode::from(2);
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for fresh_path in &fresh_files {
        let name = fresh_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("");
        let base_path = base_dir.join(name);
        if !base_path.exists() {
            println!("{name}: no checked-in baseline, skipped");
            continue;
        }
        let (base, fresh) = match (numeric_leaves(&base_path), numeric_leaves(fresh_path)) {
            (Ok(b), Ok(f)) => (b, f),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench_drift: {e}");
                return ExitCode::from(2);
            }
        };
        compared += 1;
        let findings = compare(name, &base, &fresh);
        let regressed = findings.iter().filter(|f| f.regression).count();
        regressions += regressed;
        if findings.is_empty() {
            println!(
                "{name}: ok ({} keys within the {:.0}% gate)",
                base.len(),
                GATE * 100.0
            );
        }
        for f in findings {
            let delta = if f.baseline != 0.0 {
                (f.fresh / f.baseline - 1.0) * 100.0
            } else {
                f64::INFINITY
            };
            println!(
                "{}: {} {} {} -> {} ({:+.1}%)",
                f.file,
                if f.regression {
                    "REGRESSION"
                } else {
                    "drift (info)"
                },
                f.key,
                f.baseline,
                f.fresh,
                delta,
            );
        }
    }
    println!(
        "bench_drift: {compared} file(s) compared, {regressions} regression(s) past the {:.0}% gate",
        GATE * 100.0
    );
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
