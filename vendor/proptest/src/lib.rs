//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal property-testing harness covering exactly the API surface the GTS
//! reproduction's tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) wrapping `#[test]` functions whose arguments are drawn from
//!   strategies;
//! * numeric-range strategies, [`collection::vec`], `any::<bool>()`, and
//!   [`string::string_regex`] for simple `[class]{lo,hi}` patterns;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Cases are generated deterministically (seeded by the test's name), and
//! failures report the case number — there is **no shrinking**, which is an
//! acceptable trade for an offline vendored harness.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy produced by [`crate::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// `any::<T>()` — uniform values of `T` (implemented for the types the
/// workspace samples this way).
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification of [`vec()`]: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod string {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Error parsing a regex pattern this stub does not understand.
    #[derive(Clone, Debug)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported string_regex pattern: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Strategy generating strings matching a simple character-class regex.
    pub struct RegexGeneratorStrategy {
        chars: Vec<char>,
        lo: usize,
        hi: usize, // inclusive
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let len = rng.gen_range(self.lo..=self.hi);
            (0..len)
                .map(|_| self.chars[rng.gen_range(0..self.chars.len())])
                .collect()
        }
    }

    /// Supports patterns of the form `[class]{lo,hi}` (with `a-z` ranges
    /// inside the class) — the only shape the workspace's tests use.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let err = || Error(pattern.to_string());
        let rest = pattern.strip_prefix('[').ok_or_else(err)?;
        let (class, rest) = rest.split_once(']').ok_or_else(err)?;
        let spec = rest
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(err)?;
        let (lo, hi) = spec.split_once(',').ok_or_else(err)?;
        let lo: usize = lo.trim().parse().map_err(|_| err())?;
        let hi: usize = hi.trim().parse().map_err(|_| err())?;
        if lo > hi {
            return Err(err());
        }
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (a, b) = (cs[i], cs[i + 2]);
                if a > b {
                    return Err(err());
                }
                chars.extend(a..=b);
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return Err(err());
        }
        Ok(RegexGeneratorStrategy { chars, lo, hi })
    }
}

pub mod test_runner {
    /// A failed property within one generated case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Harness configuration (`cases` = generated inputs per property).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::any;
    pub use crate::proptest;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq};
}

/// Deterministic per-test RNG: seeded from the test's name so every run
/// generates the same cases.
pub fn deterministic_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Assert a condition inside a `proptest!` property; on failure the current
/// case aborts with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Define property tests: each function's arguments are drawn from the given
/// strategies for `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::deterministic_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn string_regex_generates_matching_strings() {
        let s = crate::string::string_regex("[a-d]{0,12}").expect("pattern");
        let mut rng = crate::deterministic_rng("string_regex");
        for _ in 0..200 {
            let w = s.generate(&mut rng);
            assert!(w.len() <= 12);
            assert!(w.chars().all(|c| ('a'..='d').contains(&c)));
        }
        assert!(crate::string::string_regex("foo|bar").is_err());
    }

    #[test]
    fn vec_strategy_respects_size() {
        let s = crate::collection::vec(0u32..5, 2..7);
        let mut rng = crate::deterministic_rng("vec_strategy");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = crate::collection::vec(0u32..5, 3);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies, config, and prop_assert together.
        #[test]
        fn macro_roundtrip(x in 0u32..100, v in crate::collection::vec(0u64..10, 0..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn failing_property_panics_with_case_number() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(false, "forced failure");
                }
            }
            always_fails();
        });
        let msg = *result
            .expect_err("must panic")
            .downcast::<String>()
            .expect("string");
        assert!(msg.contains("forced failure"), "{msg}");
    }
}
