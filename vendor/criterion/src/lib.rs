//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal benchmark harness covering the API the `gts-bench` benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark runs `sample_size` timed
//! samples (after one warm-up) and prints the mean wall-clock time per
//! iteration; there is no statistical analysis or HTML report.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration of the most recent `iter` call.
    last_mean: f64,
}

impl Bencher {
    /// Time `f`: one warm-up call, then `samples` timed calls; records the
    /// mean seconds per call.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        std_black_box(f()); // warm-up, outside the timed window
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(f());
        }
        self.last_mean = start.elapsed().as_secs_f64() / self.samples as f64;
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its mean time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            last_mean: 0.0,
        };
        f(&mut b);
        let mean = Duration::from_secs_f64(b.last_mean);
        match self.throughput {
            Some(Throughput::Elements(n)) if b.last_mean > 0.0 => println!(
                "bench {}/{}: {:?}/iter ({:.0} elem/s)",
                self.name,
                id,
                mean,
                n as f64 / b.last_mean
            ),
            Some(Throughput::Bytes(n)) if b.last_mean > 0.0 => println!(
                "bench {}/{}: {:?}/iter ({:.0} B/s)",
                self.name,
                id,
                mean,
                n as f64 / b.last_mean
            ),
            _ => println!("bench {}/{}: {:?}/iter", self.name, id, mean),
        }
        self
    }

    /// End the group (printing is incremental, so this is a no-op marker).
    pub fn finish(self) {}
}

/// Entry point collecting benchmark groups (mirrors criterion's type).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 6, "one warm-up + five samples");
    }

    criterion_group!(smoke, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn macros_expand() {
        smoke();
    }
}
