//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal, deterministic implementation of exactly the API surface the GTS
//! reproduction uses: `StdRng` (seeded via [`SeedableRng::seed_from_u64`]),
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`], and
//! `distributions::{Distribution, WeightedIndex}`.
//!
//! Streams differ from the real `rand` crate's `StdRng` (which is fine: all
//! in-repo consumers only require *determinism given a seed*, never a
//! specific stream). The generator is SplitMix64, which passes basic
//! equidistribution tests and is plenty for synthetic data generation.

/// Types that can produce raw random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types seedable from a `u64` (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled to produce one value.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i32, i64, isize);

/// Uniform in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod distributions {
    use super::{RngCore, SampleRange};

    /// Types that sample values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`WeightedIndex`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct WeightedError;

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "invalid weights for WeightedIndex")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Sampling of indices `0..n` proportionally to a weight per index.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Build from any iterator of non-negative weights (at least one
        /// must be positive).
        pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
        where
            I: IntoIterator,
            I::Item: Into<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w: f64 = w.into();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = (0.0..self.total).sample_single(rng);
            // First index whose cumulative weight exceeds the draw.
            self.cumulative
                .partition_point(|&c| c <= x)
                .min(self.cumulative.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<usize> = (0..32).map(|_| c.gen_range(0..1_000_000)).collect();
        let mut a2 = StdRng::seed_from_u64(7);
        let other: Vec<usize> = (0..32).map(|_| a2.gen_range(0..1_000_000)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..17u32);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = WeightedIndex::new([1.0f64, 0.0, 9.0]).expect("weights");
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight index never drawn");
        assert!(counts[2] > 5 * counts[0], "9:1 ratio roughly respected");
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new([0.0f64, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0f64]).is_err());
    }

    #[test]
    fn integer_weights_accepted() {
        let w = WeightedIndex::new([4, 1, 1]).expect("i32 weights");
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(w.sample(&mut rng) < 3);
        }
    }
}
