//! Shard invariance: a [`ShardedGts`] must be a pure execution-topology
//! change. For any shard count, batched MRQ and MkNNQ answers must be
//! **bit-identical** to the single-device [`Gts`] — including tie-heavy
//! datasets, where the canonical `(distance, id)` tie-break is the only
//! thing standing between "exact" and "bit-identical". Updates route to
//! the owning shard, and an overflow rebuild on one shard must leave every
//! other shard's device cycle counter untouched.

use gts::prelude::*;

const SHARD_SWEEP: [u32; 3] = [1, 2, 4];

fn words(n: usize, seed: u64) -> (Vec<Item>, ItemMetric) {
    let d = DatasetKind::Words.generate(n, seed);
    (d.items, d.metric)
}

/// A dataset where ties dominate: every word appears three times, so
/// distance-0 duplicates and k-boundary ties are everywhere, and the
/// duplicates land on *different* shards under round-robin.
fn tie_heavy(n: usize, seed: u64) -> (Vec<Item>, ItemMetric) {
    let base = DatasetKind::Words.generate(n.div_ceil(3), seed).items;
    let items: Vec<Item> = (0..n).map(|i| base[i % base.len()].clone()).collect();
    (items, ItemMetric::Edit)
}

fn assert_invariant(label: &str, items: &[Item], metric: ItemMetric) {
    let single = Gts::build(
        &Device::rtx_2080_ti(),
        items.to_vec(),
        metric,
        GtsParams::default(),
    )
    .expect("single-device build");
    let queries: Vec<Item> = (0..32usize)
        .map(|i| items[(i * 13) % items.len()].clone())
        .collect();
    let radii = vec![2.0; queries.len()];
    let want_mrq = single.batch_range(&queries, &radii).expect("single mrq");
    let want_knn = single.batch_knn(&queries, 8).expect("single knn");

    for s in SHARD_SWEEP {
        let pool = DevicePool::rtx_2080_ti(s as usize);
        let sharded = ShardedGts::build(
            &pool,
            items.to_vec(),
            metric,
            GtsParams::default().with_shards(s),
        )
        .expect("sharded build");
        assert_eq!(
            sharded.batch_range(&queries, &radii).expect("sharded mrq"),
            want_mrq,
            "{label}: MRQ answers must be bit-identical at {s} shards"
        );
        assert_eq!(
            sharded.batch_knn(&queries, 8).expect("sharded knn"),
            want_knn,
            "{label}: MkNNQ answers must be bit-identical at {s} shards"
        );
    }
}

#[test]
fn sharded_answers_bit_identical_across_shard_counts() {
    let (items, metric) = words(600, 1234);
    assert_invariant("words", &items, metric);
}

#[test]
fn sharded_answers_bit_identical_on_tie_heavy_data() {
    let (items, metric) = tie_heavy(600, 77);
    assert_invariant("tie-heavy", &items, metric);
}

#[test]
fn hash_partitioning_is_equally_exact() {
    let (items, metric) = tie_heavy(600, 9);
    let single = Gts::build(
        &Device::rtx_2080_ti(),
        items.clone(),
        metric,
        GtsParams::default(),
    )
    .expect("build");
    let queries: Vec<Item> = items[..24].to_vec();
    let radii = vec![2.0; queries.len()];
    let pool = DevicePool::rtx_2080_ti(4);
    let sharded = ShardedGts::build_with_strategy(
        &pool,
        items,
        metric,
        GtsParams::default().with_shards(4),
        PartitionStrategy::Hash,
    )
    .expect("hash-sharded build");
    assert_eq!(
        sharded.batch_range(&queries, &radii).expect("mrq"),
        single.batch_range(&queries, &radii).expect("mrq"),
    );
    assert_eq!(
        sharded.batch_knn(&queries, 6).expect("knn"),
        single.batch_knn(&queries, 6).expect("knn"),
    );
}

#[test]
fn one_shard_equals_single_device_exactly_including_cycles() {
    let (items, metric) = words(500, 5);
    let queries: Vec<Item> = items[..16].to_vec();
    let radii = vec![2.0; queries.len()];

    let dev = Device::rtx_2080_ti();
    let single = Gts::build(&dev, items.clone(), metric, GtsParams::default()).expect("build");
    let single_mrq = single.batch_range(&queries, &radii).expect("mrq");
    let single_knn = single.batch_knn(&queries, 5).expect("knn");

    let pool = DevicePool::rtx_2080_ti(1);
    let sharded =
        ShardedGts::build(&pool, items, metric, GtsParams::default()).expect("sharded build");
    let sharded_mrq = sharded.batch_range(&queries, &radii).expect("mrq");
    let sharded_knn = sharded.batch_knn(&queries, 5).expect("knn");

    assert_eq!(sharded_mrq, single_mrq);
    assert_eq!(sharded_knn, single_knn);
    assert_eq!(
        pool.get(0).stats(),
        dev.stats(),
        "one shard on one device is the single-device index, cycle counts included"
    );
    assert_eq!(sharded.stats(), single.stats(), "identical search counters");
}

#[test]
fn overflow_rebuild_on_one_shard_leaves_other_clocks_untouched() {
    let (items, metric) = words(200, 21);
    let pool = DevicePool::rtx_2080_ti(4);
    // A cache capacity so small the very first insert overflows.
    let params = GtsParams::default().with_shards(4).with_cache_capacity(4);
    let mut idx = ShardedGts::build(&pool, items.clone(), metric, params).expect("build");

    let cycles_before: Vec<u64> = (0..4).map(|s| pool.get(s).cycles()).collect();
    let rebuilds_before: Vec<u64> = (0..4).map(|s| idx.shard(s).rebuild_count()).collect();
    let gid = idx.insert(Item::text("overflowing")).expect("insert");
    let owner = idx.partitioner().shard_of(gid) as usize;

    assert_eq!(
        idx.shard(owner).rebuild_count(),
        rebuilds_before[owner] + 1,
        "the tiny cache must overflow and rebuild the owning shard"
    );
    for s in 0..4 {
        if s == owner {
            assert!(
                pool.get(s).cycles() > cycles_before[s],
                "the owning shard's device pays for the rebuild"
            );
        } else {
            assert_eq!(
                pool.get(s).cycles(),
                cycles_before[s],
                "shard {s}: untouched shards' clocks must not move"
            );
            assert_eq!(idx.shard(s).rebuild_count(), rebuilds_before[s]);
        }
    }

    // The rebuilt sharded index still answers bit-identically to a fresh
    // single-device index over the updated store.
    let mut store = items;
    store.push(Item::text("overflowing"));
    let single = Gts::build(
        &Device::rtx_2080_ti(),
        store.clone(),
        metric,
        GtsParams::default(),
    )
    .expect("build");
    let queries = vec![Item::text("overflowing"), store[10].clone()];
    let radii = [1.0, 2.0];
    assert_eq!(
        idx.batch_range(&queries, &radii).expect("mrq"),
        single.batch_range(&queries, &radii).expect("mrq"),
    );
    assert_eq!(
        idx.batch_knn(&queries, 4).expect("knn"),
        single.batch_knn(&queries, 4).expect("knn"),
    );
}

#[test]
fn sharded_snapshot_roundtrip_preserves_bit_identical_answers() {
    let (items, metric) = tie_heavy(300, 3);
    let pool = DevicePool::rtx_2080_ti(2);
    let idx = ShardedGts::build(
        &pool,
        items.clone(),
        metric,
        GtsParams::default().with_shards(2),
    )
    .expect("build");
    let bytes = idx.snapshot();

    let pool2 = DevicePool::rtx_2080_ti(2);
    let restored = ShardedGts::restore(&pool2, items.clone(), metric, &bytes).expect("restore");
    let queries: Vec<Item> = items[..12].to_vec();
    let radii = vec![2.0; queries.len()];
    assert_eq!(
        restored.batch_range(&queries, &radii).expect("mrq"),
        idx.batch_range(&queries, &radii).expect("mrq"),
    );
    assert_eq!(
        restored.batch_knn(&queries, 6).expect("knn"),
        idx.batch_knn(&queries, 6).expect("knn"),
    );
}
