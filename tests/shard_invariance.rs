//! Shard invariance: a [`ShardedGts`] must be a pure execution-topology
//! change. For any shard count, batched MRQ and MkNNQ answers must be
//! **bit-identical** to the single-device [`Gts`] — including tie-heavy
//! datasets, where the canonical `(distance, id)` tie-break is the only
//! thing standing between "exact" and "bit-identical". Updates route to
//! the owning shard, and an overflow rebuild on one shard must leave every
//! other shard's device cycle counter untouched.
//!
//! Since the descent-engine refactor this suite also pins down:
//!
//! * the engine itself — driving the batch drivers through the resumable
//!   `DescentEngine` must be **bit- and cycle-identical** to the
//!   pre-refactor monolithic loops, asserted against a checked-in
//!   fingerprint (answer hashes, simulated cycle counts, and search
//!   counters captured from the seed implementation before the refactor);
//! * the cross-shard kNN **bound broadcast**
//!   ([`GtsParams::bound_broadcast`]): lockstep descent with per-level
//!   bound injection must return bit-identical answers to the independent
//!   descent for S ∈ {1, 2, 4}, tie-heavy data included, across repeated
//!   runs (deterministic clocks), and through the edge cases — trees so
//!   shallow every query resolves in the first step, and one shard's
//!   frontier dying early while the others keep descending.

use gts::prelude::*;

const SHARD_SWEEP: [u32; 3] = [1, 2, 4];

/// FNV-1a over every `(query, id, dist-bits)` triple — the canonical-order
/// answer fingerprint the pre-refactor snapshot was taken with.
fn hash_answers(lists: &[Vec<Neighbor>]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for (q, list) in lists.iter().enumerate() {
        eat(&(q as u64).to_le_bytes());
        for n in list {
            eat(&n.id.to_le_bytes());
            eat(&n.dist.to_bits().to_le_bytes());
        }
    }
    h
}

fn words(n: usize, seed: u64) -> (Vec<Item>, ItemMetric) {
    let d = DatasetKind::Words.generate(n, seed);
    (d.items, d.metric)
}

/// A dataset where ties dominate: every word appears three times, so
/// distance-0 duplicates and k-boundary ties are everywhere, and the
/// duplicates land on *different* shards under round-robin.
fn tie_heavy(n: usize, seed: u64) -> (Vec<Item>, ItemMetric) {
    let base = DatasetKind::Words.generate(n.div_ceil(3), seed).items;
    let items: Vec<Item> = (0..n).map(|i| base[i % base.len()].clone()).collect();
    (items, ItemMetric::Edit)
}

fn assert_invariant(label: &str, items: &[Item], metric: ItemMetric) {
    let single = Gts::build(
        &Device::rtx_2080_ti(),
        items.to_vec(),
        metric,
        GtsParams::default(),
    )
    .expect("single-device build");
    let queries: Vec<Item> = (0..32usize)
        .map(|i| items[(i * 13) % items.len()].clone())
        .collect();
    let radii = vec![2.0; queries.len()];
    let want_mrq = single.batch_range(&queries, &radii).expect("single mrq");
    let want_knn = single.batch_knn(&queries, 8).expect("single knn");

    // An "exact beam": wide enough that per-shard beam truncation never
    // drops anything, so the approximate search degenerates to the exact
    // one and must merge bit-identically too.
    let exact_beam = usize::MAX;
    assert_eq!(
        single
            .batch_knn_approx(&queries, 8, exact_beam)
            .expect("single exact-beam"),
        want_knn,
        "{label}: an exact beam must degenerate to the exact single-device search"
    );

    for s in SHARD_SWEEP {
        for broadcast in [false, true] {
            let pool = DevicePool::rtx_2080_ti(s as usize);
            let sharded = ShardedGts::build(
                &pool,
                items.to_vec(),
                metric,
                GtsParams::default()
                    .with_shards(s)
                    .with_bound_broadcast(broadcast),
            )
            .expect("sharded build");
            assert_eq!(
                sharded.batch_range(&queries, &radii).expect("sharded mrq"),
                want_mrq,
                "{label}: MRQ answers must be bit-identical at {s} shards"
            );
            assert_eq!(
                sharded.batch_knn(&queries, 8).expect("sharded knn"),
                want_knn,
                "{label}: MkNNQ answers must be bit-identical at {s} shards \
                 (broadcast = {broadcast})"
            );
            assert_eq!(
                sharded
                    .batch_knn_approx(&queries, 8, exact_beam)
                    .expect("sharded exact-beam"),
                want_knn,
                "{label}: exact-beam sharded MkNNQ must merge bit-identically \
                 at {s} shards (broadcast only applies to the exact path)"
            );
        }
    }
}

#[test]
fn sharded_answers_bit_identical_across_shard_counts() {
    let (items, metric) = words(600, 1234);
    assert_invariant("words", &items, metric);
}

#[test]
fn sharded_answers_bit_identical_on_tie_heavy_data() {
    let (items, metric) = tie_heavy(600, 77);
    assert_invariant("tie-heavy", &items, metric);
}

#[test]
fn hash_partitioning_is_equally_exact() {
    let (items, metric) = tie_heavy(600, 9);
    let single = Gts::build(
        &Device::rtx_2080_ti(),
        items.clone(),
        metric,
        GtsParams::default(),
    )
    .expect("build");
    let queries: Vec<Item> = items[..24].to_vec();
    let radii = vec![2.0; queries.len()];
    let pool = DevicePool::rtx_2080_ti(4);
    let sharded = ShardedGts::build_with_strategy(
        &pool,
        items,
        metric,
        GtsParams::default().with_shards(4),
        PartitionStrategy::Hash,
    )
    .expect("hash-sharded build");
    assert_eq!(
        sharded.batch_range(&queries, &radii).expect("mrq"),
        single.batch_range(&queries, &radii).expect("mrq"),
    );
    assert_eq!(
        sharded.batch_knn(&queries, 6).expect("knn"),
        single.batch_knn(&queries, 6).expect("knn"),
    );
}

#[test]
fn one_shard_equals_single_device_exactly_including_cycles() {
    let (items, metric) = words(500, 5);
    let queries: Vec<Item> = items[..16].to_vec();
    let radii = vec![2.0; queries.len()];

    let dev = Device::rtx_2080_ti();
    let single = Gts::build(&dev, items.clone(), metric, GtsParams::default()).expect("build");
    let single_mrq = single.batch_range(&queries, &radii).expect("mrq");
    let single_knn = single.batch_knn(&queries, 5).expect("knn");

    let pool = DevicePool::rtx_2080_ti(1);
    let sharded =
        ShardedGts::build(&pool, items, metric, GtsParams::default()).expect("sharded build");
    let sharded_mrq = sharded.batch_range(&queries, &radii).expect("mrq");
    let sharded_knn = sharded.batch_knn(&queries, 5).expect("knn");

    assert_eq!(sharded_mrq, single_mrq);
    assert_eq!(sharded_knn, single_knn);
    assert_eq!(
        pool.get(0).stats(),
        dev.stats(),
        "one shard on one device is the single-device index, cycle counts included"
    );
    assert_eq!(sharded.stats(), single.stats(), "identical search counters");
}

#[test]
fn overflow_rebuild_on_one_shard_leaves_other_clocks_untouched() {
    let (items, metric) = words(200, 21);
    let pool = DevicePool::rtx_2080_ti(4);
    // A cache capacity so small the very first insert overflows.
    let params = GtsParams::default().with_shards(4).with_cache_capacity(4);
    let mut idx = ShardedGts::build(&pool, items.clone(), metric, params).expect("build");

    let cycles_before: Vec<u64> = (0..4).map(|s| pool.get(s).cycles()).collect();
    let rebuilds_before: Vec<u64> = (0..4).map(|s| idx.shard(s).rebuild_count()).collect();
    let gid = idx.insert(Item::text("overflowing")).expect("insert");
    let owner = idx.partitioner().shard_of(gid) as usize;

    assert_eq!(
        idx.shard(owner).rebuild_count(),
        rebuilds_before[owner] + 1,
        "the tiny cache must overflow and rebuild the owning shard"
    );
    for s in 0..4 {
        if s == owner {
            assert!(
                pool.get(s).cycles() > cycles_before[s],
                "the owning shard's device pays for the rebuild"
            );
        } else {
            assert_eq!(
                pool.get(s).cycles(),
                cycles_before[s],
                "shard {s}: untouched shards' clocks must not move"
            );
            assert_eq!(idx.shard(s).rebuild_count(), rebuilds_before[s]);
        }
    }

    // The rebuilt sharded index still answers bit-identically to a fresh
    // single-device index over the updated store.
    let mut store = items;
    store.push(Item::text("overflowing"));
    let single = Gts::build(
        &Device::rtx_2080_ti(),
        store.clone(),
        metric,
        GtsParams::default(),
    )
    .expect("build");
    let queries = vec![Item::text("overflowing"), store[10].clone()];
    let radii = [1.0, 2.0];
    assert_eq!(
        idx.batch_range(&queries, &radii).expect("mrq"),
        single.batch_range(&queries, &radii).expect("mrq"),
    );
    assert_eq!(
        idx.batch_knn(&queries, 4).expect("knn"),
        single.batch_knn(&queries, 4).expect("knn"),
    );
}

/// Acceptance (a) of the descent-engine refactor: driving the batch
/// drivers through the resumable engine must be **bit- and cycle-identical**
/// to the pre-refactor monolithic `range_descend`/`knn_descend` loops.
/// The expected values below were captured by running the *seed*
/// implementation (commit before the engine landed) on these exact
/// workloads; every answer hash, simulated cycle count, and search counter
/// must still match. The third workload squeezes device memory until the
/// two-stage strategy forms 18 query groups, so the engine's explicit
/// frame stack is pinned against the recursion it replaced — buffer
/// lifetimes included (a leaked or early-dropped intermediate buffer would
/// shift `free_bytes`, change the group split, and move every number).
#[test]
fn engine_matches_prerefactor_fingerprint() {
    // (dataset, n, radius, k, expected MRQ hash, MRQ cycles, kNN hash,
    //  kNN cycles, distance computations, leaf verified)
    for (kind, n, radius, k, mrq_hash, mrq_cycles, knn_hash, knn_cycles, dist, verified) in [
        (
            DatasetKind::Words,
            900usize,
            2.0,
            8usize,
            0x5065ef5b376d735du64,
            28_294u64,
            0x2e2327414a04281du64,
            86_807u64,
            49_597u64,
            49_533u64,
        ),
        (
            DatasetKind::Vector,
            900,
            0.35,
            8,
            0xc2fcf54ab2ce6aff,
            43_079,
            0xcfd5a13aa1acf0e,
            99_744,
            57_605,
            57_541,
        ),
    ] {
        let data = kind.generate(n, 1234);
        let dev = Device::rtx_2080_ti();
        let gts =
            Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
        let queries: Vec<Item> = (0..32usize)
            .map(|i| data.items[(i * 13) % n].clone())
            .collect();
        let radii = vec![radius; queries.len()];
        let mark = dev.cycles();
        let mrq = gts.batch_range(&queries, &radii).expect("mrq");
        assert_eq!(dev.cycles() - mark, mrq_cycles, "{kind:?}: MRQ cycles");
        assert_eq!(hash_answers(&mrq), mrq_hash, "{kind:?}: MRQ answers");
        let mark = dev.cycles();
        let knn = gts.batch_knn(&queries, k).expect("knn");
        assert_eq!(dev.cycles() - mark, knn_cycles, "{kind:?}: kNN cycles");
        assert_eq!(hash_answers(&knn), knn_hash, "{kind:?}: kNN answers");
        let s = gts.stats();
        assert_eq!(s.distance_computations, dist, "{kind:?}: distance count");
        assert_eq!(s.leaf_verified, verified, "{kind:?}: verified leaves");
        assert_eq!(s.broadcast_tightened, 0, "single device never broadcasts");
    }

    // The grouped workload: memory squeezed to (index footprint + 96 KB).
    let data = DatasetKind::TLoc.generate(3_000, 13);
    let footprint = {
        let probe = Device::rtx_2080_ti();
        let idx = Gts::build(
            &probe,
            data.items.clone(),
            data.metric,
            GtsParams::default(),
        )
        .expect("probe build");
        idx.memory_bytes() + data.data_bytes()
    };
    let dev = Device::new(DeviceConfig::rtx_2080_ti().with_memory_bytes(footprint + 96 * 1024));
    let gts =
        Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
    let queries: Vec<Item> = (0..128usize)
        .map(|i| data.items[(i * 3) % 3_000].clone())
        .collect();
    let radii = vec![1.0; queries.len()];
    let mark = dev.cycles();
    let mrq = gts.batch_range(&queries, &radii).expect("mrq");
    assert_eq!(dev.cycles() - mark, 44_575, "grouped: MRQ cycles");
    assert_eq!(
        hash_answers(&mrq),
        0xbe1d4754a1266141,
        "grouped: MRQ answers"
    );
    let mark = dev.cycles();
    let knn = gts.batch_knn(&queries, 10).expect("knn");
    assert_eq!(dev.cycles() - mark, 684_880, "grouped: kNN cycles");
    assert_eq!(
        hash_answers(&knn),
        0xfdf44f29921ae3fb,
        "grouped: kNN answers"
    );
    let s = gts.stats();
    assert_eq!(s.groups_formed, 18, "grouped: query groups");
    assert_eq!(s.max_frontier, 2_560, "grouped: frontier high-water mark");
    assert_eq!(s.distance_computations, 114_666, "grouped: distance count");
    assert_eq!(s.leaf_verified, 114_410, "grouped: verified leaves");
}

/// The broadcast must actually *do* something where it can: on a deep tree
/// (small `Nc`) over spatial data, the lockstep path must tighten bounds
/// and verify strictly fewer leaves than independent descent — with
/// bit-identical answers — and repeated runs must produce identical
/// simulated clocks and counters (the two-phase barrier protocol leaves no
/// room for scheduling nondeterminism).
#[test]
fn broadcast_tightens_bounds_deterministically() {
    let data = DatasetKind::TLoc.generate(4_000, 99);
    let queries: Vec<Item> = (0..24).map(|i| data.items[i * 61].clone()).collect();
    let run = |broadcast: bool| {
        let pool = DevicePool::rtx_2080_ti(4);
        let idx = ShardedGts::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default()
                .with_node_capacity(5)
                .with_shards(4)
                .with_bound_broadcast(broadcast),
        )
        .expect("build");
        pool.reset_clocks();
        let knn = idx.batch_knn(&queries, 8).expect("knn");
        (knn, idx.stats(), idx.span_cycles())
    };
    let (off, off_stats, _) = run(false);
    let (on, on_stats, on_span) = run(true);
    assert_eq!(off, on, "broadcast must not change answers");
    assert_eq!(off_stats.broadcast_tightened, 0, "off path never injects");
    assert!(
        on_stats.broadcast_tightened > 0,
        "the lockstep exchange must tighten at least one per-query bound"
    );
    assert!(
        on_stats.leaf_verified < off_stats.leaf_verified,
        "tightened bounds must filter leaf verifications ({} vs {})",
        on_stats.leaf_verified,
        off_stats.leaf_verified
    );
    // Determinism: an identical second run reproduces clocks and counters.
    let (on2, on2_stats, on2_span) = run(true);
    assert_eq!(on, on2, "broadcast answers are reproducible");
    assert_eq!(on_stats, on2_stats, "broadcast counters are reproducible");
    assert_eq!(on_span, on2_span, "broadcast clocks are reproducible");
}

/// Edge case: a dataset so small every per-shard tree has height 1 — every
/// engine's first step *is* its leaf verification ("all queries resolved at
/// level 0"), so the lockstep loop runs with nothing to broadcast between
/// and must terminate cleanly with exact answers.
#[test]
fn broadcast_handles_trees_with_no_internal_levels() {
    let (items, metric) = words(40, 7);
    let single = Gts::build(
        &Device::rtx_2080_ti(),
        items.clone(),
        metric,
        GtsParams::default(),
    )
    .expect("build");
    let queries: Vec<Item> = items[..8].to_vec();
    let want = single.batch_knn(&queries, 3).expect("single knn");
    let pool = DevicePool::rtx_2080_ti(4);
    let idx = ShardedGts::build(
        &pool,
        items,
        metric,
        GtsParams::default()
            .with_shards(4)
            .with_bound_broadcast(true),
    )
    .expect("build");
    assert!(
        idx.shard(0).height() == 1,
        "the edge case needs height-1 shard trees (10 objects, Nc = 20)"
    );
    assert_eq!(idx.batch_knn(&queries, 3).expect("knn"), want);
}

/// Edge case: one shard's frontier dies while the others keep descending.
/// Even global ids form a tight cluster around the queries and odd ids a
/// far-away cluster, so under round-robin S = 2 sharding shard 0 owns every
/// close neighbour: its bounds collapse immediately, the broadcast injects
/// them into shard 1, and shard 1's frontier is pruned dead levels before
/// its leaves — it then idles at the barrier while shard 0 finishes.
/// Answers must still be bit-identical to broadcast-off, and shard 1 must
/// demonstrably do less expansion work than without the broadcast.
#[test]
fn broadcast_kills_a_hopeless_shards_frontier_early() {
    // items[2i] stay in the T-Loc domain; items[2i+1] are shifted 1e6 away.
    let near = DatasetKind::TLoc.generate(2_000, 5).items;
    let items: Vec<Item> = (0..2_000)
        .map(|i| {
            if i % 2 == 0 {
                near[i].clone()
            } else {
                let Some(v) = near[i].as_vector() else {
                    panic!("TLoc items are vectors")
                };
                Item::vector(v.iter().map(|x| x + 1e6).collect::<Vec<f32>>())
            }
        })
        .collect();
    let queries: Vec<Item> = (0..16).map(|i| items[2 * (i * 7)].clone()).collect();
    let run = |broadcast: bool| {
        let pool = DevicePool::rtx_2080_ti(2);
        let idx = ShardedGts::build(
            &pool,
            items.clone(),
            ItemMetric::L2,
            GtsParams::default()
                .with_node_capacity(4)
                .with_shards(2)
                .with_bound_broadcast(broadcast),
        )
        .expect("build");
        let knn = idx.batch_knn(&queries, 4).expect("knn");
        (knn, idx.shard_stats(1), idx.stats())
    };
    let (off, far_off, _) = run(false);
    let (on, far_on, total_on) = run(true);
    assert_eq!(off, on, "answers survive the dead-frontier broadcast");
    assert!(
        total_on.broadcast_tightened > 0,
        "the near shard's collapsed bounds must reach the far shard"
    );
    assert!(
        far_on.nodes_expanded < far_off.nodes_expanded,
        "injected bounds must kill the far shard's frontier early \
         ({} vs {} expansions)",
        far_on.nodes_expanded,
        far_off.nodes_expanded
    );
    // Every query's answers live on the near shard; with the broadcast the
    // far shard's frontier dies *before its leaves* — not a single leaf
    // entry reaches verification (it then idles at the barrier while the
    // near shard finishes).
    assert!(
        far_off.leaf_verified > 0,
        "without broadcast the far shard wastes real leaf verifications"
    );
    assert_eq!(
        (far_on.leaf_verified, far_on.leaf_filtered),
        (0, 0),
        "with broadcast the far shard's frontier must die before the leaves"
    );
}

/// Layout × topology: the SIMD-aligned arena layout must compose with
/// sharding as a pure wall-clock lever. For S ∈ {1, 2, 4}, a sharded index
/// whose shards all run the aligned block kernels must return answers
/// **bit-identical** to the single-device legacy-layout index, and the
/// S = 1 case must also charge the identical device cycle count.
#[test]
fn aligned_layout_is_shard_invariant() {
    let data = DatasetKind::TLoc.generate(1_200, 4321);
    let dev = Device::rtx_2080_ti();
    let single = Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default())
        .expect("single-device legacy build");
    let queries: Vec<Item> = (0..24usize)
        .map(|i| data.items[(i * 13) % 1_200].clone())
        .collect();
    let radii = vec![120.0; queries.len()];
    let want_mrq = single.batch_range(&queries, &radii).expect("single mrq");
    let want_knn = single.batch_knn(&queries, 8).expect("single knn");

    for s in SHARD_SWEEP {
        let pool = DevicePool::rtx_2080_ti(s as usize);
        let sharded = ShardedGts::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default()
                .with_shards(s)
                .with_arena_layout(ArenaLayout::Aligned),
        )
        .expect("aligned sharded build");
        assert_eq!(
            sharded.batch_range(&queries, &radii).expect("sharded mrq"),
            want_mrq,
            "aligned MRQ answers must be bit-identical at {s} shards"
        );
        assert_eq!(
            sharded.batch_knn(&queries, 8).expect("sharded knn"),
            want_knn,
            "aligned MkNNQ answers must be bit-identical at {s} shards"
        );
        if s == 1 {
            assert_eq!(
                pool.get(0).stats(),
                dev.stats(),
                "one aligned shard charges the legacy single-device cycles"
            );
        }
    }
}

#[test]
fn sharded_snapshot_roundtrip_preserves_bit_identical_answers() {
    let (items, metric) = tie_heavy(300, 3);
    let pool = DevicePool::rtx_2080_ti(2);
    let idx = ShardedGts::build(
        &pool,
        items.clone(),
        metric,
        GtsParams::default().with_shards(2),
    )
    .expect("build");
    let bytes = idx.snapshot();

    let pool2 = DevicePool::rtx_2080_ti(2);
    let restored = ShardedGts::restore(&pool2, items.clone(), metric, &bytes).expect("restore");
    let queries: Vec<Item> = items[..12].to_vec();
    let radii = vec![2.0; queries.len()];
    assert_eq!(
        restored.batch_range(&queries, &radii).expect("mrq"),
        idx.batch_range(&queries, &radii).expect("mrq"),
    );
    assert_eq!(
        restored.batch_knn(&queries, 6).expect("knn"),
        idx.batch_knn(&queries, 6).expect("knn"),
    );
}
