//! Update-path consistency: randomized insert/delete interleavings against
//! a shadow brute-force oracle, for GTS and every dynamic baseline.

use gts::metric::Metric as _;
use gts::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Shadow oracle: all live objects with their ids.
struct Oracle {
    items: Vec<Item>,
    live: Vec<bool>,
    metric: ItemMetric,
}

impl Oracle {
    fn range(&self, q: &Item, r: f64) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self
            .items
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.live[i])
            .filter_map(|(i, o)| {
                let d = self.metric.distance(q, o);
                (d <= r).then_some(Neighbor::new(i as u32, d))
            })
            .collect();
        gts::metric::index::sort_neighbors(&mut v);
        v
    }

    fn knn(&self, q: &Item, k: usize) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self
            .items
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.live[i])
            .map(|(i, o)| Neighbor::new(i as u32, self.metric.distance(q, o)))
            .collect();
        gts::metric::index::sort_neighbors(&mut v);
        v.truncate(k);
        v
    }
}

fn run_mixed_workload<I>(mut idx: I, data: &Dataset, seed: u64, ops: usize, radius: f64)
where
    I: DynamicIndex<Item>,
{
    let mut oracle = Oracle {
        items: data.items.clone(),
        live: vec![true; data.len()],
        metric: data.metric,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..ops {
        match rng.gen_range(0..3u8) {
            0 => {
                // Insert a perturbed copy of an existing object.
                let base = rng.gen_range(0..oracle.items.len() as u32);
                let obj =
                    gts::metric::gen::perturb(&oracle.items[base as usize], seed + step as u64);
                let id = idx.insert(obj.clone()).expect("insert");
                assert_eq!(id as usize, oracle.items.len(), "ids must be sequential");
                oracle.items.push(obj);
                oracle.live.push(true);
            }
            1 => {
                let victim = rng.gen_range(0..oracle.items.len() as u32);
                let did = idx.remove(victim).expect("remove");
                assert_eq!(
                    did, oracle.live[victim as usize],
                    "remove({victim}) disagreed with oracle at step {step}"
                );
                oracle.live[victim as usize] = false;
            }
            _ => {
                let q = oracle.items[rng.gen_range(0..oracle.items.len())].clone();
                let got = idx.range_query(&q, radius).expect("query");
                let want = oracle.range(&q, radius);
                assert_eq!(got, want, "MRQ divergence at step {step}");
                // kNN must also respect deletions — including deleted
                // objects that serve as internal pivots/centres (ids may
                // differ at tie boundaries; distances must match).
                let got = idx.knn_query(&q, 6).expect("knn");
                let want = oracle.knn(&q, 6);
                assert_eq!(got.len(), want.len(), "kNN size at step {step}");
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g.dist - w.dist).abs() < 1e-9,
                        "kNN divergence at step {step}: {} vs {}",
                        g.dist,
                        w.dist
                    );
                    assert!(
                        oracle.live[g.id as usize],
                        "returned tombstoned id {} at step {step}",
                        g.id
                    );
                }
            }
        }
    }
}

/// Deleting an object that serves as the *root pivot* must remove it from
/// kNN answers while keeping pruning sound (regression test for the
/// tombstoned-pivot bound bug).
#[test]
fn deleting_a_pivot_object_is_safe() {
    let data = DatasetKind::TLoc.generate(400, 71);
    let dev = Device::rtx_2080_ti();
    let mut gts =
        Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
    // Delete a broad swath so internal pivots are certainly hit.
    for id in 0..200u32 {
        gts.remove(id).expect("rm");
    }
    let oracle = Oracle {
        items: data.items.clone(),
        live: (0..400).map(|i| i >= 200).collect(),
        metric: data.metric,
    };
    for qi in [0u32, 123, 399] {
        let q = data.item(qi).clone();
        let got = gts.knn_query(&q, 10).expect("knn");
        let want = oracle.knn(&q, 10);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9, "{} vs {}", g.dist, w.dist);
            assert!(g.id >= 200, "tombstoned id {} returned", g.id);
        }
    }
}

#[test]
fn gts_randomized_updates_words() {
    let data = DatasetKind::Words.generate(300, 31);
    let dev = Device::rtx_2080_ti();
    // Small cache: several rebuilds during the workload.
    let idx = Gts::build(
        &dev,
        data.items.clone(),
        data.metric,
        GtsParams::default().with_cache_capacity(256),
    )
    .expect("build");
    run_mixed_workload(idx, &data, 1, 120, 2.0);
}

#[test]
fn gts_randomized_updates_tloc() {
    let data = DatasetKind::TLoc.generate(500, 33);
    let dev = Device::rtx_2080_ti();
    let idx =
        Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
    run_mixed_workload(idx, &data, 2, 120, 0.8);
}

#[test]
fn bst_randomized_updates() {
    let data = DatasetKind::TLoc.generate(300, 35);
    run_mixed_workload(
        Bst::build(data.items.clone(), data.metric),
        &data,
        3,
        90,
        0.8,
    );
}

#[test]
fn mvpt_randomized_updates() {
    let data = DatasetKind::Words.generate(250, 37);
    run_mixed_workload(
        Mvpt::build(data.items.clone(), data.metric),
        &data,
        4,
        90,
        2.0,
    );
}

#[test]
fn egnat_randomized_updates() {
    let data = DatasetKind::TLoc.generate(300, 39);
    let idx = Egnat::build(data.items.clone(), data.metric).expect("build");
    run_mixed_workload(idx, &data, 5, 90, 0.8);
}

#[test]
fn gpu_table_randomized_updates() {
    let data = DatasetKind::Vector.generate(200, 41);
    let dev = Device::rtx_2080_ti();
    let idx = GpuTable::new(&dev, data.items.clone(), data.metric).expect("new");
    run_mixed_workload(idx, &data, 6, 80, 0.2);
}

#[test]
fn lbpg_randomized_updates() {
    let data = DatasetKind::TLoc.generate(250, 43);
    let dev = Device::rtx_2080_ti();
    let idx = LbpgTree::build(&dev, data.items.clone(), data.metric).expect("build");
    run_mixed_workload(idx, &data, 7, 40, 0.8);
}

/// A snapshot taken mid-stream carries its update epoch: restore resumes
/// the non-zero count instead of rewinding to 0, and a service stood up
/// over the restored index answers bit-identically — results AND epoch
/// stamps — to one over the original.
#[test]
fn snapshot_restore_resumes_epoch_and_serves_identically() {
    let data = DatasetKind::Words.generate(300, 47);
    let pool = DevicePool::rtx_2080_ti(2);
    let mut index = ShardedGts::build(
        &pool,
        data.items.clone(),
        data.metric,
        GtsParams::default().with_shards(2),
    )
    .expect("build");
    // Five applied updates: four inserts and one remove.
    let mut store = data.items.clone();
    for i in 0..4u64 {
        let obj = gts::metric::gen::perturb(&data.items[(i as usize) * 31], 47 + i);
        index.insert(obj.clone()).expect("insert");
        store.push(obj);
    }
    assert!(index.remove(5).expect("remove"));
    assert_eq!(index.epoch(), 5, "every update advanced the epoch");

    let bytes = index.snapshot();
    let restored = ShardedGts::restore(&DevicePool::rtx_2080_ti(2), store, data.metric, &bytes)
        .expect("restore");
    assert_eq!(restored.epoch(), 5, "restore resumes the epoch, not zero");

    // The same mixed stream — queries, one more update, queries after it —
    // through services over both. Epoch stamps must agree too: the
    // restored service keeps counting from 5.
    let mut reqs: Vec<Request<Item>> = (0..12)
        .map(|i| Request::Knn {
            query: data.items[(i * 13) % 300].clone(),
            k: 4,
        })
        .collect();
    reqs.push(Request::Remove { id: 6 });
    reqs.extend((0..6).map(|i| Request::Range {
        query: data.items[(i * 29) % 300].clone(),
        radius: 2.0,
    }));
    let serve = |idx: ShardedGts<Item, ItemMetric>| -> Vec<(Result<Reply, ServiceError>, u64)> {
        let cfg = ServiceConfig::default()
            .with_sizing(BatchSizing::Fixed(4))
            .with_flush_deadline(Duration::from_millis(1));
        let svc = QueryService::start(idx, cfg);
        let h = svc.handle();
        let tickets: Vec<Ticket> = reqs
            .iter()
            .map(|r| h.submit(r.clone()).expect("admitted"))
            .collect();
        let stats = svc.shutdown();
        assert_eq!(stats.completed, reqs.len() as u64);
        tickets
            .into_iter()
            .map(|t| {
                let r = t.wait().expect("answered");
                (r.result, r.epoch)
            })
            .collect()
    };
    let original = serve(index);
    let from_snapshot = serve(restored);
    assert_eq!(original[0].1, 5, "queries before the update are stamped 5");
    assert_eq!(
        original.last().expect("answers").1,
        6,
        "the served remove advanced the resumed epoch"
    );
    assert_eq!(
        original, from_snapshot,
        "the restored service serves identically, epochs included"
    );
}

#[test]
fn gts_rebuild_count_is_bounded_by_cache_budget() {
    let data = DatasetKind::Words.generate(400, 45);
    let dev = Device::rtx_2080_ti();
    let mut idx = Gts::build(
        &dev,
        data.items.clone(),
        data.metric,
        GtsParams::default().with_cache_capacity(4 * 1024),
    )
    .expect("build");
    for i in 0..100u64 {
        idx.insert(Item::text(format!("w{i}"))).expect("insert");
    }
    // ~10 B per cached word + id overhead -> at most a handful of rebuilds.
    assert!(
        idx.rebuild_count() <= 3,
        "too many rebuilds: {}",
        idx.rebuild_count()
    );
    assert_eq!(idx.len(), 500);
}
