//! Property-based tests (proptest) over the core invariants:
//! metric axioms, pruning-lemma soundness, device-sort correctness,
//! batch-kernel/scalar agreement, and GTS-vs-scan equivalence on random
//! inputs.

use gts::metric::dist::{edit_distance, edit_distance_bounded};
use gts::metric::lemmas::{prune_node_range, prune_object_knn, prune_object_range};
use gts::metric::BatchMetric;
use gts::metric::Metric as _;
use gts::prelude::*;
use proptest::prelude::*;

fn arb_word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-d]{0,12}").expect("regex")
}

fn arb_vec(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Edit distance satisfies all four metric axioms.
    #[test]
    fn edit_distance_is_a_metric(a in arb_word(), b in arb_word(), c in arb_word()) {
        let dab = edit_distance(&a, &b);
        let dba = edit_distance(&b, &a);
        prop_assert_eq!(dab, dba, "symmetry");
        prop_assert_eq!(edit_distance(&a, &a), 0, "identity");
        prop_assert!((dab == 0) == (a == b), "indiscernibles");
        let dac = edit_distance(&a, &c);
        let dcb = edit_distance(&c, &b);
        prop_assert!(dab <= dac + dcb, "triangle: {} > {} + {}", dab, dac, dcb);
    }

    /// Bounded edit distance agrees with the full DP whenever it answers.
    #[test]
    fn bounded_edit_agrees(a in arb_word(), b in arb_word(), bound in 0u32..8) {
        let full = edit_distance(&a, &b);
        match edit_distance_bounded(&a, &b, bound) {
            Some(d) => prop_assert_eq!(d, full),
            None => prop_assert!(full > bound),
        }
    }

    /// L1, L2 and angular distances satisfy the triangle inequality.
    #[test]
    fn vector_metrics_triangle(a in arb_vec(6), b in arb_vec(6), c in arb_vec(6)) {
        for metric in [ItemMetric::L1, ItemMetric::L2, ItemMetric::ANGULAR] {
            let (ia, ib, ic) = (
                Item::vector(a.clone()),
                Item::vector(b.clone()),
                Item::vector(c.clone()),
            );
            let dab = metric.distance(&ia, &ib);
            let dac = metric.distance(&ia, &ic);
            let dcb = metric.distance(&ic, &ib);
            prop_assert!(
                dab <= dac + dcb + 1e-6,
                "{}: {} > {} + {}", metric.name(), dab, dac, dcb
            );
            prop_assert!((dab - metric.distance(&ib, &ia)).abs() < 1e-9, "symmetry");
        }
    }

    /// Lemma 5.1 soundness: a pruned object really lies outside the radius.
    #[test]
    fn lemma51_sound_on_random_strings(
        o in arb_word(), q in arb_word(), p in arb_word(), r in 0u32..6
    ) {
        let d_op = f64::from(edit_distance(&o, &p));
        let d_qp = f64::from(edit_distance(&q, &p));
        if prune_object_range(d_op, d_qp, f64::from(r)) {
            prop_assert!(f64::from(edit_distance(&o, &q)) > f64::from(r));
        }
    }

    /// Lemma 5.2 soundness: a pruned object cannot beat the current bound.
    #[test]
    fn lemma52_sound_on_random_vectors(
        o in arb_vec(4), q in arb_vec(4), p in arb_vec(4), bound in 0.1f64..50.0
    ) {
        let m = ItemMetric::L2;
        let (io, iq, ip) = (Item::vector(o), Item::vector(q), Item::vector(p));
        let d_op = m.distance(&io, &ip);
        let d_qp = m.distance(&iq, &ip);
        if prune_object_knn(d_op, d_qp, bound) {
            prop_assert!(m.distance(&io, &iq) >= bound - 1e-9);
        }
    }

    /// Node-ring pruning never prunes a ring containing the query coordinate.
    #[test]
    fn ring_prune_never_covers_query(lo in 0.0f64..50.0, width in 0.0f64..50.0,
                                     dq in 0.0f64..100.0, r in 0.0f64..10.0) {
        let hi = lo + width;
        if dq >= lo && dq <= hi {
            prop_assert!(!prune_node_range(lo, hi, dq, r));
        }
    }

    /// Device radix sort equals the std stable sort on random keys.
    #[test]
    fn device_sort_matches_std(keys in proptest::collection::vec(-1e9f64..1e9, 0..300)) {
        let dev = Device::rtx_2080_ti();
        let mut pairs: Vec<(f64, u32)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let mut expect = pairs.clone();
        expect.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN").then(a.1.cmp(&b.1)));
        gts::gpu::primitives::sort_pairs_by_key(&dev, &mut pairs);
        prop_assert_eq!(pairs, expect);
    }

    /// The batched edit-distance kernel agrees **exactly** (bit-identical
    /// values, identical work accounting) with the scalar metric.
    #[test]
    fn batch_edit_matches_scalar(words in proptest::collection::vec(arb_word(), 2..40), qsel in 0usize..40) {
        let items: Vec<Item> = words.iter().map(|w| Item::text(w.clone())).collect();
        let metric = ItemMetric::Edit;
        let arena = metric.build_arena(&items).expect("homogeneous text");
        let q = &items[qsel % items.len()];
        let ids: Vec<u32> = (0..items.len() as u32).collect();
        let mut out = vec![0.0; ids.len()];
        let (total, span) = metric.distance_batch(&items, Some(&arena), q, &ids, &mut out);
        let mut want_total = 0u64;
        let mut want_span = 0u64;
        for (&id, &got) in ids.iter().zip(&out) {
            let o = &items[id as usize];
            prop_assert_eq!(got.to_bits(), metric.distance(q, o).to_bits());
            let w = metric.work(q, o);
            want_total += w;
            want_span = want_span.max(w);
        }
        prop_assert_eq!(total, want_total);
        prop_assert_eq!(span, want_span);
    }

    /// The batched vector kernels (L1, L2, angular) agree exactly with the
    /// scalar metrics.
    #[test]
    fn batch_vector_matches_scalar(vecs in proptest::collection::vec(arb_vec(6), 2..40), qsel in 0usize..40) {
        let items: Vec<Item> = vecs.iter().cloned().map(Item::vector).collect();
        for metric in [ItemMetric::L1, ItemMetric::L2, ItemMetric::ANGULAR] {
            let arena = metric.build_arena(&items).expect("homogeneous vectors");
            let q = &items[qsel % items.len()];
            let ids: Vec<u32> = (0..items.len() as u32).collect();
            let mut out = vec![0.0; ids.len()];
            let (total, span) = metric.distance_batch(&items, Some(&arena), q, &ids, &mut out);
            let mut want_total = 0u64;
            let mut want_span = 0u64;
            for (&id, &got) in ids.iter().zip(&out) {
                let o = &items[id as usize];
                prop_assert_eq!(got.to_bits(), metric.distance(q, o).to_bits(), "{}", metric.name());
                let w = metric.work(q, o);
                want_total += w;
                want_span = want_span.max(w);
            }
            prop_assert_eq!(total, want_total, "{}", metric.name());
            prop_assert_eq!(span, want_span, "{}", metric.name());
        }
    }

    /// The early-abandoning batched kernel is exact whenever it answers
    /// `Some`, and only abandons pairs that genuinely exceed their bound.
    #[test]
    fn batch_bounded_exact_when_some(
        words in proptest::collection::vec(arb_word(), 2..30),
        vecs in proptest::collection::vec(arb_vec(4), 2..30),
        bound in 0.0f64..8.0,
    ) {
        let cases: [(ItemMetric, Vec<Item>); 2] = [
            (ItemMetric::Edit, words.iter().map(|w| Item::text(w.clone())).collect()),
            (ItemMetric::L2, vecs.iter().cloned().map(Item::vector).collect()),
        ];
        for (metric, items) in cases {
            let arena = metric.build_arena(&items).expect("homogeneous");
            let q = &items[0];
            let ids: Vec<u32> = (0..items.len() as u32).collect();
            let bounds = vec![bound; ids.len()];
            let mut out = vec![None; ids.len()];
            metric
                .distance_batch_bounded(&items, Some(&arena), q, &ids, &bounds, &mut out)
                .expect("legacy arena");
            for (&id, slot) in ids.iter().zip(&out) {
                let real = metric.distance(q, &items[id as usize]);
                match slot {
                    Some(d) => {
                        prop_assert_eq!(d.to_bits(), real.to_bits(), "{}", metric.name());
                        prop_assert!(*d <= bound);
                    }
                    None => prop_assert!(real > bound, "{}: abandoned {real} <= {bound}", metric.name()),
                }
            }
        }
    }

    /// GTS MRQ equals brute force on random 2-d point sets.
    #[test]
    fn gts_matches_bruteforce_random_points(
        points in proptest::collection::vec(arb_vec(2), 30..120),
        r in 0.5f64..100.0,
        qsel in 0usize..30,
    ) {
        let items: Vec<Item> = points.iter().cloned().map(Item::vector).collect();
        let metric = ItemMetric::L2;
        let dev = Device::rtx_2080_ti();
        let gts = Gts::build(&dev, items.clone(), metric, GtsParams::default().with_node_capacity(3))
            .expect("build");
        let q = items[qsel % items.len()].clone();
        let mut want: Vec<Neighbor> = items
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                let d = metric.distance(&q, o);
                (d <= r).then_some(Neighbor::new(i as u32, d))
            })
            .collect();
        gts::metric::index::sort_neighbors(&mut want);
        let got = gts.range_query(&q, r).expect("query");
        prop_assert_eq!(got, want);
    }

    /// GTS kNN distances equal brute force on random word sets.
    #[test]
    fn gts_knn_matches_bruteforce_random_words(
        words in proptest::collection::vec(arb_word(), 25..80),
        k in 1usize..10,
    ) {
        let items: Vec<Item> = words.iter().map(|w| Item::text(w.clone())).collect();
        let metric = ItemMetric::Edit;
        let dev = Device::rtx_2080_ti();
        let gts = Gts::build(&dev, items.clone(), metric, GtsParams::default().with_node_capacity(4))
            .expect("build");
        let q = items[0].clone();
        let mut all: Vec<Neighbor> = items
            .iter()
            .enumerate()
            .map(|(i, o)| Neighbor::new(i as u32, metric.distance(&q, o)))
            .collect();
        gts::metric::index::sort_neighbors(&mut all);
        all.truncate(k);
        let got = gts.knn_query(&q, k).expect("query");
        prop_assert_eq!(got.len(), all.len());
        for (g, w) in got.iter().zip(&all) {
            prop_assert!((g.dist - w.dist).abs() < 1e-9, "{} vs {}", g.dist, w.dist);
        }
    }
}
