//! Streaming updates through the service: the linearizability harness.
//!
//! Seeded random mixed streams of queries (`Range`/`Knn`) and updates
//! (`Insert`/`Remove`/`BatchUpdate`) are pushed through the online query
//! service one request at a time — the shape real traffic arrives in —
//! over every combination of shards ∈ {1, 2} × lanes ∈ {1, 2} (replicas =
//! lanes). The contract under test is the exactness half of the paper's
//! update story (§4.4) lifted to the serving layer:
//!
//! * **serialized semantics** — every response (the `Reply` AND its epoch
//!   stamp) is bit-identical to replaying the same requests against a
//!   single [`Gts`] in admission order, whatever the batcher did:
//!   coalescing, deadline flushes, round-robin lane dealing, broadcast
//!   update application;
//! * **monotone epochs** — each update advances the epoch by exactly one
//!   (no-op removes included); a query's stamp counts exactly the updates
//!   admitted before it;
//! * **replica convergence** — after shutdown every replica reports the
//!   same epoch and serializes to a bit-identical snapshot.

use gts::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const BASE: usize = 240;

/// A seeded mixed stream: ~40% updates (inserts, removes — double removes
/// included — and small batch updates), the rest range/kNN queries.
/// Removes only ever target ids already assigned at that point in the
/// stream, so the stream is valid under any serialized replay.
fn mixed_requests(items: &[Item], n: usize, seed: u64) -> Vec<Request<Item>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assigned = items.len() as u32;
    (0..n)
        .map(|i| {
            let fresh = |rng: &mut StdRng, salt: u64| {
                let base = rng.gen_range(0..items.len());
                gts::metric::gen::perturb(&items[base], seed ^ (i as u64 * 131) ^ salt)
            };
            match rng.gen_range(0..10u8) {
                0 | 1 => {
                    let object = fresh(&mut rng, 0);
                    assigned += 1;
                    Request::Insert { object }
                }
                2 => Request::Remove {
                    id: rng.gen_range(0..assigned),
                },
                3 => {
                    let insertions = vec![fresh(&mut rng, 7), fresh(&mut rng, 13)];
                    let a = rng.gen_range(0..assigned);
                    let b = rng.gen_range(0..assigned);
                    let mut deletions = vec![a];
                    if b != a {
                        deletions.push(b);
                    }
                    assigned += insertions.len() as u32;
                    Request::BatchUpdate {
                        insertions,
                        deletions,
                    }
                }
                4..=6 => Request::Range {
                    query: items[rng.gen_range(0..items.len())].clone(),
                    radius: 2.0,
                },
                _ => Request::Knn {
                    query: items[rng.gen_range(0..items.len())].clone(),
                    k: 5,
                },
            }
        })
        .collect()
}

/// The serialized oracle: replay the stream against a single [`Gts`] in
/// admission order, computing the expected `(Reply, epoch)` per request.
/// Every update advances the epoch by one and its own application is
/// included in its stamp; a query is stamped with the updates before it.
fn oracle_replay(items: &[Item], metric: ItemMetric, reqs: &[Request<Item>]) -> Vec<(Reply, u64)> {
    let dev = Device::rtx_2080_ti();
    let mut gts =
        Gts::build(&dev, items.to_vec(), metric, GtsParams::default()).expect("oracle build");
    // Shadow live flags over the ever-growing id space: ids are assigned
    // sequentially and never reused, matching the sharded global ids.
    let mut live = vec![true; items.len()];
    let mut epoch = 0u64;
    reqs.iter()
        .map(|r| match r {
            Request::Range { query, radius } => (
                Reply::Neighbors(gts.range_query(query, *radius).expect("oracle mrq")),
                epoch,
            ),
            Request::Knn { query, k } => (
                Reply::Neighbors(gts.knn_query(query, *k).expect("oracle knn")),
                epoch,
            ),
            Request::Insert { object } => {
                epoch += 1;
                let id = gts.insert(object.clone()).expect("oracle insert");
                assert_eq!(id as usize, live.len(), "sequential ids");
                live.push(true);
                (
                    Reply::Update(UpdateAck {
                        assigned: vec![id],
                        removed: 0,
                    }),
                    epoch,
                )
            }
            Request::Remove { id } => {
                epoch += 1;
                let did = gts.remove(*id).expect("oracle remove");
                assert_eq!(did, live[*id as usize], "oracle live-flag drift");
                live[*id as usize] = false;
                (
                    Reply::Update(UpdateAck {
                        assigned: Vec::new(),
                        removed: usize::from(did),
                    }),
                    epoch,
                )
            }
            Request::BatchUpdate {
                insertions,
                deletions,
            } => {
                epoch += 1;
                let first = live.len() as u32;
                let assigned: Vec<u32> = (first..first + insertions.len() as u32).collect();
                let removed = deletions.iter().filter(|&&d| live[d as usize]).count();
                gts.batch_update(insertions.clone(), deletions)
                    .expect("oracle batch");
                live.resize(live.len() + insertions.len(), true);
                for &d in deletions {
                    live[d as usize] = false;
                }
                (Reply::Update(UpdateAck { assigned, removed }), epoch)
            }
        })
        .collect()
}

/// Drive one (shards, lanes) configuration and assert the full contract.
fn check(shards: u32, lanes: usize, requests: usize, seed: u64) {
    let data = DatasetKind::Words.generate(BASE, seed);
    let reqs = mixed_requests(&data.items, requests, seed ^ 0xA5A5);
    let want = oracle_replay(&data.items, data.metric, &reqs);
    let n_updates = reqs.iter().filter(|r| r.is_update()).count() as u64;
    assert!(n_updates > 0, "the stream must exercise the update path");

    let replicas = lanes as u32;
    let pool = DevicePool::rtx_2080_ti((shards * replicas) as usize);
    let index = Arc::new(
        ReplicatedShards::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default()
                .with_shards(shards)
                .with_replicas(replicas),
        )
        .expect("build"),
    );
    let cfg = ServiceConfig::default()
        .with_queue_depth(1024)
        .with_sizing(BatchSizing::Fixed(4))
        .with_flush_deadline(Duration::from_millis(1))
        .with_lanes(lanes);
    let svc = QueryService::start_replicated(Arc::clone(&index), cfg);
    let h = svc.handle();
    let mut tickets = Vec::with_capacity(reqs.len());
    for r in &reqs {
        loop {
            match h.submit(r.clone()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(ServiceError::QueueFull { .. }) => {
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(e) => panic!("submit: {e}"),
            }
        }
    }
    for (i, (t, (want_reply, want_epoch))) in tickets.into_iter().zip(&want).enumerate() {
        let r = t.wait().expect("every request is answered");
        let got = r.result.expect("no typed error in a fault-free run");
        assert_eq!(
            got, *want_reply,
            "request {i} reply drifted ({shards} shards, {lanes} lanes)"
        );
        assert_eq!(
            r.epoch, *want_epoch,
            "request {i} epoch drifted ({shards} shards, {lanes} lanes)"
        );
    }

    let stats = svc.shutdown();
    assert_eq!(stats.completed, reqs.len() as u64, "zero lost");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.updates_applied, n_updates);
    assert_eq!(stats.epoch, n_updates, "final epoch counts every update");

    // Replica convergence: same epoch, bit-identical serialized state.
    let first = index.replica(0).read().expect("lock");
    assert_eq!(first.epoch(), n_updates);
    let snap = first.snapshot();
    drop(first);
    for r in 1..replicas as usize {
        let replica = index.replica(r).read().expect("lock");
        assert_eq!(replica.epoch(), n_updates, "replica {r} epoch");
        assert_eq!(replica.snapshot(), snap, "replica {r} snapshot drifted");
    }
}

#[test]
fn streaming_updates_match_the_serialized_oracle() {
    for shards in [1u32, 2] {
        for lanes in [1usize, 2] {
            for seed in [0x57_01u64, 0x57_02] {
                check(shards, lanes, 140, seed);
            }
        }
    }
}

/// The CI variant (release; run with `--include-ignored`): a longer stream
/// on the largest configuration.
#[test]
#[ignore = "long streaming soak; run in the CI streaming job (release)"]
fn streaming_updates_long_stream() {
    check(2, 2, 1_200, 0x57_10);
}
