//! Fault injection through the whole serving stack: seeded device faults
//! and panicking user metrics against a replicated, multi-lane
//! [`QueryService`]. The contract under chaos:
//!
//! * **zero lost or hung requests** — every admitted request gets exactly
//!   one response (`completed == admitted`), errors included;
//! * **exactness under faults** — every `Ok` answer is bit-identical to
//!   the fault-free direct answer (replicas are exact copies, and the
//!   degraded per-shard composition merges exactly);
//! * **typed failure only for dead shards** — an `Err` response is
//!   [`ServiceError::ShardUnavailable`] and only appears when some shard
//!   really has lost every replica;
//! * **liveness under panics** — a metric that panics deterministically
//!   fails its own batch typed and the service keeps serving.

use gts::metric::{BatchMetric, Metric};
use gts::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic mixed request stream: ranges and two kNN shapes.
fn request_sequence(items: &[Item], n: usize) -> Vec<Request<Item>> {
    (0..n)
        .map(|i| {
            let q = items[(i * 13) % items.len()].clone();
            match i % 3 {
                0 => Request::Range {
                    query: q,
                    radius: 2.0,
                },
                1 => Request::Knn { query: q, k: 3 },
                _ => Request::Knn { query: q, k: 6 },
            }
        })
        .collect()
}

/// Fault-free reference answers from a plain sharded index (the exactness
/// oracle: replication and lanes must never change an answer), one batched
/// call per request shape.
fn reference_answers(
    index: &ShardedGts<Item, ItemMetric>,
    reqs: &[Request<Item>],
) -> Vec<Vec<Neighbor>> {
    let mut out: Vec<Option<Vec<Neighbor>>> = vec![None; reqs.len()];
    let mut range_idx = Vec::new();
    let mut queries = Vec::new();
    let mut radii = Vec::new();
    for (i, r) in reqs.iter().enumerate() {
        if let Request::Range { query, radius } = r {
            range_idx.push(i);
            queries.push(query.clone());
            radii.push(*radius);
        }
    }
    if !range_idx.is_empty() {
        for (i, ans) in range_idx
            .iter()
            .zip(index.batch_range(&queries, &radii).expect("ref mrq"))
        {
            out[*i] = Some(ans);
        }
    }
    for k in [3usize, 6] {
        let mut knn_idx = Vec::new();
        let mut queries = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            if let Request::Knn { query, k: rk } = r {
                if *rk == k {
                    knn_idx.push(i);
                    queries.push(query.clone());
                }
            }
        }
        if !knn_idx.is_empty() {
            for (i, ans) in knn_idx
                .iter()
                .zip(index.batch_knn(&queries, k).expect("ref knn"))
            {
                out[*i] = Some(ans);
            }
        }
    }
    out.into_iter().map(|a| a.expect("answered")).collect()
}

/// The chaos soak: `total` requests through a 2-shard × 2-replica service
/// on 2 lanes while a seeded [`FaultPlan`] fires transient and permanent
/// device faults mid-flight. Asserts the full contract above.
fn chaos_soak(total: usize, transient: usize, permanent: usize, seed: u64) {
    let data = DatasetKind::Words.generate(400, 2027);
    // Fault-free oracle.
    let clean = ShardedGts::build(
        &DevicePool::rtx_2080_ti(2),
        data.items.clone(),
        data.metric,
        GtsParams::default().with_shards(2),
    )
    .expect("build oracle");
    let reqs = request_sequence(&data.items, total);
    let want = reference_answers(&clean, &reqs);

    // The system under chaos: 2 shards × 2 replicas on 4 devices, 2 lanes.
    let pool = DevicePool::rtx_2080_ti(4);
    let index = Arc::new(
        ReplicatedShards::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default().with_shards(2).with_replicas(2),
        )
        .expect("build replicated"),
    );
    let cfg = ServiceConfig::default()
        .with_queue_depth(2048)
        .with_sizing(BatchSizing::Fixed(8))
        .with_flush_deadline(Duration::from_millis(1))
        .with_lanes(2);
    let svc = QueryService::start_replicated(Arc::clone(&index), cfg);
    assert_eq!(svc.num_lanes(), 2);

    // Arm the seeded faults now — construction is done, so every fault
    // fires during serving. `max_launch` keeps them early in the soak.
    let plan = FaultPlan::seeded(seed, pool.len(), transient, permanent, 40);
    plan.arm(&pool);

    let h = svc.handle();
    let mut tickets = Vec::with_capacity(total);
    for r in &reqs {
        loop {
            match h.submit(r.clone()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(ServiceError::QueueFull { .. }) => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
    }

    let mut unavailable = 0u64;
    for (i, t) in tickets.into_iter().enumerate() {
        // `wait` returning at all is the no-hang half of the contract.
        let r = t.wait().expect("every request is answered");
        match r.result {
            Ok(ans) => assert_eq!(
                ans.neighbors(),
                want[i],
                "request {i} answer drifted under faults"
            ),
            Err(ServiceError::ShardUnavailable { .. }) => unavailable += 1,
            Err(e) => panic!("request {i}: only dead shards may fail, got {e}"),
        }
    }

    let stats = svc.shutdown();
    assert_eq!(stats.admitted, total as u64, "zero lost at admission");
    assert_eq!(stats.completed, total as u64, "every request answered");
    assert_eq!(stats.queue_wait_us.count(), total as u64);
    assert_eq!(
        stats.failed, unavailable,
        "errors are exactly the typed ones"
    );
    assert_eq!(stats.shard_unavailable, unavailable);
    assert_eq!(stats.lane_panics, 0, "faults are typed, not lane panics");
    if unavailable > 0 {
        assert!(
            stats.replica.dead_shards > 0,
            "ShardUnavailable implies a shard truly lost every copy"
        );
    }
    assert!(
        stats.device_faults >= 1,
        "the armed plan fired at least once (faults: {:?})",
        plan.specs()
    );
    assert!(
        stats.retries >= 1,
        "a mid-batch fault forces at least one retry"
    );
    println!(
        "chaos soak: {total} requests, {} device faults, {} retries, {} degraded, {} unavailable, lanes {:?}",
        stats.device_faults, stats.retries, stats.degraded_calls, unavailable, stats.lane_batches,
    );
}

#[test]
fn chaos_soak_with_seeded_faults_stays_exact() {
    chaos_soak(600, 3, 1, 0xFA_07);
}

/// The CI soak (release; run with `--include-ignored`): 10k requests under
/// a heavier seeded fault load, including multiple permanent kills.
#[test]
#[ignore = "10k-request chaos soak; run in the CI fault job (release)"]
fn chaos_soak_ten_thousand_requests() {
    chaos_soak(10_000, 6, 2, 0xFA_17);
}

/// A seeded mixed stream for the update/query chaos soak: ~20% updates
/// (inserts and removes, double removes included), the rest range/kNN.
/// Removes only target ids already assigned at that point in the stream.
fn mixed_update_sequence(items: &[Item], n: usize, seed: u64) -> Vec<Request<Item>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assigned = items.len() as u32;
    (0..n)
        .map(|i| match rng.gen_range(0..10u8) {
            0 => {
                let base = rng.gen_range(0..items.len());
                let object =
                    gts::metric::gen::perturb(&items[base], seed ^ (i as u64).wrapping_mul(977));
                assigned += 1;
                Request::Insert { object }
            }
            1 => Request::Remove {
                id: rng.gen_range(0..assigned),
            },
            2..=5 => Request::Range {
                query: items[rng.gen_range(0..items.len())].clone(),
                radius: 2.0,
            },
            _ => Request::Knn {
                query: items[rng.gen_range(0..items.len())].clone(),
                k: 4,
            },
        })
        .collect()
}

/// Mixed update/query chaos: the streaming stream under seeded **transient**
/// device faults. Transient faults retry (queries) or repair (updates) on
/// the same replica and disarm after firing, so unlike the permanent-kill
/// soak the contract stays fully exact, not just degraded-exact:
///
/// * zero lost requests and **zero** typed errors;
/// * every reply AND epoch stamp bit-identical to a serialized replay of
///   the same stream against a clean index;
/// * all replicas converge to the same epoch with bit-identical snapshots
///   — and both match the serialized oracle's snapshot.
fn mixed_chaos_soak(total: usize, transient: usize, seed: u64) {
    let data = DatasetKind::Words.generate(300, 2028);
    let reqs = mixed_update_sequence(&data.items, total, seed);
    let n_updates = reqs.iter().filter(|r| r.is_update()).count() as u64;
    assert!(n_updates > 0, "the stream must exercise the update path");

    // Serialized oracle: a clean same-shape index replayed in admission
    // order via the same `apply` surface the service lanes use.
    let mut oracle = ShardedGts::build(
        &DevicePool::rtx_2080_ti(2),
        data.items.clone(),
        data.metric,
        GtsParams::default().with_shards(2),
    )
    .expect("build oracle");
    let want: Vec<(Reply, u64)> = reqs
        .iter()
        .map(|r| {
            let ack = |a: Applied| {
                Reply::Update(UpdateAck {
                    assigned: a.assigned,
                    removed: a.removed,
                })
            };
            match r {
                Request::Range { query, radius } => (
                    Reply::Neighbors(
                        oracle
                            .batch_range(std::slice::from_ref(query), &[*radius])
                            .expect("oracle mrq")
                            .pop()
                            .expect("one answer"),
                    ),
                    oracle.epoch(),
                ),
                Request::Knn { query, k } => (
                    Reply::Neighbors(
                        oracle
                            .batch_knn(std::slice::from_ref(query), *k)
                            .expect("oracle knn")
                            .pop()
                            .expect("one answer"),
                    ),
                    oracle.epoch(),
                ),
                Request::Insert { object } => {
                    let a = oracle
                        .apply(&UpdateOp::Insert(object.clone()))
                        .expect("oracle insert");
                    let epoch = a.epoch;
                    (ack(a), epoch)
                }
                Request::Remove { id } => {
                    let a = oracle.apply(&UpdateOp::Remove(*id)).expect("oracle remove");
                    let epoch = a.epoch;
                    (ack(a), epoch)
                }
                Request::BatchUpdate {
                    insertions,
                    deletions,
                } => {
                    let a = oracle
                        .apply(&UpdateOp::Batch {
                            insertions: insertions.clone(),
                            deletions: deletions.clone(),
                        })
                        .expect("oracle batch");
                    let epoch = a.epoch;
                    (ack(a), epoch)
                }
            }
        })
        .collect();

    // The system under chaos: 2 shards × 2 replicas on 4 devices, 2 lanes.
    let pool = DevicePool::rtx_2080_ti(4);
    let index = Arc::new(
        ReplicatedShards::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default().with_shards(2).with_replicas(2),
        )
        .expect("build replicated"),
    );
    let cfg = ServiceConfig::default()
        .with_queue_depth(2048)
        .with_sizing(BatchSizing::Fixed(8))
        .with_flush_deadline(Duration::from_millis(1))
        .with_lanes(2);
    let svc = QueryService::start_replicated(Arc::clone(&index), cfg);

    // Transient-only faults, armed after construction so every one fires
    // mid-serving — possibly inside an update's device phase.
    let plan = FaultPlan::seeded(seed, pool.len(), transient, 0, 40);
    plan.arm(&pool);

    let h = svc.handle();
    let mut tickets = Vec::with_capacity(total);
    for r in &reqs {
        loop {
            match h.submit(r.clone()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(ServiceError::QueueFull { .. }) => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
    }
    for (i, (t, (want_reply, want_epoch))) in tickets.into_iter().zip(&want).enumerate() {
        let r = t.wait().expect("every request is answered");
        let got = r.result.expect("transient faults never surface as errors");
        assert_eq!(
            got, *want_reply,
            "request {i} drifted under transient chaos"
        );
        assert_eq!(r.epoch, *want_epoch, "request {i} epoch drifted");
    }

    let stats = svc.shutdown();
    assert_eq!(stats.admitted, total as u64, "zero lost at admission");
    assert_eq!(stats.completed, total as u64, "every request answered");
    assert_eq!(stats.failed, 0, "transient-only chaos fails nothing");
    assert_eq!(stats.updates_applied, n_updates);
    assert_eq!(stats.epoch, n_updates);
    assert!(
        stats.device_faults >= 1,
        "the armed plan fired at least once (faults: {:?})",
        plan.specs()
    );

    // Convergence: every replica at the oracle's epoch with the oracle's
    // exact serialized state, faults or not.
    let oracle_snap = oracle.snapshot();
    for r in 0..2 {
        let replica = index.replica(r).read().expect("replica lock");
        assert_eq!(replica.epoch(), n_updates, "replica {r} epoch");
        assert_eq!(
            replica.snapshot(),
            oracle_snap,
            "replica {r} state drifted from the serialized oracle"
        );
    }
    println!(
        "mixed chaos soak: {total} requests ({n_updates} updates), {} device faults, {} retries",
        stats.device_faults, stats.retries,
    );
}

#[test]
fn mixed_chaos_soak_with_transient_faults_stays_exact() {
    mixed_chaos_soak(500, 4, 0xFA_27);
}

/// The CI streaming soak (release; run with `--include-ignored`): 5k mixed
/// requests under a heavier transient fault load.
#[test]
#[ignore = "5k-request mixed chaos soak; run in the CI streaming job (release)"]
fn mixed_chaos_soak_five_thousand_requests() {
    mixed_chaos_soak(5_000, 10, 0xFA_37);
}

#[test]
fn dead_shard_fails_fast_and_typed_through_the_service() {
    let data = DatasetKind::Words.generate(300, 99);
    let pool = DevicePool::rtx_2080_ti(4);
    let index = Arc::new(
        ReplicatedShards::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default().with_shards(2).with_replicas(2),
        )
        .expect("build"),
    );
    let cfg = ServiceConfig::default()
        .with_sizing(BatchSizing::Fixed(4))
        .with_flush_deadline(Duration::from_millis(1))
        .with_lanes(2);
    let svc = QueryService::start_replicated(Arc::clone(&index), cfg);
    // Kill BOTH copies of shard 1: replica 0's device 1 and replica 1's
    // device 3 (replica-major placement).
    pool.get(1).quarantine();
    pool.get(3).quarantine();

    let h = svc.handle();
    let tickets: Vec<Ticket> = (0..8)
        .map(|i| {
            h.submit(Request::Knn {
                query: data.items[i].clone(),
                k: 3,
            })
            .expect("admitted")
        })
        .collect();
    for t in tickets {
        let r = t.wait().expect("answered, not hung");
        assert_eq!(
            r.result.expect_err("shard 1 is gone"),
            ServiceError::ShardUnavailable { shard: 1 },
        );
    }
    // The service is still alive: it admits, executes, and answers (typed)
    // after the failures — a dead shard degrades, it does not poison.
    let late = h
        .submit(Request::Knn {
            query: data.items[0].clone(),
            k: 3,
        })
        .expect("still admitting");
    assert!(late.wait().expect("still answering").result.is_err());
    let stats = svc.shutdown();
    assert_eq!(stats.completed, 9);
    assert_eq!(stats.failed, 9);
    assert_eq!(stats.shard_unavailable, 9);
    assert_eq!(stats.replica.dead_shards, 1);
}

/// A metric that panics when it touches the poisoned query string —
/// standing in for any misbehaving user metric (NaNs, assertions).
#[derive(Clone, Copy)]
struct PanicOnBoom;

impl Metric<Item> for PanicOnBoom {
    fn distance(&self, a: &Item, b: &Item) -> f64 {
        let (Some(a), Some(b)) = (a.as_text(), b.as_text()) else {
            panic!("text metric")
        };
        assert!(a != "boom" && b != "boom", "boom");
        (a.len() as f64 - b.len() as f64).abs()
    }
    fn work(&self, _: &Item, _: &Item) -> u64 {
        1
    }
    fn name(&self) -> &'static str {
        "panic-on-boom"
    }
}
impl BatchMetric<Item> for PanicOnBoom {}

/// Regression: a panicking user metric used to poison the executor (the
/// thread died, every later ticket disconnected). Now the panic is caught
/// and typed, and the queue keeps draining.
#[test]
fn service_survives_a_panicking_metric() {
    let items: Vec<Item> = (0..160).map(|i| Item::text("x".repeat(i % 30))).collect();
    let pool = DevicePool::rtx_2080_ti(2);
    let index = Arc::new(
        ReplicatedShards::build(
            &pool,
            items.clone(),
            PanicOnBoom,
            GtsParams::default().with_shards(1).with_replicas(2),
        )
        .expect("build never sees the poison"),
    );
    let cfg = ServiceConfig::default()
        .with_sizing(BatchSizing::Fixed(1))
        .with_flush_deadline(Duration::from_millis(1))
        .with_lanes(2);
    let svc = QueryService::start_replicated(index, cfg);
    let h = svc.handle();

    // The poisoned request fails typed — on every replica, so the batch
    // exhausts its budget — without killing the lane that ran it.
    let poisoned = h
        .submit(Request::Knn {
            query: Item::text("boom"),
            k: 3,
        })
        .expect("admitted");
    assert_eq!(
        poisoned.wait().expect("answered, not hung").result,
        Err(ServiceError::BatchPanicked),
    );

    // The service stays live: clean requests afterwards succeed on every
    // lane (more requests than lanes guarantees both drained post-panic).
    let clean: Vec<Ticket> = (0..6)
        .map(|i| {
            h.submit(Request::Knn {
                query: items[i * 11].clone(),
                k: 3,
            })
            .expect("still admitting")
        })
        .collect();
    for t in clean {
        let ans = t.wait().expect("still answering").result.expect("clean ok");
        assert_eq!(ans.neighbors().len(), 3);
    }
    let stats = svc.shutdown();
    assert_eq!(stats.completed, 7, "poisoned + clean all answered");
    assert_eq!(stats.failed, 1);
    assert!(
        stats.metric_panics >= 2,
        "both replicas struck by the poison"
    );
    assert_eq!(stats.shard_unavailable, 0);
    assert_eq!(
        stats.replica.strikes.iter().sum::<u64>(),
        stats.metric_panics,
        "every contained panic is a strike"
    );
}

/// The flight recorder under chaos: a traced service takes a mid-batch
/// device fault, and the dump captured at the instant of the fault holds
/// the faulting request's whole span chain — batch membership (request
/// ids), shard scatter, per-level descent, kernel launches, and the fault
/// itself — without losing a single answer.
fn flight_recorder_soak(total: usize, fault_at_launch: u64, exact_prior: bool) {
    let data = DatasetKind::Words.generate(360, 2029);
    let pool = DevicePool::rtx_2080_ti(4);
    let index = Arc::new(
        ReplicatedShards::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default().with_shards(2).with_replicas(2),
        )
        .expect("build replicated"),
    );
    let cfg = ServiceConfig::default()
        .with_queue_depth(2048)
        .with_sizing(BatchSizing::Fixed(8))
        .with_flush_deadline(Duration::from_millis(1))
        .with_tracing(TraceConfig {
            enabled: true,
            // Large enough that the faulting batch's BatchStart/BatchMember
            // instants are still inside the last-N window at fault time.
            flight_events: 4096,
            ..TraceConfig::default()
        });
    let svc = QueryService::start_replicated(Arc::clone(&index), cfg);

    // Arm a transient fault on replica 0's first device, a few launches in:
    // it fires mid-batch, after some kernels of the same batch ran.
    pool.get(0).arm_fault(fault_at_launch, FaultKind::Transient);

    let h = svc.handle();
    let reqs = request_sequence(&data.items, total);
    let mut tickets = Vec::with_capacity(total);
    for r in &reqs {
        loop {
            match h.submit(r.clone()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(ServiceError::QueueFull { .. }) => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
    }
    for t in tickets {
        t.wait()
            .expect("answered")
            .result
            .expect("a transient fault retries on the sibling replica");
    }
    let stats = svc.shutdown();
    assert_eq!(
        stats.completed, total as u64,
        "no request lost to the fault"
    );
    assert!(stats.device_faults >= 1, "the armed fault fired");

    // Exactly the armed fault dumped (no spurious dumps), tagged right.
    let dumps: Vec<_> = stats
        .flight_dumps
        .iter()
        .filter(|d| d.reason == DumpReason::DeviceFault)
        .collect();
    assert_eq!(dumps.len(), 1, "one armed fault, one dump");
    let dump = dumps[0];

    // The dump ends at the fault on the armed device...
    let fault = dump
        .events
        .iter()
        .find(|e| matches!(e.kind, EventKind::Fault { .. }))
        .expect("the dump holds the fault event itself");
    assert_eq!(fault.device, Some(0), "the armed device faulted");
    let batch = fault.ctx.batch.expect("the fault happened inside a batch");

    // ...and walks the faulting batch's chain all the way back up:
    // admission (request ids via BatchMember), lane, shard scatter,
    // descent levels, and the kernel launches that preceded the fault.
    let members: Vec<_> = dump
        .events
        .iter()
        .filter(|e| e.ctx.batch == Some(batch) && matches!(e.kind, EventKind::BatchMember { .. }))
        .collect();
    assert!(
        !members.is_empty(),
        "the dump names the faulting batch's requests"
    );
    assert!(
        members.iter().all(|e| e.ctx.request.is_some()),
        "every member instant carries its request id"
    );
    for kind in ["batch_start", "shard_scatter", "level", "kernel"] {
        assert!(
            dump.events
                .iter()
                .any(|e| e.ctx.batch == Some(batch) && e.kind.name() == kind),
            "the faulting batch's chain includes {kind} events"
        );
    }
    // The armed device's clock is monotone, so every launch it completed
    // before the armed one left a kernel span ending at or before the
    // fault stamp (sub-batches rotate replicas, so those spans may belong
    // to earlier batches — the count is per device, not per batch).
    let prior_kernels = dump
        .events
        .iter()
        .filter(|e| {
            e.device == Some(0)
                && matches!(e.kind, EventKind::Kernel { .. })
                && e.end_cycles <= fault.begin_cycles
        })
        .count() as u64;
    if exact_prior {
        assert_eq!(
            prior_kernels,
            fault_at_launch - 1,
            "every launch before the armed one left a kernel span in the dump"
        );
    } else {
        // At soak scale the last-N window may have shed the oldest spans;
        // the chain down to the most recent launches must survive.
        assert!(prior_kernels >= 1, "kernel launches precede the fault");
    }
    println!(
        "flight recorder: dump holds {} events, {} members of faulting batch {}, {} prior kernels",
        dump.events.len(),
        members.len(),
        batch,
        prior_kernels,
    );
}

#[test]
fn device_fault_dumps_the_faulting_spans() {
    flight_recorder_soak(64, 5, true);
}

/// The CI flight-recorder chaos soak (release; run with
/// `--include-ignored`): the same contract at soak scale, fault deep in
/// the request stream.
#[test]
#[ignore = "traced chaos soak; run in the CI trace job (release)"]
fn flight_recorder_chaos_soak() {
    flight_recorder_soak(2_000, 400, false);
}
