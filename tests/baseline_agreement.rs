//! Cross-method agreement: every *exact* method must return identical MRQ
//! answers and distance-identical MkNNQ answers on the same data — the
//! property that makes the paper's throughput comparisons meaningful.

use gts::prelude::*;

fn knn_dists(v: &[Neighbor]) -> Vec<f64> {
    v.iter().map(|n| n.dist).collect()
}

#[test]
fn all_exact_methods_agree() {
    for kind in [DatasetKind::Words, DatasetKind::TLoc, DatasetKind::Color] {
        let data = kind.generate(400, 51);
        let dev = Device::rtx_2080_ti();
        let scan = LinearScan::new(data.items.clone(), data.metric);
        let bst = Bst::build(data.items.clone(), data.metric);
        let mvpt = Mvpt::build(data.items.clone(), data.metric);
        let egnat = Egnat::build(data.items.clone(), data.metric).expect("egnat");
        let table = GpuTable::new(&dev, data.items.clone(), data.metric).expect("gpu-table");
        let gtree = GpuTree::build(&dev, data.items.clone(), data.metric).expect("gpu-tree");
        let gts =
            Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("gts");

        for qi in [3u32, 177, 399] {
            let q = data.item(qi).clone();
            let want_knn = scan.knn_query(&q, 7).expect("scan");
            let r = want_knn.last().expect("kth").dist;
            let want_mrq = scan.range_query(&q, r).expect("scan");

            let mrqs: Vec<(&str, Vec<Neighbor>)> = vec![
                ("BST", bst.range_query(&q, r).expect("bst")),
                ("MVPT", mvpt.range_query(&q, r).expect("mvpt")),
                ("EGNAT", egnat.range_query(&q, r).expect("egnat")),
                ("GPU-Table", table.range_query(&q, r).expect("table")),
                ("GPU-Tree", gtree.range_query(&q, r).expect("gtree")),
                ("GTS", gts.range_query(&q, r).expect("gts")),
            ];
            for (name, got) in &mrqs {
                assert_eq!(got, &want_mrq, "{kind:?} {name} MRQ q={qi}");
            }

            let knns: Vec<(&str, Vec<Neighbor>)> = vec![
                ("BST", bst.knn_query(&q, 7).expect("bst")),
                ("MVPT", mvpt.knn_query(&q, 7).expect("mvpt")),
                ("EGNAT", egnat.knn_query(&q, 7).expect("egnat")),
                ("GPU-Table", table.knn_query(&q, 7).expect("table")),
                ("GPU-Tree", gtree.knn_query(&q, 7).expect("gtree")),
                ("GTS", gts.knn_query(&q, 7).expect("gts")),
            ];
            for (name, got) in &knns {
                assert_eq!(
                    knn_dists(got),
                    knn_dists(&want_knn),
                    "{kind:?} {name} kNN q={qi}"
                );
            }
        }
    }
}

#[test]
fn lbpg_agrees_on_lp_data() {
    for kind in [DatasetKind::TLoc, DatasetKind::Color] {
        let data = kind.generate(350, 53);
        let dev = Device::rtx_2080_ti();
        let scan = LinearScan::new(data.items.clone(), data.metric);
        let lbpg = LbpgTree::build(&dev, data.items.clone(), data.metric).expect("lbpg");
        let q = data.item(11).clone();
        let want = scan.knn_query(&q, 5).expect("scan");
        let r = want.last().expect("kth").dist;
        assert_eq!(
            lbpg.range_query(&q, r).expect("lbpg"),
            scan.range_query(&q, r).expect("scan"),
            "{kind:?}"
        );
        assert_eq!(
            knn_dists(&lbpg.knn_query(&q, 5).expect("lbpg")),
            knn_dists(&want),
            "{kind:?}"
        );
    }
}

#[test]
fn ganns_recall_reported_not_asserted_exact() {
    let data = DatasetKind::Vector.generate(300, 55);
    let dev = Device::rtx_2080_ti();
    let scan = LinearScan::new(data.items.clone(), data.metric);
    let ganns = Ganns::build(&dev, data.items.clone(), data.metric).expect("ganns");
    assert!(!ganns.is_exact());
    let mut recall_sum = 0.0;
    for qi in 0..15u32 {
        let q = data.item(qi * 19).clone();
        let want = scan.knn_query(&q, 10).expect("scan");
        let got = ganns.knn_query(&q, 10).expect("ganns");
        recall_sum += Ganns::recall(&want, &got);
    }
    let recall = recall_sum / 15.0;
    assert!(recall > 0.7, "GANNS recall too low: {recall}");
}

#[test]
fn gts_agrees_with_mvpt_batch_wise() {
    // The paper models GTS on MVPT; batched GTS output must equal MVPT's
    // sequential answers query by query.
    let data = DatasetKind::Dna.generate(250, 57);
    let dev = Device::rtx_2080_ti();
    let mvpt = Mvpt::build(data.items.clone(), data.metric);
    let gts = Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("gts");
    let queries: Vec<Item> = (0..16u32).map(|i| data.item(i * 7).clone()).collect();
    let radii = vec![12.0; queries.len()];
    let batched = gts.batch_range(&queries, &radii).expect("batch");
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(
            batched[i],
            mvpt.range_query(q, radii[i]).expect("mvpt"),
            "query {i}"
        );
    }
}
