//! Arena invariance: the flat-arena batched kernels are a pure layout
//! optimisation, and host-parallel chunked execution is a pure wall-clock
//! optimisation. Searches over the arena path must return **identical**
//! MRQ/MkNNQ answers *and identical simulated cycle counts* to the per-pair
//! fallback path (`use_arena = false`), which accesses boxed `Item` payloads
//! one pair at a time exactly like the original implementation — and runs
//! with any `host_threads` setting must be bit-identical to single-threaded
//! runs, cycle counts included.

use gts::gpu::DeviceStats;
use gts::prelude::*;

struct Run {
    build_stats: DeviceStats,
    mrq: Vec<Vec<Neighbor>>,
    knn: Vec<Vec<Neighbor>>,
    search_cycles: u64,
    search_stats: gts::core::stats::StatsSnapshot,
}

fn run_with(kind: DatasetKind, n: usize, params: GtsParams, radius: f64) -> Run {
    let data = kind.generate(n, 1234);
    let dev = Device::rtx_2080_ti();
    let gts = Gts::build(&dev, data.items.clone(), data.metric, params).expect("build");
    let build_stats = dev.stats();
    let queries: Vec<Item> = (0..48u32).map(|i| data.item(i * 7).clone()).collect();
    let radii = vec![radius; queries.len()];
    let mark = dev.cycles();
    let mrq = gts.batch_range(&queries, &radii).expect("mrq");
    let knn = gts.batch_knn(&queries, 6).expect("knn");
    let search_cycles = dev.cycles() - mark;
    Run {
        build_stats,
        mrq,
        knn,
        search_cycles,
        search_stats: gts.stats(),
    }
}

fn run(kind: DatasetKind, n: usize, use_arena: bool, radius: f64) -> Run {
    run_with(
        kind,
        n,
        GtsParams::default().with_use_arena(use_arena),
        radius,
    )
}

fn assert_invariant(kind: DatasetKind, radius: f64) {
    let arena = run(kind, 700, true, radius);
    let per_pair = run(kind, 700, false, radius);
    assert_eq!(
        arena.mrq, per_pair.mrq,
        "{kind:?}: MRQ answers must be bit-identical"
    );
    assert_eq!(
        arena.knn, per_pair.knn,
        "{kind:?}: MkNNQ answers must be bit-identical"
    );
    assert_eq!(
        arena.build_stats, per_pair.build_stats,
        "{kind:?}: construction must charge identical cycles/work/kernels"
    );
    assert_eq!(
        arena.search_cycles, per_pair.search_cycles,
        "{kind:?}: search must charge identical cycles"
    );
    assert_eq!(
        arena.search_stats, per_pair.search_stats,
        "{kind:?}: identical pruning/verification counters"
    );
}

#[test]
fn words_arena_matches_per_pair_path() {
    assert_invariant(DatasetKind::Words, 2.0);
}

#[test]
fn vector_arena_matches_per_pair_path() {
    assert_invariant(DatasetKind::Vector, 0.35);
}

/// Thread-count invariance: `host_threads` may change wall-clock only.
/// The dataset is sized so id blocks exceed the chunking threshold
/// (2 × `BATCH_CHUNK` pairs) and the parallel dispatch path actually runs;
/// answers, device counters, and search cycle counts must be bit-identical
/// between a single-threaded run and a many-threaded run.
fn assert_thread_invariant(kind: DatasetKind, radius: f64) {
    let base = GtsParams::default();
    let single = run_with(kind, 6_000, base.with_host_threads(1), radius);
    for threads in [3usize, 8] {
        let multi = run_with(kind, 6_000, base.with_host_threads(threads), radius);
        assert_eq!(
            single.mrq, multi.mrq,
            "{kind:?}: MRQ answers must not depend on host_threads={threads}"
        );
        assert_eq!(
            single.knn, multi.knn,
            "{kind:?}: MkNNQ answers must not depend on host_threads={threads}"
        );
        assert_eq!(
            single.build_stats, multi.build_stats,
            "{kind:?}: construction counters must not depend on host_threads={threads}"
        );
        assert_eq!(
            single.search_cycles, multi.search_cycles,
            "{kind:?}: search cycles must not depend on host_threads={threads}"
        );
        assert_eq!(
            single.search_stats, multi.search_stats,
            "{kind:?}: pruning counters must not depend on host_threads={threads}"
        );
    }
}

#[test]
fn words_thread_count_invariance() {
    assert_thread_invariant(DatasetKind::Words, 2.0);
}

#[test]
fn vector_thread_count_invariance() {
    assert_thread_invariant(DatasetKind::Vector, 0.35);
}

/// The singular-query API is the batched descent engine run on a batch of
/// one — there is no separate single-query descent left to drift. Answers
/// *and simulated cycles* of `range_query`/`knn_query` must equal the
/// batch-of-one calls exactly (two identical indexes on two identical
/// devices, so the cycle comparison is independent of call order).
#[test]
fn single_query_is_a_batch_of_one_through_the_engine() {
    let data = DatasetKind::Words.generate(800, 4321);
    let build = || {
        let dev = Device::rtx_2080_ti();
        let gts =
            Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
        (dev, gts)
    };
    let (dev_single, single) = build();
    let (dev_batch, batch) = build();
    assert_eq!(dev_single.stats(), dev_batch.stats(), "identical builds");
    let q = &data.items[17];

    let mark = dev_single.cycles();
    let want_range = single.range_query(q, 2.0).expect("range");
    let single_range_cycles = dev_single.cycles() - mark;
    let mark = dev_batch.cycles();
    let got_range = batch
        .batch_range(std::slice::from_ref(q), &[2.0])
        .expect("batch range")
        .pop()
        .expect("one answer");
    assert_eq!(got_range, want_range, "range answers equal batch-of-one");
    assert_eq!(
        dev_batch.cycles() - mark,
        single_range_cycles,
        "range cycles equal batch-of-one"
    );

    let mark = dev_single.cycles();
    let want_knn = single.knn_query(q, 6).expect("knn");
    let single_knn_cycles = dev_single.cycles() - mark;
    let mark = dev_batch.cycles();
    let got_knn = batch
        .batch_knn(std::slice::from_ref(q), 6)
        .expect("batch knn")
        .pop()
        .expect("one answer");
    assert_eq!(got_knn, want_knn, "knn answers equal batch-of-one");
    assert_eq!(
        dev_batch.cycles() - mark,
        single_knn_cycles,
        "knn cycles equal batch-of-one"
    );
}

/// Layout invariance: the SIMD-aligned block layout is a pure wall-clock
/// lever. Because the block-wise kernels sum lanes in the same canonical
/// order as the packed scalar kernels (zero-padded tails are a bitwise
/// identity), answers must be **bit-identical** between `ArenaLayout::Legacy`
/// and `ArenaLayout::Aligned`, and because the work model reads payload
/// lengths only, simulated cycle counts must match exactly too — at every
/// `host_threads` setting.
fn assert_layout_invariant(kind: DatasetKind, radius: f64) {
    let base = GtsParams::default().with_use_arena(true);
    let legacy = run_with(
        kind,
        700,
        base.with_arena_layout(ArenaLayout::Legacy),
        radius,
    );
    for threads in [1usize, 3, 8] {
        let aligned = run_with(
            kind,
            700,
            base.with_arena_layout(ArenaLayout::Aligned)
                .with_host_threads(threads),
            radius,
        );
        assert_eq!(
            legacy.mrq, aligned.mrq,
            "{kind:?}: MRQ answers must be layout-invariant (threads={threads})"
        );
        assert_eq!(
            legacy.knn, aligned.knn,
            "{kind:?}: MkNNQ answers must be layout-invariant (threads={threads})"
        );
        assert_eq!(
            legacy.build_stats, aligned.build_stats,
            "{kind:?}: construction counters must be layout-invariant (threads={threads})"
        );
        assert_eq!(
            legacy.search_cycles, aligned.search_cycles,
            "{kind:?}: search cycles must be layout-invariant (threads={threads})"
        );
        assert_eq!(
            legacy.search_stats, aligned.search_stats,
            "{kind:?}: pruning counters must be layout-invariant (threads={threads})"
        );
    }
}

#[test]
fn vector_aligned_layout_matches_legacy() {
    assert_layout_invariant(DatasetKind::Vector, 0.35);
}

#[test]
fn tloc_aligned_layout_matches_legacy() {
    assert_layout_invariant(DatasetKind::TLoc, 900.0);
}

/// Edit distance has no block kernel: requesting the aligned layout must
/// degrade to the packed legacy arena (not crash, not change answers).
#[test]
fn words_aligned_request_degrades_to_legacy() {
    let base = GtsParams::default().with_use_arena(true);
    let legacy = run_with(DatasetKind::Words, 700, base, 2.0);
    let aligned = run_with(
        DatasetKind::Words,
        700,
        base.with_arena_layout(ArenaLayout::Aligned),
        2.0,
    );
    assert_eq!(legacy.mrq, aligned.mrq);
    assert_eq!(legacy.knn, aligned.knn);
    assert_eq!(legacy.build_stats, aligned.build_stats);
    assert_eq!(legacy.search_cycles, aligned.search_cycles);
}

#[test]
fn updates_preserve_invariance_through_the_cache_scan() {
    let data = DatasetKind::Words.generate(300, 77);
    let run = |use_arena: bool| {
        let dev = Device::rtx_2080_ti();
        let mut gts = Gts::build(
            &dev,
            data.items.clone(),
            data.metric,
            GtsParams::default().with_use_arena(use_arena),
        )
        .expect("build");
        gts.remove(3).expect("rm");
        for i in 0..8 {
            gts.insert(Item::text(format!("inserted{i}"))).expect("ins");
        }
        let queries = vec![Item::text("inserted3"), data.items[10].clone()];
        let mark = dev.cycles();
        let mrq = gts.batch_range(&queries, &[1.0, 2.0]).expect("mrq");
        let knn = gts.batch_knn(&queries, 4).expect("knn");
        (mrq, knn, dev.cycles() - mark)
    };
    let (mrq_a, knn_a, cycles_a) = run(true);
    let (mrq_b, knn_b, cycles_b) = run(false);
    assert_eq!(mrq_a, mrq_b);
    assert_eq!(knn_a, knn_b);
    assert_eq!(cycles_a, cycles_b, "cache-scan kernels charge identically");
    assert!(
        mrq_a[0].iter().any(|n| n.id >= 300),
        "cached insertions are found through the arena-extended scan"
    );
}
