//! Integration tests of the device model as GTS exercises it: clock
//! determinism end-to-end, memory lifecycle across index rebuilds, and the
//! simulated-time ordering the experiments rely on.

use gts::gpu::DeviceConfig;
use gts::prelude::*;

#[test]
fn simulated_time_is_deterministic_end_to_end() {
    let run = |threads: usize| {
        let dev = Device::new(DeviceConfig {
            host_threads: threads,
            ..DeviceConfig::rtx_2080_ti()
        });
        let data = DatasetKind::TLoc.generate(3_000, 5);
        let gts =
            Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
        let queries: Vec<Item> = (0..64u32).map(|i| data.item(i * 13).clone()).collect();
        let radii = vec![0.7; queries.len()];
        let answers = gts.batch_range(&queries, &radii).expect("batch");
        let knn = gts.batch_knn(&queries, 5).expect("knn");
        (dev.cycles(), answers, knn)
    };
    let (c1, a1, k1) = run(1);
    let (c8, a8, k8) = run(8);
    assert_eq!(c1, c8, "simulated cycles must not depend on host threads");
    assert_eq!(a1, a8, "answers must not depend on host threads");
    assert_eq!(k1, k8);
}

#[test]
fn device_memory_returns_to_baseline_after_drop() {
    let dev = Device::rtx_2080_ti();
    let baseline = dev.allocated_bytes();
    let data = DatasetKind::Color.generate(1_000, 5);
    {
        let mut gts =
            Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
        assert!(dev.allocated_bytes() > baseline);
        // Rebuilds must not leak reservations.
        for _ in 0..3 {
            gts.rebuild().expect("rebuild");
        }
        let q: Vec<Item> = data.items[..32].to_vec();
        gts.batch_range(&q, &vec![0.1; 32]).expect("query");
    }
    assert_eq!(
        dev.allocated_bytes(),
        baseline,
        "all reservations must be released on drop"
    );
}

#[test]
fn more_work_means_more_simulated_time() {
    let dev = Device::rtx_2080_ti();
    let data = DatasetKind::Words.generate(2_000, 5);
    let gts =
        Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
    let queries: Vec<Item> = (0..32u32).map(|i| data.item(i).clone()).collect();

    let m = dev.cycles();
    gts.batch_range(&queries, &vec![1.0; 32]).expect("r=1");
    let t_small = dev.cycles() - m;

    let m = dev.cycles();
    gts.batch_range(&queries, &vec![8.0; 32]).expect("r=8");
    let t_big = dev.cycles() - m;
    assert!(
        t_big > t_small,
        "larger radius verifies more objects: {t_small} vs {t_big}"
    );
}

#[test]
fn transfers_show_up_in_stats() {
    let dev = Device::rtx_2080_ti();
    let data = DatasetKind::Vector.generate(500, 5);
    let gts =
        Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
    let s0 = dev.stats();
    let queries: Vec<Item> = data.items[..16].to_vec();
    gts.batch_knn(&queries, 3).expect("knn");
    let s1 = dev.stats();
    assert!(
        s1.h2d_bytes > s0.h2d_bytes,
        "queries must be shipped to device"
    );
    assert!(s1.d2h_bytes > s0.d2h_bytes, "answers must be shipped back");
    assert!(s1.kernels > s0.kernels);
}

#[test]
fn gts_build_time_scales_sublinearly_in_simulated_time() {
    // §4.5: construction is O(⌈n/C⌉ log² n) per level — at these sizes the
    // device soaks up the parallel work, so 4x data must cost far less than
    // 4x simulated time ("the index for 10 million objects can be rebuilt
    // within 2 seconds").
    let time_for = |n: usize| {
        let dev = Device::rtx_2080_ti();
        let data = DatasetKind::TLoc.generate(n, 5);
        let start = dev.cycles();
        let _g = Gts::build(&dev, data.items, data.metric, GtsParams::default()).expect("build");
        dev.cycles() - start
    };
    let t1 = time_for(2_000);
    let t4 = time_for(8_000);
    assert!(
        (t4 as f64) < (t1 as f64) * 3.0,
        "expected sublinear scaling: {t1} -> {t4}"
    );
}
