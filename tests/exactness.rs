//! End-to-end exactness: GTS must return byte-identical MRQ answers and
//! distance-identical MkNNQ answers to a brute-force linear scan, on every
//! dataset kind of the paper, across radii, k values, and node capacities.

use gts::prelude::*;

const N: usize = 600;

fn scan(data: &Dataset) -> LinearScan {
    LinearScan::new(data.items.clone(), data.metric)
}

fn build(data: &Dataset, nc: u32) -> Gts<Item, ItemMetric> {
    let dev = Device::rtx_2080_ti();
    Gts::build(
        &dev,
        data.items.clone(),
        data.metric,
        GtsParams::default().with_node_capacity(nc),
    )
    .expect("build")
}

/// kNN answers may differ in id at tie boundaries; distances must agree.
fn assert_knn_equiv(a: &[Neighbor], b: &[Neighbor], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: cardinality");
    for (x, y) in a.iter().zip(b) {
        assert!(
            (x.dist - y.dist).abs() < 1e-9,
            "{ctx}: dist {} vs {}",
            x.dist,
            y.dist
        );
    }
}

#[test]
fn gts_matches_scan_on_every_dataset_kind() {
    for kind in DatasetKind::ALL {
        let data = kind.generate(N, 97);
        let gts = build(&data, 20);
        let scan = scan(&data);
        for qi in [0usize, N / 2, N - 1] {
            let q = data.item(qi as u32).clone();
            // Radii derived from the data's own kNN structure.
            let knn = scan.knn_query(&q, 16).expect("scan knn");
            for k in [1usize, 4, 16] {
                let got = gts.knn_query(&q, k).expect("gts knn");
                let want = scan.knn_query(&q, k).expect("scan knn");
                assert_knn_equiv(&got, &want, &format!("{kind:?} knn k={k} q={qi}"));
            }
            for r in [knn[3].dist, knn[15].dist, 0.0] {
                let got = gts.range_query(&q, r).expect("gts mrq");
                let want = scan.range_query(&q, r).expect("scan mrq");
                assert_eq!(got, want, "{kind:?} mrq r={r} q={qi}");
            }
        }
    }
}

#[test]
fn exact_across_node_capacities() {
    let data = DatasetKind::TLoc.generate(900, 3);
    let scan = scan(&data);
    let q = data.item(17).clone();
    let r = scan.knn_query(&q, 25).expect("scan")[24].dist;
    let want = scan.range_query(&q, r).expect("scan");
    for nc in [2u32, 3, 10, 20, 80, 320] {
        let gts = build(&data, nc);
        assert_eq!(
            gts.range_query(&q, r).expect("gts"),
            want,
            "node capacity {nc}"
        );
    }
}

#[test]
fn batch_answers_equal_single_answers() {
    let data = DatasetKind::Words.generate(500, 5);
    let gts = build(&data, 20);
    let queries: Vec<Item> = (0..40u32).map(|i| data.item(i * 7).clone()).collect();
    let radii = vec![2.0; queries.len()];
    let batched = gts.batch_range(&queries, &radii).expect("batch");
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(
            batched[i],
            gts.range_query(q, radii[i]).expect("single"),
            "query {i}"
        );
    }
    let bk = gts.batch_knn(&queries, 6).expect("batch knn");
    for (i, q) in queries.iter().enumerate() {
        assert_knn_equiv(
            &bk[i],
            &gts.knn_query(q, 6).expect("single"),
            "batch-vs-single",
        );
    }
}

#[test]
fn query_not_in_dataset() {
    let data = DatasetKind::Vector.generate(400, 5);
    let gts = build(&data, 20);
    let scan = scan(&data);
    // A perturbed external query object.
    let q = gts::metric::gen::perturb(data.item(3), 777);
    let want = scan.knn_query(&q, 9).expect("scan");
    let got = gts.knn_query(&q, 9).expect("gts");
    assert_knn_equiv(&got, &want, "external query");
}

#[test]
fn k_larger_than_dataset_returns_everything() {
    let data = DatasetKind::Words.generate(50, 5);
    let gts = build(&data, 4);
    let got = gts.knn_query(&data.item(0).clone(), 500).expect("knn");
    assert_eq!(got.len(), 50);
    // Zero k, zero radius edge cases.
    assert!(gts
        .knn_query(&data.item(0).clone(), 0)
        .expect("k=0")
        .is_empty());
    let zero = gts.range_query(&data.item(0).clone(), 0.0).expect("r=0");
    assert!(zero.iter().any(|n| n.id == 0), "self at distance 0");
}

#[test]
fn empty_batch_is_fine() {
    let data = DatasetKind::TLoc.generate(300, 5);
    let gts = build(&data, 20);
    assert!(gts.batch_range(&[], &[]).expect("empty").is_empty());
    assert!(gts.batch_knn(&[], 5).expect("empty").is_empty());
}
