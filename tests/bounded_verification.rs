//! Bounded (early-abandoning) leaf verification: with
//! `GtsParams::bounded_verification` on, every survivor of the
//! stored-distance filter is evaluated by the banded
//! `distance_batch_bounded` kernel against its query's radius / current kNN
//! bound. The toggle must never change an answer — the bounded kernels are
//! exact whenever they report a distance, and the kNN bound semantics are
//! tie-safe — while simulated search cycles may only *shrink* (the Ukkonen
//! band never exceeds the full DP, and every other kernel is untouched).

use gts::prelude::*;

struct Run {
    mrq: Vec<Vec<Neighbor>>,
    knn: Vec<Vec<Neighbor>>,
    search_cycles: u64,
    stats: gts::core::stats::StatsSnapshot,
}

fn run_with(kind: DatasetKind, n: usize, params: GtsParams, radius: f64) -> Run {
    let data = kind.generate(n, 909);
    let dev = Device::rtx_2080_ti();
    let gts = Gts::build(&dev, data.items.clone(), data.metric, params).expect("build");
    let queries: Vec<Item> = (0..40u32).map(|i| data.item(i * 11).clone()).collect();
    let radii = vec![radius; queries.len()];
    let mark = dev.cycles();
    let mrq = gts.batch_range(&queries, &radii).expect("mrq");
    let knn = gts.batch_knn(&queries, 7).expect("knn");
    Run {
        mrq,
        knn,
        search_cycles: dev.cycles() - mark,
        stats: gts.stats(),
    }
}

#[test]
fn bounded_verification_preserves_answers_and_saves_edit_cycles() {
    let exact = run_with(DatasetKind::Words, 1500, GtsParams::default(), 2.0);
    let bounded = run_with(
        DatasetKind::Words,
        1500,
        GtsParams::default().with_bounded_verification(true),
        2.0,
    );
    assert_eq!(bounded.mrq, exact.mrq, "MRQ answers are toggle-invariant");
    assert_eq!(bounded.knn, exact.knn, "MkNNQ answers are toggle-invariant");
    assert_eq!(
        exact.stats.leaf_abandoned, 0,
        "the default path never abandons"
    );
    assert!(
        bounded.stats.leaf_abandoned > 0,
        "a selective radius must abandon some verifications"
    );
    assert_eq!(
        bounded.stats.leaf_verified, exact.stats.leaf_verified,
        "the same survivors reach the verification kernel"
    );
    assert!(
        bounded.search_cycles < exact.search_cycles,
        "banded edit DP must shave simulated cycles: {} vs {}",
        bounded.search_cycles,
        exact.search_cycles
    );
}

#[test]
fn bounded_verification_is_a_noop_for_vector_metrics() {
    // L2 has no early-abandoning kernel: the bounded path computes full
    // distances and charges full work, so answers *and cycles* must match.
    let exact = run_with(DatasetKind::Vector, 1200, GtsParams::default(), 0.4);
    let bounded = run_with(
        DatasetKind::Vector,
        1200,
        GtsParams::default().with_bounded_verification(true),
        0.4,
    );
    assert_eq!(bounded.mrq, exact.mrq);
    assert_eq!(bounded.knn, exact.knn);
    assert_eq!(
        bounded.search_cycles, exact.search_cycles,
        "no banding for L2 — identical simulated time"
    );
}

#[test]
fn bounded_verification_composes_with_shards_and_fallback_paths() {
    // The toggle must stay answer-invariant through the sharded scatter and
    // with the arena disabled (per-pair payload resolution).
    let data = DatasetKind::Words.generate(900, 31);
    let queries: Vec<Item> = (0..24u32).map(|i| data.item(i * 13).clone()).collect();
    let radii = vec![2.0; queries.len()];

    let reference = {
        let dev = Device::rtx_2080_ti();
        let gts =
            Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
        (
            gts.batch_range(&queries, &radii).expect("mrq"),
            gts.batch_knn(&queries, 5).expect("knn"),
        )
    };

    for use_arena in [true, false] {
        let params = GtsParams::default()
            .with_bounded_verification(true)
            .with_use_arena(use_arena)
            .with_shards(3);
        let pool = DevicePool::rtx_2080_ti(3);
        let sharded =
            ShardedGts::build(&pool, data.items.clone(), data.metric, params).expect("build");
        assert_eq!(
            sharded.batch_range(&queries, &radii).expect("mrq"),
            reference.0,
            "use_arena = {use_arena}"
        );
        assert_eq!(
            sharded.batch_knn(&queries, 5).expect("knn"),
            reference.1,
            "use_arena = {use_arena}"
        );
        assert!(sharded.stats().leaf_abandoned > 0);
    }
}
