//! Approximate MkNNQ (the paper's §7 future-work direction, implemented as
//! beam-limited traversal): recall must degrade gracefully with the beam
//! width, the answers must always be a subset of the database, and a wide
//! beam must recover the exact results.

use gts::prelude::*;
use std::collections::HashSet;

fn recall(exact: &[Neighbor], approx: &[Neighbor]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let want: HashSet<u32> = exact.iter().map(|n| n.id).collect();
    approx.iter().filter(|n| want.contains(&n.id)).count() as f64 / exact.len() as f64
}

#[test]
fn wide_beam_recovers_exact_answers() {
    let data = DatasetKind::Vector.generate(800, 71);
    let dev = Device::rtx_2080_ti();
    let gts =
        Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
    let queries: Vec<Item> = (0..24u32).map(|i| data.item(i * 31).clone()).collect();
    let exact = gts.batch_knn(&queries, 10).expect("exact");
    let wide = gts
        .batch_knn_approx(&queries, 10, 1_000_000)
        .expect("wide beam");
    for (e, w) in exact.iter().zip(&wide) {
        assert_eq!(e.len(), w.len());
        for (x, y) in e.iter().zip(w) {
            assert!((x.dist - y.dist).abs() < 1e-9);
        }
    }
}

#[test]
fn recall_improves_with_beam_and_narrow_beam_is_cheaper() {
    let data = DatasetKind::Color.generate(3_000, 73);
    let dev = Device::rtx_2080_ti();
    let gts =
        Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
    let queries: Vec<Item> = (0..32u32).map(|i| data.item(i * 13).clone()).collect();
    let exact = gts.batch_knn(&queries, 10).expect("exact");

    let mut prev_recall = -1.0;
    let mut prev_cycles = u64::MAX;
    for beam in [1usize, 4, 64] {
        gts.reset_stats();
        let mark = dev.cycles();
        let approx = gts.batch_knn_approx(&queries, 10, beam).expect("approx");
        let cycles = dev.cycles() - mark;
        let r: f64 = exact
            .iter()
            .zip(&approx)
            .map(|(e, a)| recall(e, a))
            .sum::<f64>()
            / exact.len() as f64;
        assert!(
            r >= prev_recall - 0.05,
            "recall must not collapse as beam grows: beam={beam} r={r}"
        );
        assert!(r > 0.0, "beam={beam} found nothing at all");
        if beam == 1 {
            assert!(
                cycles < prev_cycles,
                "narrowest beam must be cheaper than exact"
            );
        }
        prev_recall = r;
        prev_cycles = cycles;
    }
    assert!(
        prev_recall > 0.85,
        "beam=64 should be near-exact, got {prev_recall}"
    );
}

#[test]
fn approx_results_are_real_objects_with_true_distances() {
    use gts::metric::Metric as _;
    let data = DatasetKind::Words.generate(600, 75);
    let dev = Device::rtx_2080_ti();
    let gts =
        Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
    let q = data.item(5).clone();
    let got = gts
        .batch_knn_approx(std::slice::from_ref(&q), 8, 2)
        .expect("approx")
        .pop()
        .expect("one answer");
    assert!(!got.is_empty());
    for n in &got {
        let real = data.metric.distance(&q, data.item(n.id));
        assert!(
            (real - n.dist).abs() < 1e-9,
            "reported distance must be the true distance"
        );
    }
    // Ascending canonical order.
    assert!(got.windows(2).all(|w| w[0].cmp_key() <= w[1].cmp_key()));
}
