//! The two-stage memory strategy (Challenge II): under severe device-memory
//! pressure GTS must form query groups and still return exact answers;
//! with grouping disabled the same workload must hit the memory deadlock
//! (OutOfMemory), reproducing the naive-strategy failure it was designed to
//! avoid.

use gts::gpu::DeviceConfig;
use gts::metric::index::IndexError;
use gts::prelude::*;

fn tiny_device(bytes: u64) -> std::sync::Arc<Device> {
    Device::new(DeviceConfig::rtx_2080_ti().with_memory_bytes(bytes))
}

#[test]
fn grouping_preserves_exactness_under_pressure() {
    let data = DatasetKind::TLoc.generate(3_000, 13);
    // Roomy device: reference answers, no grouping expected.
    let roomy = Device::rtx_2080_ti();
    let reference = Gts::build(
        &roomy,
        data.items.clone(),
        data.metric,
        GtsParams::default(),
    )
    .expect("reference build");
    let queries: Vec<Item> = (0..128u32).map(|i| data.item(i * 3).clone()).collect();
    let radii = vec![1.0; queries.len()];
    let want = reference.batch_range(&queries, &radii).expect("reference");
    assert_eq!(
        reference.stats().groups_formed,
        0,
        "roomy run must not group"
    );

    // Tight device: just enough for the index + small frontiers.
    let index_footprint = reference.memory_bytes() + data.data_bytes();
    let tight = tiny_device(index_footprint + 96 * 1024);
    let squeezed = Gts::build(
        &tight,
        data.items.clone(),
        data.metric,
        GtsParams::default(),
    )
    .expect("tight build");
    let got = squeezed.batch_range(&queries, &radii).expect("tight batch");
    assert_eq!(got, want, "grouped answers must be identical");
    assert!(
        squeezed.stats().groups_formed > 0,
        "tight memory must force query groups"
    );
}

#[test]
fn grouping_disabled_deadlocks() {
    let data = DatasetKind::TLoc.generate(3_000, 13);
    let probe = Device::rtx_2080_ti();
    let footprint = {
        let idx = Gts::build(
            &probe,
            data.items.clone(),
            data.metric,
            GtsParams::default(),
        )
        .expect("probe build");
        idx.memory_bytes() + data.data_bytes()
    };
    let tight = tiny_device(footprint + 96 * 1024);
    let params = GtsParams {
        query_grouping: false,
        ..GtsParams::default()
    };
    let naive =
        Gts::build(&tight, data.items.clone(), data.metric, params).expect("build still fits");
    let queries: Vec<Item> = (0..512u32).map(|i| data.item(i % 3000).clone()).collect();
    let radii = vec![2.0; queries.len()];
    let err = naive.batch_range(&queries, &radii);
    assert!(
        matches!(err, Err(IndexError::OutOfMemory { .. })),
        "naive strategy must deadlock: {err:?}"
    );
    // The grouped index on the same device handles the same batch.
    let grouped = Gts::build(
        &tiny_device(footprint + 96 * 1024),
        data.items.clone(),
        data.metric,
        GtsParams::default(),
    )
    .expect("build");
    assert!(grouped.batch_range(&queries, &radii).is_ok());
}

#[test]
fn knn_groups_share_bounds_and_stay_exact() {
    let data = DatasetKind::Color.generate(1_500, 13);
    let probe = Device::rtx_2080_ti();
    let reference = Gts::build(
        &probe,
        data.items.clone(),
        data.metric,
        GtsParams::default(),
    )
    .expect("build");
    let queries: Vec<Item> = (0..96u32).map(|i| data.item(i * 7).clone()).collect();
    let want = reference.batch_knn(&queries, 5).expect("reference");

    let footprint = reference.memory_bytes() + data.data_bytes();
    let tight = tiny_device(footprint + 128 * 1024);
    let squeezed = Gts::build(
        &tight,
        data.items.clone(),
        data.metric,
        GtsParams::default(),
    )
    .expect("tight build");
    let got = squeezed.batch_knn(&queries, 5).expect("tight knn");
    for (a, b) in want.iter().zip(&got) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x.dist - y.dist).abs() < 1e-9, "{} vs {}", x.dist, y.dist);
        }
    }
    assert!(squeezed.stats().groups_formed > 0);
}

#[test]
fn frontier_bound_respects_memory_limit() {
    // The max frontier must stay below what the device could hold; the
    // paper's size_limit guarantees it level by level.
    let data = DatasetKind::TLoc.generate(4_000, 29);
    let probe = Device::rtx_2080_ti();
    let footprint = {
        let idx = Gts::build(
            &probe,
            data.items.clone(),
            data.metric,
            GtsParams::default(),
        )
        .expect("probe");
        idx.memory_bytes() + data.data_bytes()
    };
    let budget = 256 * 1024u64;
    let tight = tiny_device(footprint + budget);
    let idx = Gts::build(
        &tight,
        data.items.clone(),
        data.metric,
        GtsParams::default(),
    )
    .expect("build");
    let queries: Vec<Item> = (0..256u32).map(|i| data.item(i * 11).clone()).collect();
    let radii = vec![3.0; queries.len()];
    idx.batch_range(&queries, &radii).expect("batch");
    let max_frontier_bytes = idx.stats().max_frontier * 16;
    assert!(
        max_frontier_bytes <= budget * 2,
        "frontier {}B exceeded ~budget {}B",
        max_frontier_bytes,
        budget
    );
}
