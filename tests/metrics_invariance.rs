//! Metrics invariance: the `gts-metrics` contract, proven end-to-end
//! through the service.
//!
//! * **Observation is free of semantic cost** — metrics on ⇒ answers,
//!   epochs, and simulated device cycles bit-identical to metrics off.
//! * **Exposition is deterministic** — for a fixed seed, every
//!   cycle-domain family (device utilization, batch spans, cost audit,
//!   request counters) reproduces exactly across runs, at every shard and
//!   lane count; two scrapes of an idle service are byte-identical.
//! * **Exposition is conformant** — the text scrape parses back with
//!   [`parse_prometheus`] and the recovered samples agree with the typed
//!   snapshot.
//! * **The device clock partitions** — for every device,
//!   `busy + transfer + stall + idle == span`, read straight off the
//!   scraped gauges.

use gts::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// A mixed query + update sequence (same shape the tracing invariance
/// tests use): ranges, two kNN shapes, and inserts interleaved.
fn mixed_sequence(items: &[Item], n: usize) -> Vec<Request<Item>> {
    (0..n)
        .map(|i| {
            let q = items[(i * 13) % items.len()].clone();
            match i % 5 {
                0 => Request::Range {
                    query: q,
                    radius: 2.0,
                },
                1 | 3 => Request::Knn { query: q, k: 3 },
                2 => Request::Insert { object: q },
                _ => Request::Knn { query: q, k: 6 },
            }
        })
        .collect()
}

/// Run `n` mixed requests through a fresh stack (one in flight at a time,
/// so batch formation is a pure function of the sequence) and return
/// everything observable: outcomes, final cycles, and the **settled**
/// exposition text rendered from the post-shutdown snapshot (empty when
/// metrics are off) — after shutdown every lane has drained, including
/// broadcast update copies still in flight on sibling lanes at live-scrape
/// time.
#[allow(clippy::type_complexity)]
fn metered_run(
    shards: u32,
    replicas: u32,
    lanes: usize,
    metrics_on: bool,
    n: usize,
) -> (
    Vec<(Result<Reply, ServiceError>, u64)>,
    u64,
    u64,
    String,
    ServiceStats,
) {
    let data = DatasetKind::Words.generate(360, 909);
    let pool = DevicePool::rtx_2080_ti((shards * replicas) as usize);
    let index = Arc::new(
        ReplicatedShards::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default()
                .with_shards(shards)
                .with_replicas(replicas),
        )
        .expect("build"),
    );
    let cfg = ServiceConfig::default()
        .with_sizing(BatchSizing::Fixed(4))
        .with_flush_deadline(Duration::from_millis(1))
        .with_lanes(lanes)
        .with_metrics(metrics_on);
    let svc = QueryService::start_replicated(Arc::clone(&index), cfg);
    let h = svc.handle();
    let outcomes: Vec<(Result<Reply, ServiceError>, u64)> = mixed_sequence(&data.items, n)
        .into_iter()
        .map(|r| {
            let resp = h.submit(r).expect("admitted").wait().expect("answered");
            (resp.result, resp.epoch)
        })
        .collect();
    if metrics_on {
        assert!(
            svc.scrape().is_some_and(|s| !s.is_empty()),
            "a live scrape renders while the service runs"
        );
    } else {
        assert!(svc.scrape().is_none(), "metrics off has nothing to scrape");
    }
    let stats = svc.shutdown();
    let scrape = stats
        .metrics
        .as_ref()
        .map(gts::metrics::render_prometheus)
        .unwrap_or_default();
    (
        outcomes,
        index.span_cycles(),
        index.pool().aggregate().cycles_total,
        scrape,
        stats,
    )
}

/// Drop the host-time families (queue waits are wall-clock microseconds
/// and lawfully vary run to run); everything left is cycle-domain or
/// count-domain and must reproduce exactly.
fn cycle_domain(scrape: &str) -> String {
    scrape
        .lines()
        .filter(|l| !l.contains("gts_queue_wait_microseconds"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Metrics on ⇒ answers, epochs, and simulated cycles bit-identical to
/// metrics off: the hub observes the clocks, never advances them.
#[test]
fn metrics_change_no_answer_epoch_or_cycle() {
    for shards in [1u32, 2] {
        let (plain, span_p, total_p, scrape_p, _) = metered_run(shards, 1, 1, false, 30);
        let (metered, span_m, total_m, scrape_m, stats) = metered_run(shards, 1, 1, true, 30);
        assert_eq!(plain, metered, "shards = {shards}: answers and epochs");
        assert_eq!(span_p, span_m, "shards = {shards}: critical-path cycles");
        assert_eq!(total_p, total_m, "shards = {shards}: total device cycles");
        assert!(scrape_p.is_empty(), "metrics off exposes nothing");
        assert!(!scrape_m.is_empty(), "metrics on exposes the run");
        assert!(stats.metrics.is_some(), "ServiceStats carries the snapshot");
    }
}

/// For a fixed seed the cycle-domain exposition itself reproduces —
/// across shard and lane counts (2 lanes ride 2 replicas so concurrent
/// lanes own disjoint devices).
#[test]
fn cycle_domain_metrics_reproduce_for_a_fixed_seed() {
    for shards in [1u32, 2] {
        for lanes in [1usize, 2] {
            let replicas = lanes as u32;
            let (o1, s1, t1, m1, _) = metered_run(shards, replicas, lanes, true, 25);
            let (o2, s2, t2, m2, _) = metered_run(shards, replicas, lanes, true, 25);
            assert_eq!(o1, o2, "shards={shards} lanes={lanes}: outcomes");
            assert_eq!((s1, t1), (s2, t2), "shards={shards} lanes={lanes}: cycles");
            assert_eq!(
                cycle_domain(&m1),
                cycle_domain(&m2),
                "shards={shards} lanes={lanes}: cycle-domain exposition reproduces"
            );
        }
    }
}

/// Two scrapes of an idle service are byte-identical: scraping refreshes
/// idempotently (gauges set, cumulative histograms replaced) and never
/// counts itself.
#[test]
fn idle_service_scrapes_are_byte_identical() {
    let (_, _, _, first, _) = {
        let data = DatasetKind::Words.generate(360, 909);
        let pool = DevicePool::rtx_2080_ti(1);
        let index = Arc::new(
            ReplicatedShards::build(&pool, data.items.clone(), data.metric, GtsParams::default())
                .expect("build"),
        );
        let cfg = ServiceConfig::default()
            .with_sizing(BatchSizing::Fixed(4))
            .with_flush_deadline(Duration::from_millis(1))
            .with_metrics(true);
        let svc = QueryService::start_replicated(index, cfg);
        let h = svc.handle();
        for r in mixed_sequence(&data.items, 15) {
            h.submit(r)
                .expect("admitted")
                .wait()
                .expect("answered")
                .result
                .expect("ok");
        }
        let a = svc.scrape().expect("metrics on");
        let b = svc.scrape().expect("metrics on");
        assert_eq!(a, b, "idle double-scrape must not drift");
        (0, 0, 0u64, a, svc.shutdown())
    };
    assert!(!first.is_empty());
}

/// The scrape parses back under the exposition grammar, and the recovered
/// per-device gauges satisfy the clock partition exactly:
/// `busy + transfer + stall + idle == span` for every device.
#[test]
fn scrape_is_conformant_and_device_clocks_partition() {
    let (_, _, _, scrape, stats) = metered_run(2, 2, 2, true, 30);
    let samples = parse_prometheus(&scrape).expect("exposition parses back");
    assert!(!samples.is_empty());

    // Recover the per-device components from the parsed samples.
    let mut devices: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    for s in &samples {
        if let Some(part) = s
            .name
            .strip_prefix("gts_device_")
            .and_then(|n| n.strip_suffix("_cycles"))
        {
            let dev = s
                .labels
                .iter()
                .find(|(k, _)| k == "device")
                .map(|(_, v)| v.clone())
                .expect("device gauges are labelled");
            devices
                .entry(dev)
                .or_default()
                .insert(part.into(), s.value as u64);
        }
    }
    assert_eq!(devices.len(), 4, "2 shards × 2 replicas = 4 devices");
    for (dev, parts) in &devices {
        let sum = parts["busy"] + parts["transfer"] + parts["stall"] + parts["idle"];
        assert_eq!(
            sum, parts["span"],
            "device {dev}: busy+transfer+stall+idle must equal span"
        );
        assert!(parts["span"] > 0, "device {dev} saw work");
    }

    // The parsed counters agree with the typed snapshot the stats carry.
    let snap = stats.metrics.expect("metrics on");
    let served: f64 = samples
        .iter()
        .filter(|s| s.name == "gts_requests_served_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(served as u64, stats.completed, "scrape matches stats");
    assert!(
        snap.families
            .iter()
            .any(|f| f.name == "gts_device_span_cycles"),
        "snapshot carries the device families"
    );
}

/// Cost-model sizing installs the §5.3 prediction, and serving under it
/// populates the audit: per-level calibration samples, a non-zero
/// admitted batch, and a frontier-bytes high-water mark at or below the
/// predicted peak's order of magnitude.
#[test]
fn cost_model_audit_populates_through_the_service() {
    let data = DatasetKind::Words.generate(2_000, 2026);
    let pool = DevicePool::rtx_2080_ti(2);
    let index = Arc::new(
        ReplicatedShards::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default().with_shards(2),
        )
        .expect("build"),
    );
    let cfg = ServiceConfig::default()
        .with_sizing(BatchSizing::CostModel {
            radius_hint: 2.0,
            samples: 128,
            seed: 41,
        })
        .with_flush_deadline(Duration::from_millis(1))
        .with_metrics(true);
    let svc = QueryService::start_replicated(Arc::clone(&index), cfg);
    let h = svc.handle();
    for i in 0..40 {
        h.submit(Request::Range {
            query: data.items[(i * 13) % 2_000].clone(),
            radius: 2.0,
        })
        .expect("admitted")
        .wait()
        .expect("answered")
        .result
        .expect("ok");
    }
    let audit = index.cost_audit();
    assert!(audit.enabled, "metrics on enables the audit");
    assert!(
        audit.predicted_batch > 0,
        "cost-model sizing installed a plan (admitted {})",
        audit.predicted_batch
    );
    assert!(audit.levels_observed > 0, "descents recorded level samples");
    assert!(audit.calibration_pct.count() == audit.levels_observed);
    assert!(audit.peak_frontier_bytes > 0, "expansion buffers observed");
    let scrape = svc.scrape().expect("metrics on");
    assert!(
        scrape.contains("gts_cost_calibration_pct_count")
            && !scrape.contains("gts_cost_calibration_pct_count 0"),
        "the calibration histogram reaches the exposition:\n{scrape}"
    );
    let median = audit.calibration_pct.quantile(0.5);
    println!(
        "calibration: {} levels, median {}%, over {} / under {}",
        audit.levels_observed, median, audit.overpredicted, audit.underpredicted
    );
    svc.shutdown();
}

/// 10k-request metered soak (the CI `metrics` job runs it with
/// `--include-ignored`): a 2-shard × 2-replica stack under cost-model
/// sizing serves 10 000 mixed requests from three tagged clients with the
/// hub recording throughout. Asserts the full contract at scale — every
/// request served, the clock partition holding on all four devices, the
/// audit populated — and prints the per-device utilization and
/// cost-calibration tables REPORT.md §11 reproduces.
#[test]
#[ignore = "soak: run explicitly or via CI --include-ignored"]
fn metered_soak_10k_requests() {
    const N: usize = 10_000;
    let data = DatasetKind::Words.generate(2_000, 2026);
    let pool = DevicePool::rtx_2080_ti(4);
    let index = Arc::new(
        ReplicatedShards::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default().with_shards(2).with_replicas(2),
        )
        .expect("build"),
    );
    let cfg = ServiceConfig::default()
        .with_sizing(BatchSizing::CostModel {
            radius_hint: 2.0,
            samples: 128,
            seed: 41,
        })
        .with_queue_depth(256)
        .with_flush_deadline(Duration::from_millis(1))
        .with_lanes(2)
        .with_metrics(true);
    let svc = QueryService::start_replicated(Arc::clone(&index), cfg);
    let h = svc.handle();
    let clients = ["analytics", "frontend", DEFAULT_CLIENT];
    for wave in mixed_sequence(&data.items, N).chunks(64) {
        let tickets: Vec<_> = wave
            .iter()
            .enumerate()
            .map(|(i, r)| {
                h.submit_as(clients[i % clients.len()], r.clone())
                    .expect("admitted")
            })
            .collect();
        for t in tickets {
            t.wait().expect("answered").result.expect("ok");
        }
    }

    let audit = index.cost_audit();
    let stats = svc.shutdown();
    assert_eq!(stats.completed, N as u64, "every request served");
    let scrape = stats
        .metrics
        .as_ref()
        .map(gts::metrics::render_prometheus)
        .expect("metrics on");
    let samples = parse_prometheus(&scrape).expect("exposition parses back");

    // Per-device utilization table (+ the partition assertion at scale).
    let mut devices: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    for s in &samples {
        if let Some(part) = s.name.strip_prefix("gts_device_").and_then(|n| {
            n.strip_suffix("_cycles")
                .or_else(|| n.strip_suffix("_allocated_bytes"))
        }) {
            let dev = s
                .labels
                .iter()
                .find(|(k, _)| k == "device")
                .map(|(_, v)| v.clone())
                .expect("device gauges are labelled");
            devices
                .entry(dev)
                .or_default()
                .insert(part.into(), s.value as u64);
        }
    }
    assert_eq!(devices.len(), 4, "2 shards × 2 replicas = 4 devices");
    println!("device | busy | transfer | stall | idle | span | busy% | peak_alloc");
    for (dev, p) in &devices {
        assert_eq!(
            p["busy"] + p["transfer"] + p["stall"] + p["idle"],
            p["span"],
            "device {dev}: partition holds at soak scale"
        );
        println!(
            "{dev} | {} | {} | {} | {} | {} | {:.1}% | {}",
            p["busy"],
            p["transfer"],
            p["stall"],
            p["idle"],
            p["span"],
            100.0 * p["busy"] as f64 / p["span"] as f64,
            p["peak"],
        );
    }

    // Cost-model calibration table.
    assert!(audit.enabled && audit.predicted_batch > 0 && audit.levels_observed > 0);
    assert!(audit.peak_frontier_bytes > 0, "expansion buffers observed");
    println!(
        "audit: predicted_batch {} | predicted_peak_bytes {} | observed_peak_bytes {}",
        audit.predicted_batch, audit.predicted_peak_bytes, audit.peak_frontier_bytes
    );
    println!(
        "calibration: {} levels | p50 {}% | p95 {}% | max {}% | over {} | under {}",
        audit.levels_observed,
        audit.calibration_pct.quantile(0.5),
        audit.calibration_pct.quantile(0.95),
        audit.calibration_pct.quantile(1.0),
        audit.overpredicted,
        audit.underpredicted,
    );
    println!(
        "served {} requests in {} batches across {} lanes",
        stats.completed, stats.batches, stats.lanes
    );
}

/// Per-client accounting: requests tagged with `submit_as` land in their
/// own label series, and untagged requests count under the default client.
#[test]
fn per_client_series_separate_tagged_traffic() {
    let data = DatasetKind::Words.generate(300, 11);
    let pool = DevicePool::rtx_2080_ti(1);
    let index = Arc::new(
        ReplicatedShards::build(&pool, data.items.clone(), data.metric, GtsParams::default())
            .expect("build"),
    );
    let cfg = ServiceConfig::default()
        .with_sizing(BatchSizing::Fixed(2))
        .with_flush_deadline(Duration::from_millis(1))
        .with_metrics(true);
    let svc = QueryService::start_replicated(index, cfg);
    let h = svc.handle();
    let mut tickets = Vec::new();
    for i in 0..6 {
        let req = Request::Knn {
            query: data.items[i * 7].clone(),
            k: 3,
        };
        let t = match i % 3 {
            0 => h.submit_as("alice", req),
            1 => h.submit_as("bob", req),
            _ => h.submit(req),
        };
        tickets.push(t.expect("admitted"));
    }
    for t in tickets {
        t.wait().expect("answered").result.expect("ok");
    }
    let scrape = svc.scrape().expect("metrics on");
    for client in ["alice", "bob", DEFAULT_CLIENT] {
        assert!(
            scrape.contains(&format!(
                "gts_requests_admitted_total{{client=\"{client}\"}} 2"
            )),
            "client {client} admitted twice:\n{scrape}"
        );
        assert!(
            scrape.contains(&format!(
                "gts_requests_served_total{{client=\"{client}\"}} 2"
            )),
            "client {client} served twice"
        );
    }
    assert!(
        scrape.contains("gts_queue_wait_microseconds_count{client=\"alice\"} 2"),
        "per-client queue-wait histogram recorded"
    );
    svc.shutdown();
}
