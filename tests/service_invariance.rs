//! Service invariance: answers that travel through the online query
//! service — admission queue, microbatcher, FIFO executor — are
//! **bit-identical** to direct `ShardedGts` batch calls over the same
//! requests, for 1, 2, and 4 shards and for both flush triggers. Batching
//! is pure plumbing: it may only change *when* work runs, never what any
//! request answers.
//!
//! Also proves the determinism story end-to-end (two identical
//! size-triggered runs leave identical simulated device clocks) and hosts
//! the `#[ignore]`d ≥10k-request soak the CI `service` job runs in
//! release mode.

use gts::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A deterministic mixed request sequence over `items`: ranges and two
/// distinct kNN shapes interleaved.
fn request_sequence(items: &[Item], n: usize) -> Vec<Request<Item>> {
    (0..n)
        .map(|i| {
            let q = items[(i * 13) % items.len()].clone();
            match i % 3 {
                0 => Request::Range {
                    query: q,
                    radius: 2.0,
                },
                1 => Request::Knn { query: q, k: 3 },
                _ => Request::Knn { query: q, k: 6 },
            }
        })
        .collect()
}

/// Direct (service-free) answers for the same sequence: one batched call
/// per request shape, exactly like the service's executor splits them.
fn direct_answers(
    index: &ShardedGts<Item, ItemMetric>,
    reqs: &[Request<Item>],
) -> Vec<Vec<Neighbor>> {
    let mut out: Vec<Option<Vec<Neighbor>>> = vec![None; reqs.len()];
    let mut range_idx = Vec::new();
    let mut queries = Vec::new();
    let mut radii = Vec::new();
    for (i, r) in reqs.iter().enumerate() {
        if let Request::Range { query, radius } = r {
            range_idx.push(i);
            queries.push(query.clone());
            radii.push(*radius);
        }
    }
    if !range_idx.is_empty() {
        for (i, ans) in range_idx
            .iter()
            .zip(index.batch_range(&queries, &radii).expect("direct mrq"))
        {
            out[*i] = Some(ans);
        }
    }
    for k in [3usize, 5, 6] {
        let mut knn_idx = Vec::new();
        let mut queries = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            if let Request::Knn { query, k: rk } = r {
                if *rk == k {
                    knn_idx.push(i);
                    queries.push(query.clone());
                }
            }
        }
        if !knn_idx.is_empty() {
            for (i, ans) in knn_idx
                .iter()
                .zip(index.batch_knn(&queries, k).expect("direct knn"))
            {
                out[*i] = Some(ans);
            }
        }
    }
    out.into_iter().map(|a| a.expect("answered")).collect()
}

fn build_sharded(n: usize, shards: u32, seed: u64) -> (Vec<Item>, ShardedGts<Item, ItemMetric>) {
    let data = DatasetKind::Words.generate(n, seed);
    let pool = DevicePool::rtx_2080_ti(shards as usize);
    let index = ShardedGts::build(
        &pool,
        data.items.clone(),
        data.metric,
        GtsParams::default().with_shards(shards),
    )
    .expect("build");
    (data.items, index)
}

/// Wrap a sharded index as a single fenced replica the service can own
/// while the test keeps a handle for stats / clocks / direct reads.
fn replicated(index: ShardedGts<Item, ItemMetric>) -> Arc<ReplicatedShards<Item, ItemMetric>> {
    Arc::new(ReplicatedShards::from_replicas(vec![index]))
}

/// Push `reqs` through a service with config `cfg` and return the answers
/// plus the final service stats.
fn serve(
    index: Arc<ReplicatedShards<Item, ItemMetric>>,
    cfg: ServiceConfig,
    reqs: &[Request<Item>],
) -> (Vec<Vec<Neighbor>>, ServiceStats) {
    let svc = QueryService::start_replicated(index, cfg);
    let h = svc.handle();
    let tickets: Vec<Ticket> = reqs
        .iter()
        .map(|r| h.submit(r.clone()).expect("admitted"))
        .collect();
    // Shutdown first: it drains whatever the triggers have not shipped yet
    // (a trailing partial batch under the size trigger), answering every
    // ticket — responses buffer in their per-request channels.
    let stats = svc.shutdown();
    let answers: Vec<Vec<Neighbor>> = tickets
        .into_iter()
        .map(|t| {
            t.wait()
                .expect("answered")
                .result
                .expect("no index error")
                .neighbors()
        })
        .collect();
    (answers, stats)
}

#[test]
fn size_triggered_service_matches_direct_batches() {
    for shards in [1u32, 2, 4] {
        let (items, index) = build_sharded(420, shards, 2024);
        let reqs = request_sequence(&items, 90);
        let want = direct_answers(&index, &reqs);
        let cfg = ServiceConfig::default()
            .with_sizing(BatchSizing::Fixed(7))
            .with_flush_deadline(Duration::from_secs(3600));
        let (got, stats) = serve(replicated(index), cfg, &reqs);
        assert_eq!(got, want, "shards = {shards}");
        assert_eq!(stats.completed, 90);
        assert!(
            stats.size_flushes >= 12,
            "90 requests at target 7 flush ≥ 12 size batches, got {}",
            stats.size_flushes
        );
        assert_eq!(stats.deadline_flushes, 0, "the hour deadline never fires");
    }
}

/// The cross-shard bound broadcast plumbs through the service untouched:
/// a broadcast-enabled index behind the service answers bit-identically to
/// direct calls on a broadcast-free index, and the tightenings the lockstep
/// descent performed surface in [`ServiceStats::index`] — the service-side
/// view of `broadcast_tightened` is the index's own counter, so per-shard
/// and aggregate views stay consistent.
#[test]
fn broadcast_enabled_index_matches_direct_through_the_service() {
    let data = DatasetKind::TLoc.generate(2_000, 31);
    let params = GtsParams::default().with_node_capacity(5).with_shards(2);
    let build = |broadcast: bool| {
        let pool = DevicePool::rtx_2080_ti(2);
        ShardedGts::build(
            &pool,
            data.items.clone(),
            data.metric,
            params.with_bound_broadcast(broadcast),
        )
        .expect("build")
    };
    let reqs: Vec<Request<Item>> = (0..40)
        .map(|i| Request::Knn {
            query: data.items[(i * 37) % 2_000].clone(),
            k: 5,
        })
        .collect();
    let want = direct_answers(&build(false), &reqs);

    let index = replicated(build(true));
    let cfg = ServiceConfig::default()
        .with_sizing(BatchSizing::Fixed(8))
        .with_flush_deadline(Duration::from_secs(3600));
    let (got, stats) = serve(Arc::clone(&index), cfg, &reqs);
    assert_eq!(got, want, "broadcast behind the service changes no answer");
    assert!(
        stats.index.broadcast_tightened > 0,
        "the lockstep descent must have tightened bounds on this workload"
    );
    assert_eq!(
        stats.index.broadcast_tightened,
        index.stats().broadcast_tightened,
        "ServiceStats surfaces the index's own broadcast counter"
    );
    assert_eq!(
        index.stats().broadcast_tightened,
        (0..2)
            .map(|s| {
                index
                    .replica(0)
                    .read()
                    .expect("replica lock")
                    .shard_stats(s)
                    .broadcast_tightened
            })
            .sum(),
        "aggregate view sums the per-shard counters"
    );
}

#[test]
fn deadline_triggered_service_matches_direct_batches() {
    for shards in [1u32, 2, 4] {
        let (items, index) = build_sharded(420, shards, 2025);
        let reqs = request_sequence(&items, 60);
        let want = direct_answers(&index, &reqs);
        // The size trigger is unreachable (huge target), so every batch
        // ships on the deadline (or the shutdown drain).
        let cfg = ServiceConfig::default()
            .with_sizing(BatchSizing::Fixed(100_000))
            .with_max_batch(100_000)
            .with_flush_deadline(Duration::from_millis(2));
        let (got, stats) = serve(replicated(index), cfg, &reqs);
        assert_eq!(got, want, "shards = {shards}");
        assert_eq!(stats.completed, 60);
        assert_eq!(stats.size_flushes, 0, "the size trigger is unreachable");
        assert!(
            stats.deadline_flushes + stats.shutdown_flushes > 0,
            "deadline or drain shipped the work"
        );
    }
}

#[test]
fn cost_model_sized_service_matches_direct_batches() {
    let (items, index) = build_sharded(500, 2, 2026);
    let reqs = request_sequence(&items, 64);
    let want = direct_answers(&index, &reqs);
    let cfg = ServiceConfig::default().with_sizing(BatchSizing::CostModel {
        radius_hint: 2.0,
        samples: 128,
        seed: 41,
    });
    let (got, stats) = serve(replicated(index), cfg, &reqs);
    assert_eq!(got, want);
    assert!(stats.batch_target >= 1);
    assert_eq!(stats.admitted, 64);
}

#[test]
fn identical_arrival_sequences_produce_identical_device_clocks() {
    // Two fresh-but-identical stacks, the same synchronous arrival
    // sequence, size-triggered batching: batch formation is a pure
    // function of arrivals, so the simulated clocks must agree exactly.
    let run = || {
        let (items, index) = build_sharded(400, 2, 777);
        let index = replicated(index);
        let reqs = request_sequence(&items, 56);
        let cfg = ServiceConfig::default()
            .with_sizing(BatchSizing::Fixed(8))
            .with_flush_deadline(Duration::from_secs(3600));
        let (answers, _) = serve(Arc::clone(&index), cfg, &reqs);
        (
            answers,
            index.span_cycles(),
            index.pool().aggregate().cycles_total,
        )
    };
    let (a1, span1, total1) = run();
    let (a2, span2, total2) = run();
    assert_eq!(a1, a2, "answers reproduce");
    assert_eq!(span1, span2, "critical-path cycles reproduce");
    assert_eq!(total1, total2, "total device-time reproduces");
}

#[test]
fn backpressure_rejects_but_never_corrupts() {
    let (items, index) = build_sharded(300, 2, 555);
    let want_one = direct_answers(&index, &request_sequence(&items, 1));
    // A depth-4 queue: the target clamps to the queue depth (a size
    // trigger the queue cannot hold would be unreachable), so batches of 4
    // flush immediately — but the batcher→executor pipeline is bounded
    // and each batch takes real index work to execute, so a tight
    // submission loop outruns the drain and floods bounce off the
    // admission bound.
    let cfg = ServiceConfig::default()
        .with_queue_depth(4)
        .with_sizing(BatchSizing::Fixed(100_000))
        .with_max_batch(100_000)
        .with_flush_deadline(Duration::from_millis(50));
    let svc = QueryService::start(index, cfg);
    assert_eq!(svc.batch_target(), 4, "the target clamps to queue depth");
    let h = svc.handle();
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for r in request_sequence(&items, 256) {
        match h.submit(r) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::QueueFull { depth }) => {
                assert_eq!(depth, 4);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejected > 0, "a flood past depth 4 must shed load");
    // Everything admitted is still answered correctly.
    let first = tickets
        .remove(0)
        .wait()
        .expect("answered")
        .result
        .expect("ok")
        .neighbors();
    assert_eq!(first, want_one[0]);
    for t in tickets {
        t.wait().expect("answered").result.expect("ok");
    }
    let stats = svc.shutdown();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.admitted + stats.rejected, 256);
    assert_eq!(stats.completed, stats.admitted);
    assert!(stats.size_flushes > 0, "depth-clamped target still flushes");
}

/// The CI soak: ≥10k requests through the microbatcher (release mode;
/// run with `--include-ignored`). Checks conservation (admitted =
/// completed, nothing lost or duplicated), spot-checks answers, and
/// exercises retry-on-backpressure like a real client.
#[test]
#[ignore = "10k-request soak; run in the CI service job (release)"]
fn soak_ten_thousand_requests() {
    const TOTAL: usize = 10_000;
    let data = DatasetKind::Vector.generate(600, 31);
    let pool = DevicePool::rtx_2080_ti(2);
    let index = ShardedGts::build(
        &pool,
        data.items.clone(),
        data.metric,
        GtsParams::default().with_shards(2),
    )
    .expect("build");
    let want_knn = index.batch_knn(&[data.items[5].clone()], 4).expect("knn");
    let cfg = ServiceConfig::default()
        .with_queue_depth(2048)
        .with_sizing(BatchSizing::Fixed(256))
        .with_flush_deadline(Duration::from_millis(1));
    let svc = QueryService::start(index, cfg);
    let h = svc.handle();
    let mut tickets = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        let req = Request::Knn {
            query: data.items[(i * 7) % data.items.len()].clone(),
            k: 4,
        };
        loop {
            match h.submit(req.clone()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(ServiceError::QueueFull { .. }) => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
    for (i, t) in tickets.into_iter().enumerate() {
        let r = t.wait().expect("answered");
        let ans = r.result.expect("ok").neighbors();
        assert_eq!(ans.len(), 4, "request {i}");
        if (i * 7) % data.items.len() == 5 {
            assert_eq!(ans, want_knn[0], "request {i} answer drifted");
        }
    }
    let stats = svc.shutdown();
    assert_eq!(stats.completed, TOTAL as u64);
    assert_eq!(stats.admitted, TOTAL as u64);
    assert_eq!(stats.queue_wait_us.count(), TOTAL as u64);
    assert!(stats.batches >= (TOTAL / 256) as u64);
    assert!(
        stats.batch_span_cycles.count() >= stats.batches,
        "every batch recorded at least one span sample"
    );
    println!(
        "soak: {} batches (size {} / deadline {} / drain {}), queue-wait p99 ≈ {} us, span p99 ≈ {} cycles",
        stats.batches,
        stats.size_flushes,
        stats.deadline_flushes,
        stats.shutdown_flushes,
        stats.queue_wait_us.quantile(0.99),
        stats.batch_span_cycles.quantile(0.99),
    );
}

// --- tracing invariance (the gts-trace determinism contract) ------------

/// A mixed query + update sequence: the tracing contract must hold across
/// the write path too (epochs, cache-table inserts, broadcast application).
fn mixed_sequence(items: &[Item], n: usize) -> Vec<Request<Item>> {
    (0..n)
        .map(|i| {
            let q = items[(i * 13) % items.len()].clone();
            match i % 5 {
                0 => Request::Range {
                    query: q,
                    radius: 2.0,
                },
                1 | 3 => Request::Knn { query: q, k: 3 },
                2 => Request::Insert { object: q },
                _ => Request::Knn { query: q, k: 6 },
            }
        })
        .collect()
}

/// Run `reqs` through a service over a fresh `shards`-sharded,
/// `replicas`-replicated stack with `lanes` lanes, one request in flight
/// at a time (submit → wait → next), and return everything observable:
/// response results, epochs, final span/total cycles, and the trace
/// determinism projection (empty when tracing is off).
#[allow(clippy::type_complexity)]
fn traced_run(
    shards: u32,
    replicas: u32,
    lanes: usize,
    trace_on: bool,
    n: usize,
) -> (
    Vec<(Result<Reply, ServiceError>, u64)>,
    u64,
    u64,
    Vec<TraceEvent>,
) {
    let data = DatasetKind::Words.generate(360, 909);
    let pool = DevicePool::rtx_2080_ti((shards * replicas) as usize);
    let index = Arc::new(
        ReplicatedShards::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default()
                .with_shards(shards)
                .with_replicas(replicas),
        )
        .expect("build"),
    );
    let cfg = ServiceConfig::default()
        .with_sizing(BatchSizing::Fixed(4))
        .with_flush_deadline(Duration::from_millis(1))
        .with_lanes(lanes)
        .with_tracing(TraceConfig {
            enabled: trace_on,
            ..TraceConfig::default()
        });
    let svc = QueryService::start_replicated(Arc::clone(&index), cfg);
    let h = svc.handle();
    // One request in flight at a time: batch formation (and therefore lane
    // assignment and device interleaving) becomes a pure function of the
    // request sequence, which is what makes event streams comparable.
    let outcomes: Vec<(Result<Reply, ServiceError>, u64)> = mixed_sequence(&data.items, n)
        .into_iter()
        .map(|r| {
            let resp = h.submit(r).expect("admitted").wait().expect("answered");
            (resp.result, resp.epoch)
        })
        .collect();
    let rec = svc.trace().cloned();
    let _ = svc.shutdown();
    let events = rec.map_or_else(Vec::new, |r| r.determinism_projection());
    (
        outcomes,
        index.span_cycles(),
        index.pool().aggregate().cycles_total,
        events,
    )
}

/// Tracing on ⇒ answers, epochs, and simulated cycles bit-identical to
/// tracing off: events observe the clocks, never advance them.
#[test]
fn tracing_changes_no_answer_epoch_or_cycle() {
    for shards in [1u32, 2] {
        let (plain, span_p, total_p, evs_p) = traced_run(shards, 1, 1, false, 30);
        let (traced, span_t, total_t, evs_t) = traced_run(shards, 1, 1, true, 30);
        assert_eq!(plain, traced, "shards = {shards}: answers and epochs");
        assert_eq!(span_p, span_t, "shards = {shards}: critical-path cycles");
        assert_eq!(total_p, total_t, "shards = {shards}: total device cycles");
        assert!(evs_p.is_empty(), "tracing off records nothing");
        assert!(!evs_t.is_empty(), "tracing on records the run");
    }
}

/// For a fixed seed the traced event stream itself reproduces: same kinds,
/// same contexts, same simulated-cycle stamps — across shard and lane
/// counts (2 lanes ride 2 replicas so concurrent lanes own disjoint
/// devices).
#[test]
fn traced_event_streams_reproduce_for_a_fixed_seed() {
    for shards in [1u32, 2] {
        for lanes in [1usize, 2] {
            let replicas = lanes as u32;
            let (o1, s1, t1, e1) = traced_run(shards, replicas, lanes, true, 25);
            let (o2, s2, t2, e2) = traced_run(shards, replicas, lanes, true, 25);
            assert_eq!(o1, o2, "shards={shards} lanes={lanes}: outcomes");
            assert_eq!((s1, t1), (s2, t2), "shards={shards} lanes={lanes}: cycles");
            assert!(
                !e1.is_empty(),
                "shards={shards} lanes={lanes}: events recorded"
            );
            assert_eq!(
                e1, e2,
                "shards={shards} lanes={lanes}: event streams reproduce"
            );
            // The stream covers the whole span hierarchy the README draws.
            for kind in [
                "batch_start",
                "batch_member",
                "lane_batch",
                "level",
                "kernel",
            ] {
                assert!(
                    e1.iter().any(|e| e.kind.name() == kind),
                    "shards={shards} lanes={lanes}: missing {kind} events"
                );
            }
        }
    }
}
