//! BST — the bisector tree of Kalantari & McDonald \[32\]: the classic
//! CPU-based metric tree the paper uses as its first baseline.
//!
//! Each internal node holds two centres with covering radii; objects go to
//! the nearer centre. Queries prune a branch when
//! `d(q, cᵢ) − radiusᵢ > r` (triangle inequality on the covering ball).

use crate::clock::impl_cpu_clocked;
use gpu_sim::CpuClock;
use metric_space::index::{sort_neighbors, DynamicIndex, IndexError, Neighbor, SimilarityIndex};
use metric_space::{Item, ItemMetric, Metric};

const LEAF_CAP: usize = 16;

enum BstNode {
    Internal {
        centres: [u32; 2],
        radius: [f64; 2],
        children: [u32; 2],
    },
    Leaf {
        objs: Vec<u32>,
    },
}

/// Bisector tree over [`Item`]s.
pub struct Bst {
    items: Vec<Item>,
    metric: ItemMetric,
    live: Vec<bool>,
    nodes: Vec<BstNode>,
    root: u32,
    build_seconds: f64,
    pub(crate) clock: CpuClock,
}

impl Bst {
    /// Build over a dataset.
    pub fn build(items: Vec<Item>, metric: ItemMetric) -> Self {
        let clock = CpuClock::default();
        let mut bst = Bst {
            live: vec![true; items.len()],
            items,
            metric,
            nodes: Vec::new(),
            root: 0,
            build_seconds: 0.0,
            clock,
        };
        let ids: Vec<u32> = (0..bst.items.len() as u32).collect();
        bst.root = bst.build_node(ids);
        bst.build_seconds = bst.clock.seconds();
        bst
    }

    fn dist(&self, a: u32, b: &Item) -> f64 {
        let ai = &self.items[a as usize];
        self.clock.charge(self.metric.work(ai, b));
        self.metric.distance(ai, b)
    }

    fn build_node(&mut self, ids: Vec<u32>) -> u32 {
        if ids.len() <= LEAF_CAP {
            self.nodes.push(BstNode::Leaf { objs: ids });
            return (self.nodes.len() - 1) as u32;
        }
        let c1 = ids[0];
        // c2: farthest from c1 (one FFT step).
        let mut c2 = ids[0];
        let mut best = -1.0;
        let mut d1s = Vec::with_capacity(ids.len());
        for &o in &ids {
            let d = self.dist(c1, &self.items[o as usize]);
            d1s.push(d);
            if d > best {
                best = d;
                c2 = o;
            }
        }
        if c2 == c1 {
            // All objects identical: no bisector exists; keep one flat leaf.
            self.nodes.push(BstNode::Leaf { objs: ids });
            return (self.nodes.len() - 1) as u32;
        }
        let mut left = Vec::new();
        let mut right = Vec::new();
        let mut r1 = 0f64;
        let mut r2 = 0f64;
        for (i, &o) in ids.iter().enumerate() {
            let d2 = self.dist(c2, &self.items[o as usize]);
            if d1s[i] <= d2 {
                r1 = r1.max(d1s[i]);
                left.push(o);
            } else {
                r2 = r2.max(d2);
                right.push(o);
            }
        }
        if left.is_empty() || right.is_empty() {
            self.nodes.push(BstNode::Leaf { objs: ids });
            return (self.nodes.len() - 1) as u32;
        }
        let l = self.build_node(left);
        let r = self.build_node(right);
        self.nodes.push(BstNode::Internal {
            centres: [c1, c2],
            radius: [r1, r2],
            children: [l, r],
        });
        (self.nodes.len() - 1) as u32
    }

    /// Simulated seconds spent constructing the tree.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    fn range_rec(&self, node: u32, q: &Item, r: f64, out: &mut Vec<Neighbor>) {
        match &self.nodes[node as usize] {
            BstNode::Leaf { objs } => {
                for &o in objs {
                    if !self.live[o as usize] {
                        continue;
                    }
                    let d = self.dist(o, q);
                    if d <= r {
                        out.push(Neighbor::new(o, d));
                    }
                }
            }
            BstNode::Internal {
                centres,
                radius,
                children,
            } => {
                for side in 0..2 {
                    let d = self.dist(centres[side], q);
                    if d - radius[side] <= r {
                        self.range_rec(children[side], q, r, out);
                    }
                }
            }
        }
    }

    fn knn_rec(&self, node: u32, q: &Item, k: usize, heap: &mut Vec<Neighbor>) {
        let bound = |h: &Vec<Neighbor>| {
            if h.len() == k {
                h.last().map_or(f64::INFINITY, |n| n.dist)
            } else {
                f64::INFINITY
            }
        };
        match &self.nodes[node as usize] {
            BstNode::Leaf { objs } => {
                for &o in objs {
                    if !self.live[o as usize] {
                        continue;
                    }
                    let d = self.dist(o, q);
                    if d < bound(heap) || heap.len() < k {
                        insert_bounded(heap, Neighbor::new(o, d), k);
                    }
                }
            }
            BstNode::Internal {
                centres,
                radius,
                children,
            } => {
                let d0 = self.dist(centres[0], q);
                let d1 = self.dist(centres[1], q);
                // Visit the closer ball first: tighter bounds earlier.
                let order = if d0 - radius[0] <= d1 - radius[1] {
                    [(0usize, d0), (1, d1)]
                } else {
                    [(1, d1), (0, d0)]
                };
                for (side, d) in order {
                    if d - radius[side] < bound(heap) {
                        self.knn_rec(children[side], q, k, heap);
                    }
                }
            }
        }
    }
}

pub(crate) fn insert_bounded(heap: &mut Vec<Neighbor>, n: Neighbor, k: usize) {
    if heap.iter().any(|x| x.id == n.id) {
        return;
    }
    let pos = heap.partition_point(|x| (x.dist, x.id) < (n.dist, n.id));
    if pos >= k {
        return;
    }
    heap.insert(pos, n);
    heap.truncate(k);
}

impl SimilarityIndex<Item> for Bst {
    fn name(&self) -> &'static str {
        "BST"
    }

    fn len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn range_query(&self, q: &Item, r: f64) -> Result<Vec<Neighbor>, IndexError> {
        let mut out = Vec::new();
        self.range_rec(self.root, q, r, &mut out);
        sort_neighbors(&mut out);
        Ok(out)
    }

    fn knn_query(&self, q: &Item, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        let mut heap = Vec::new();
        if k > 0 {
            self.knn_rec(self.root, q, k, &mut heap);
        }
        Ok(heap)
    }

    fn memory_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for n in &self.nodes {
            bytes += match n {
                BstNode::Internal { .. } => 2 * (4 + 8 + 4),
                BstNode::Leaf { objs } => 8 + 4 * objs.len() as u64,
            };
        }
        bytes + self.live.len() as u64 / 8
    }
}

impl DynamicIndex<Item> for Bst {
    /// Streaming insert: descend to the nearer covering ball, growing radii
    /// on the way; append to the leaf and split it when oversized.
    fn insert(&mut self, obj: Item) -> Result<u32, IndexError> {
        let id = self.items.len() as u32;
        self.items.push(obj);
        self.live.push(true);
        let mut node = self.root;
        loop {
            // Probe immutably, then apply the radius growth mutably.
            let step = match &self.nodes[node as usize] {
                BstNode::Leaf { .. } => None,
                BstNode::Internal {
                    centres, children, ..
                } => {
                    let d0 = self.dist(centres[0], &self.items[id as usize]);
                    let d1 = self.dist(centres[1], &self.items[id as usize]);
                    let side = usize::from(d1 < d0);
                    Some((side, if side == 0 { d0 } else { d1 }, children[side]))
                }
            };
            match step {
                Some((side, d, next)) => {
                    if let BstNode::Internal { radius, .. } = &mut self.nodes[node as usize] {
                        radius[side] = radius[side].max(d);
                    }
                    node = next;
                }
                None => {
                    if let BstNode::Leaf { objs } = &mut self.nodes[node as usize] {
                        objs.push(id);
                        if objs.len() > 4 * LEAF_CAP {
                            let ids = std::mem::take(objs);
                            let rebuilt = self.build_node(ids);
                            self.nodes.swap(node as usize, rebuilt as usize);
                        }
                    }
                    return Ok(id);
                }
            }
        }
    }

    /// Streaming delete: liveness tombstone (`O(1)`), skipped at leaves.
    fn remove(&mut self, id: u32) -> Result<bool, IndexError> {
        match self.live.get_mut(id as usize) {
            Some(l) if *l => {
                *l = false;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

impl_cpu_clocked!(Bst);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use metric_space::DatasetKind;

    #[test]
    fn matches_linear_scan() {
        let d = DatasetKind::Words.generate(300, 5);
        let bst = Bst::build(d.items.clone(), d.metric);
        let scan = LinearScan::new(d.items.clone(), d.metric);
        for qid in [0usize, 50, 299] {
            let q = &d.items[qid];
            assert_eq!(
                bst.range_query(q, 2.0).expect("bst"),
                scan.range_query(q, 2.0).expect("scan"),
                "range mismatch at {qid}"
            );
            let a = bst.knn_query(q, 7).expect("bst");
            let b = scan.knn_query(q, 7).expect("scan");
            let da: Vec<f64> = a.iter().map(|n| n.dist).collect();
            let db: Vec<f64> = b.iter().map(|n| n.dist).collect();
            assert_eq!(da, db, "knn distance mismatch at {qid}");
        }
    }

    #[test]
    fn insert_then_found() {
        let d = DatasetKind::TLoc.generate(200, 5);
        let mut bst = Bst::build(d.items.clone(), d.metric);
        let id = bst.insert(Item::vector(vec![7777.0, 7777.0])).expect("ins");
        let hits = bst
            .range_query(&Item::vector(vec![7777.0, 7777.0]), 0.1)
            .expect("q");
        assert!(hits.iter().any(|n| n.id == id));
    }

    #[test]
    fn remove_hides_object() {
        let d = DatasetKind::Words.generate(120, 5);
        let mut bst = Bst::build(d.items.clone(), d.metric);
        assert!(bst.remove(3).expect("rm"));
        let hits = bst.range_query(&d.items[3], 0.0).expect("q");
        assert!(!hits.iter().any(|n| n.id == 3));
        assert_eq!(bst.len(), 119);
    }

    #[test]
    fn duplicate_heavy_data_terminates() {
        // All-identical objects must not recurse forever.
        let items: Vec<Item> = (0..100).map(|_| Item::text("same")).collect();
        let bst = Bst::build(items, ItemMetric::Edit);
        let hits = bst.range_query(&Item::text("same"), 0.0).expect("q");
        assert_eq!(hits.len(), 100);
    }

    #[test]
    fn build_seconds_positive() {
        let d = DatasetKind::Vector.generate(150, 5);
        let bst = Bst::build(d.items, d.metric);
        assert!(bst.build_seconds() > 0.0);
        assert!(bst.memory_bytes() > 0);
    }
}
