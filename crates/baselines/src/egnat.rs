//! EGNAT — the evolutionary/dynamic GNAT of Marín, Uribe & Barrientos
//! \[44, 48\]: hyperplane partitioning around `M` split points per node, with
//! an `M×M` table of distance ranges used for pruning.
//!
//! EGNAT's pre-computed range tables make it the memory-hungriest CPU
//! baseline by far (Table 4: 430 MB on Words vs GTS's 2.6 MB, and an
//! outright OOM on T-Loc). Construction therefore takes an optional
//! **host-memory budget** and fails with `IndexError::OutOfMemory` when the
//! accumulating structure exceeds it — reproducing the `/` entries.

use crate::bst::insert_bounded;
use crate::clock::impl_cpu_clocked;
use gpu_sim::CpuClock;
use metric_space::index::{sort_neighbors, DynamicIndex, IndexError, Neighbor, SimilarityIndex};
use metric_space::pivot::fft_select;
use metric_space::{Item, ItemMetric, Metric};

const SPLITS: usize = 16;
const LEAF_CAP: usize = 32;

enum GnatNode {
    Internal {
        splits: Vec<u32>,
        /// `ranges[i * m + j]` = (min, max) of `d(o, splits[i])` over the
        /// objects of child `j`.
        ranges: Vec<(f64, f64)>,
        children: Vec<u32>,
    },
    Leaf {
        objs: Vec<u32>,
        /// Distance from each object to the parent split point (EGNAT's
        /// per-leaf cache enabling one extra filter).
        parent_d: Vec<f64>,
    },
}

/// EGNAT over [`Item`]s.
pub struct Egnat {
    items: Vec<Item>,
    metric: ItemMetric,
    live: Vec<bool>,
    nodes: Vec<GnatNode>,
    root: u32,
    bytes: u64,
    budget: Option<u64>,
    build_seconds: f64,
    pub(crate) clock: CpuClock,
}

impl Egnat {
    /// Build with no memory budget.
    pub fn build(items: Vec<Item>, metric: ItemMetric) -> Result<Self, IndexError> {
        Self::build_with_budget(items, metric, None)
    }

    /// Build, failing with `OutOfMemory` if the index structure would exceed
    /// `budget` bytes (models the paper's host-memory failures).
    pub fn build_with_budget(
        items: Vec<Item>,
        metric: ItemMetric,
        budget: Option<u64>,
    ) -> Result<Self, IndexError> {
        let mut t = Egnat {
            live: vec![true; items.len()],
            items,
            metric,
            nodes: Vec::new(),
            root: 0,
            bytes: 0,
            budget,
            build_seconds: 0.0,
            clock: CpuClock::default(),
        };
        let ids: Vec<u32> = (0..t.items.len() as u32).collect();
        t.root = t.build_node(ids, None)?;
        t.build_seconds = t.clock.seconds();
        Ok(t)
    }

    fn dist(&self, a: u32, b: &Item) -> f64 {
        let ai = &self.items[a as usize];
        self.clock.charge(self.metric.work(ai, b));
        self.metric.distance(ai, b)
    }

    fn charge_bytes(&mut self, b: u64) -> Result<(), IndexError> {
        self.bytes += b;
        if let Some(budget) = self.budget {
            if self.bytes > budget {
                return Err(IndexError::OutOfMemory {
                    requested: self.bytes,
                    available: budget,
                    context: "EGNAT host budget",
                });
            }
        }
        Ok(())
    }

    fn build_node(&mut self, ids: Vec<u32>, parent_split: Option<u32>) -> Result<u32, IndexError> {
        if ids.len() <= LEAF_CAP.max(SPLITS) {
            let parent_d = match parent_split {
                Some(p) => ids
                    .iter()
                    .map(|&o| self.dist(p, &self.items[o as usize]))
                    .collect(),
                None => vec![0.0; ids.len()],
            };
            self.charge_bytes(12 * ids.len() as u64 + 16)?;
            self.nodes.push(GnatNode::Leaf {
                objs: ids,
                parent_d,
            });
            return Ok((self.nodes.len() - 1) as u32);
        }
        // Split points by farthest-first traversal (charged).
        let splits = fft_select(
            &self.items,
            &ids,
            &self.metric,
            SPLITS,
            0x9e47 ^ ids.len() as u64,
        );
        for &s in &splits {
            for &o in &ids {
                // fft_select computed these internally; charge them here so
                // the clock reflects the real FFT cost.
                self.clock.charge(
                    self.metric
                        .work(&self.items[s as usize], &self.items[o as usize]),
                );
            }
        }
        let m = splits.len();
        // Assign each object to its nearest split point, recording the full
        // distance row to fill the range table.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); m * m];
        for &o in &ids {
            let row: Vec<f64> = splits
                .iter()
                .map(|&s| self.dist(s, &self.items[o as usize]))
                .collect();
            let (j, _) = row
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
                .expect("non-empty row");
            buckets[j].push(o);
            for (i, &d) in row.iter().enumerate() {
                let r = &mut ranges[i * m + j];
                r.0 = r.0.min(d);
                r.1 = r.1.max(d);
            }
        }
        self.charge_bytes((m * m * 16 + m * 8) as u64)?;
        // Degenerate split (duplicates): flat leaf fallback.
        if buckets.iter().filter(|b| !b.is_empty()).count() <= 1 {
            let parent_d = vec![0.0; ids.len()];
            self.charge_bytes(12 * ids.len() as u64)?;
            self.nodes.push(GnatNode::Leaf {
                objs: ids,
                parent_d,
            });
            return Ok((self.nodes.len() - 1) as u32);
        }
        let mut children = Vec::with_capacity(m);
        for (j, bucket) in buckets.into_iter().enumerate() {
            let child = self.build_node(bucket, Some(splits[j]))?;
            children.push(child);
        }
        self.nodes.push(GnatNode::Internal {
            splits,
            ranges,
            children,
        });
        Ok((self.nodes.len() - 1) as u32)
    }

    /// Simulated seconds spent constructing.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    fn range_rec(&self, node: u32, q: &Item, r: f64, out: &mut Vec<Neighbor>) {
        match &self.nodes[node as usize] {
            GnatNode::Leaf { objs, .. } => {
                for &o in objs {
                    if !self.live[o as usize] {
                        continue;
                    }
                    let d = self.dist(o, q);
                    if d <= r {
                        out.push(Neighbor::new(o, d));
                    }
                }
            }
            GnatNode::Internal {
                splits,
                ranges,
                children,
            } => {
                let m = splits.len();
                let mut alive = vec![true; m];
                for (i, &s) in splits.iter().enumerate() {
                    if !alive.iter().any(|&a| a) {
                        break;
                    }
                    let di = self.dist(s, q);
                    for (j, a) in alive.iter_mut().enumerate() {
                        if !*a {
                            continue;
                        }
                        let (lo, hi) = ranges[i * m + j];
                        if lo > hi {
                            *a = false; // empty child
                        } else if di + r < lo || di - r > hi {
                            *a = false; // GNAT range prune
                        }
                    }
                }
                for (j, &c) in children.iter().enumerate() {
                    if alive[j] {
                        self.range_rec(c, q, r, out);
                    }
                }
            }
        }
    }

    fn knn_rec(&self, node: u32, q: &Item, k: usize, heap: &mut Vec<Neighbor>) {
        let bound = |h: &Vec<Neighbor>| {
            if h.len() == k {
                h.last().map_or(f64::INFINITY, |n| n.dist)
            } else {
                f64::INFINITY
            }
        };
        match &self.nodes[node as usize] {
            GnatNode::Leaf { objs, parent_d } => {
                let _ = parent_d;
                for &o in objs {
                    if !self.live[o as usize] {
                        continue;
                    }
                    let d = self.dist(o, q);
                    insert_bounded(heap, Neighbor::new(o, d), k);
                }
            }
            GnatNode::Internal {
                splits,
                ranges,
                children,
            } => {
                let m = splits.len();
                let mut alive = vec![true; m];
                let mut dqs = vec![f64::INFINITY; m];
                for (i, &s) in splits.iter().enumerate() {
                    let di = self.dist(s, q);
                    dqs[i] = di;
                    if self.live[s as usize] {
                        insert_bounded(heap, Neighbor::new(s, di), k);
                    }
                    let b = bound(heap);
                    for (j, a) in alive.iter_mut().enumerate() {
                        if !*a {
                            continue;
                        }
                        let (lo, hi) = ranges[i * m + j];
                        if lo > hi || di + b <= lo || di - b >= hi {
                            *a = false;
                        }
                    }
                }
                // Visit children nearest their split point first.
                let mut order: Vec<usize> = (0..m).filter(|&j| alive[j]).collect();
                order.sort_by(|&a, &b| dqs[a].partial_cmp(&dqs[b]).expect("NaN"));
                for j in order {
                    // Re-check with the current (possibly tighter) bound.
                    let b = bound(heap);
                    let prunable = (0..m).any(|i| {
                        let (lo, hi) = ranges[i * m + j];
                        lo <= hi && (dqs[i] + b <= lo || dqs[i] - b >= hi)
                    });
                    if !prunable {
                        self.knn_rec(children[j], q, k, heap);
                    }
                }
            }
        }
    }
}

impl SimilarityIndex<Item> for Egnat {
    fn name(&self) -> &'static str {
        "EGNAT"
    }

    fn len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn range_query(&self, q: &Item, r: f64) -> Result<Vec<Neighbor>, IndexError> {
        let mut out = Vec::new();
        self.range_rec(self.root, q, r, &mut out);
        sort_neighbors(&mut out);
        Ok(out)
    }

    fn knn_query(&self, q: &Item, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        let mut heap = Vec::new();
        if k > 0 {
            self.knn_rec(self.root, q, k, &mut heap);
        }
        Ok(heap)
    }

    fn memory_bytes(&self) -> u64 {
        self.bytes
    }
}

impl DynamicIndex<Item> for Egnat {
    /// Streaming insert (EGNAT is the *dynamic* GNAT \[48\]): descend to the
    /// nearest split point, widening the touched ranges, append to the leaf.
    fn insert(&mut self, obj: Item) -> Result<u32, IndexError> {
        let id = self.items.len() as u32;
        self.items.push(obj);
        self.live.push(true);
        let mut node = self.root;
        loop {
            let step = match &self.nodes[node as usize] {
                GnatNode::Leaf { .. } => None,
                GnatNode::Internal {
                    splits, children, ..
                } => {
                    let row: Vec<f64> = splits
                        .iter()
                        .map(|&s| self.dist(s, &self.items[id as usize]))
                        .collect();
                    let (j, _) = row
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
                        .expect("non-empty");
                    Some((j, row, children[j]))
                }
            };
            match step {
                Some((j, row, next)) => {
                    if let GnatNode::Internal { ranges, splits, .. } =
                        &mut self.nodes[node as usize]
                    {
                        let m = splits.len();
                        for (i, &d) in row.iter().enumerate() {
                            let r = &mut ranges[i * m + j];
                            r.0 = r.0.min(d);
                            r.1 = r.1.max(d);
                        }
                    }
                    node = next;
                }
                None => {
                    let parent_dist = 0.0; // cache refreshed on next rebuild
                    if let GnatNode::Leaf { objs, parent_d } = &mut self.nodes[node as usize] {
                        objs.push(id);
                        parent_d.push(parent_dist);
                    }
                    self.bytes += 12;
                    return Ok(id);
                }
            }
        }
    }

    /// Streaming delete: liveness tombstone.
    fn remove(&mut self, id: u32) -> Result<bool, IndexError> {
        match self.live.get_mut(id as usize) {
            Some(l) if *l => {
                *l = false;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

impl_cpu_clocked!(Egnat);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use metric_space::DatasetKind;

    #[test]
    fn matches_linear_scan() {
        let d = DatasetKind::Words.generate(300, 13);
        let t = Egnat::build(d.items.clone(), d.metric).expect("build");
        let scan = LinearScan::new(d.items.clone(), d.metric);
        for qid in [1usize, 111, 222] {
            let q = &d.items[qid];
            assert_eq!(
                t.range_query(q, 2.0).expect("egnat"),
                scan.range_query(q, 2.0).expect("scan"),
                "range mismatch at {qid}"
            );
            let da: Vec<f64> = t
                .knn_query(q, 6)
                .expect("t")
                .iter()
                .map(|n| n.dist)
                .collect();
            let db: Vec<f64> = scan
                .knn_query(q, 6)
                .expect("s")
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(da, db, "knn mismatch at {qid}");
        }
    }

    #[test]
    fn budget_enforced() {
        let d = DatasetKind::TLoc.generate(2000, 13);
        let err = Egnat::build_with_budget(d.items.clone(), d.metric, Some(1024));
        assert!(
            matches!(err, Err(IndexError::OutOfMemory { .. })),
            "tiny budget must fail"
        );
        assert!(Egnat::build_with_budget(d.items, d.metric, None).is_ok());
    }

    #[test]
    fn memory_is_heavy() {
        // EGNAT must cost far more bytes per object than a simple id list —
        // the property that causes its Table 4 blow-ups.
        let d = DatasetKind::TLoc.generate(3000, 13);
        let t = Egnat::build(d.items, d.metric).expect("build");
        assert!(
            t.memory_bytes() > 3000 * 12,
            "got {} bytes",
            t.memory_bytes()
        );
    }

    #[test]
    fn insert_remove_roundtrip() {
        let d = DatasetKind::TLoc.generate(400, 13);
        let mut t = Egnat::build(d.items.clone(), d.metric).expect("build");
        let id = t.insert(Item::vector(vec![5e3, 5e3])).expect("ins");
        let hits = t
            .range_query(&Item::vector(vec![5e3, 5e3]), 0.5)
            .expect("q");
        assert!(hits.iter().any(|n| n.id == id));
        assert!(t.remove(id).expect("rm"));
        let hits = t
            .range_query(&Item::vector(vec![5e3, 5e3]), 0.5)
            .expect("q");
        assert!(!hits.iter().any(|n| n.id == id));
    }
}
