//! GPU-Tree — the multi-tree strategy of G-PICS (Lewis & Tu \[38\]) applied to
//! metric data with MVP-trees, as the GTS paper's "GPU-Tree" baseline.
//!
//! Faithfully keeps the two design decisions the paper criticises:
//!
//! 1. **Single-core node construction** \[33, 47\]: each tree node is split by
//!    one core, so the *span* of the build is the sequential cost along the
//!    heaviest root-to-leaf path — the reason Table 4 shows construction
//!    up to ~80× slower than GTS.
//! 2. **Fixed-size thread blocks, serial node processing** at query time:
//!    one block walks one (query, tree) pair node-by-node, and every query
//!    pre-allocates fixed candidate buffers in every tree. Buffer bytes grow
//!    linearly with the batch, so a large-enough batch exhausts global
//!    memory — the Fig. 9 "memory deadlock" at 512 queries on Color.

use crate::clock::impl_gpu_clocked;
use gpu_sim::{Device, GpuError, Reservation};
use metric_space::index::{sort_neighbors, DynamicIndex, IndexError, Neighbor, SimilarityIndex};
use metric_space::lemmas::{prune_node_knn, prune_node_range};
use metric_space::{ArenaLayout, BatchMetric, Footprint, Item, ItemMetric, Metric, ObjectArena};
use std::sync::Arc;

/// Tuning knobs of the multi-tree baseline.
#[derive(Clone, Copy, Debug)]
pub struct GpuTreeParams {
    /// Number of independent sub-trees `P` (G-PICS builds many small trees
    /// so each fits a block's capabilities).
    pub num_trees: usize,
    /// Threads per block — the fixed block size that limits per-node
    /// parallelism.
    pub block_threads: u32,
    /// Candidate-buffer entries per query = `n / divisor` (split across the
    /// `P` trees), each entry staging the candidate **object payload** —
    /// which is why high-dimensional data (Color) exhausts memory first.
    pub buffer_divisor: usize,
    /// Fan-out of each MVP sub-tree.
    pub fanout: usize,
    /// Leaf capacity of each sub-tree.
    pub leaf_cap: usize,
    /// Payload arena layout for the batched pivot/leaf distance kernels.
    /// A pure wall-clock lever: answers and simulated cycles are identical
    /// across layouts (the work model reads lengths only).
    pub arena_layout: ArenaLayout,
}

impl Default for GpuTreeParams {
    fn default() -> Self {
        GpuTreeParams {
            num_trees: 64,
            block_threads: 256,
            buffer_divisor: 64,
            fanout: 4,
            leaf_cap: 32,
            arena_layout: ArenaLayout::Legacy,
        }
    }
}

enum TNode {
    Internal {
        pivot: u32,
        rings: Vec<(f64, f64)>,
        children: Vec<u32>,
    },
    Leaf {
        objs: Vec<u32>,
    },
}

struct SubTree {
    nodes: Vec<TNode>,
    root: u32,
}

/// The G-PICS-style multi-tree GPU index.
pub struct GpuTree {
    pub(crate) dev: Arc<Device>,
    items: Vec<Item>,
    metric: ItemMetric,
    live: Vec<bool>,
    trees: Vec<SubTree>,
    /// Flat payload arena rebuilt alongside the trees; pivot splits and
    /// leaf verification run batched through it. `None` for heterogeneous
    /// datasets (the batch kernel falls back to boxed payloads).
    arena: Option<ObjectArena>,
    params: GpuTreeParams,
    build_seconds: f64,
    _resident: Reservation,
}

fn gpu_err(e: GpuError) -> IndexError {
    match e {
        GpuError::OutOfMemory {
            requested,
            available,
            context,
        } => IndexError::OutOfMemory {
            requested,
            available,
            context,
        },
        GpuError::DeviceUnavailable { .. } => {
            IndexError::Unsupported("device quarantined by a permanent fault")
        }
    }
}

/// Build accumulator: total work plus the heaviest per-depth node work
/// (= the span under the one-core-per-node model).
#[derive(Default)]
struct BuildCost {
    work: u64,
    max_per_depth: Vec<u64>,
}

impl BuildCost {
    fn record(&mut self, depth: usize, node_work: u64) {
        if self.max_per_depth.len() <= depth {
            self.max_per_depth.resize(depth + 1, 0);
        }
        self.max_per_depth[depth] = self.max_per_depth[depth].max(node_work);
        self.work += node_work;
    }

    fn span(&self) -> u64 {
        self.max_per_depth.iter().sum()
    }
}

impl GpuTree {
    /// Build with default parameters.
    pub fn build(
        dev: &Arc<Device>,
        items: Vec<Item>,
        metric: ItemMetric,
    ) -> Result<Self, IndexError> {
        Self::build_with_params(dev, items, metric, GpuTreeParams::default())
    }

    /// Build with explicit parameters.
    pub fn build_with_params(
        dev: &Arc<Device>,
        items: Vec<Item>,
        metric: ItemMetric,
        params: GpuTreeParams,
    ) -> Result<Self, IndexError> {
        let bytes: u64 = items.iter().map(Footprint::size_bytes).sum();
        let resident = dev
            .reserve(bytes, "GPU-Tree resident objects")
            .map_err(gpu_err)?;
        dev.h2d_transfer(bytes);
        let start = dev.cycles();
        let mut t = GpuTree {
            dev: Arc::clone(dev),
            live: vec![true; items.len()],
            items,
            metric,
            trees: Vec::new(),
            arena: None,
            params,
            build_seconds: 0.0,
            _resident: resident,
        };
        t.rebuild_trees()?;
        t.build_seconds = t.dev.seconds_since(start);
        Ok(t)
    }

    fn rebuild_trees(&mut self) -> Result<(), IndexError> {
        // The arena tracks the object store; rebuilding it costs no
        // simulated cycles (it is a host-side layout decision).
        self.arena = self
            .metric
            .build_arena_with(&self.items, self.params.arena_layout);
        let p = self.params.num_trees.max(1);
        let mut partitions: Vec<Vec<u32>> = vec![Vec::new(); p];
        for (i, &l) in self.live.iter().enumerate() {
            if l {
                partitions[i % p].push(i as u32);
            }
        }
        let mut cost = BuildCost::default();
        self.trees = partitions
            .into_iter()
            .filter(|ids| !ids.is_empty())
            .map(|ids| {
                let mut nodes = Vec::new();
                let root = self.build_node(ids, 0, &mut nodes, &mut cost);
                SubTree { nodes, root }
            })
            .collect();
        // One-core-per-node charging: span = heaviest sequential path.
        self.dev.charge_kernel(cost.work, cost.span());
        Ok(())
    }

    fn build_node(
        &self,
        ids: Vec<u32>,
        depth: usize,
        nodes: &mut Vec<TNode>,
        cost: &mut BuildCost,
    ) -> u32 {
        if ids.len() <= self.params.leaf_cap {
            nodes.push(TNode::Leaf { objs: ids });
            return (nodes.len() - 1) as u32;
        }
        let pivot = ids[0];
        // One batched sweep from the pivot over the node's objects; the
        // reported total equals the per-pair work sum charged before.
        let mut d = vec![0.0f64; ids.len()];
        let (node_work, _span) = self.metric.distance_batch(
            &self.items,
            self.arena.as_ref(),
            &self.items[pivot as usize],
            &ids,
            &mut d,
        );
        let mut with_d: Vec<(f64, u32)> = d.into_iter().zip(ids).collect();
        cost.record(depth, node_work);
        with_d.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN").then(a.1.cmp(&b.1)));
        if with_d.first().map(|f| f.0) == with_d.last().map(|l| l.0) {
            let objs = with_d.into_iter().map(|(_, o)| o).collect();
            nodes.push(TNode::Leaf { objs });
            return (nodes.len() - 1) as u32;
        }
        let chunk = with_d.len().div_ceil(self.params.fanout);
        let mut rings = Vec::new();
        let mut children = Vec::new();
        for part in with_d.chunks(chunk) {
            rings.push((part[0].0, part.last().expect("non-empty").0));
            let child_ids: Vec<u32> = part.iter().map(|&(_, o)| o).collect();
            children.push(self.build_node(child_ids, depth + 1, nodes, cost));
        }
        nodes.push(TNode::Internal {
            pivot,
            rings,
            children,
        });
        (nodes.len() - 1) as u32
    }

    /// Simulated construction time.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// Candidate-buffer bytes one query reserves across all trees. Each
    /// buffered candidate stages the object payload (G-PICS verifies
    /// candidates block-locally), so wide objects cost proportionally more.
    fn buffer_bytes_per_query(&self) -> u64 {
        let n = self.items.len().max(1);
        let entries = (n / self.params.buffer_divisor.max(1)).max(self.params.leaf_cap);
        let avg_obj_bytes = self
            .items
            .iter()
            .take(64)
            .map(Footprint::size_bytes)
            .sum::<u64>()
            / self.items.len().clamp(1, 64) as u64;
        entries as u64 * (avg_obj_bytes + 8)
    }

    /// Reserve the per-batch candidate buffers; failure here is the
    /// "memory deadlock" of Fig. 9.
    fn reserve_buffers(&self, batch: usize) -> Result<Reservation, IndexError> {
        self.dev
            .reserve(
                self.buffer_bytes_per_query() * batch as u64,
                "GPU-Tree per-query candidate buffers",
            )
            .map_err(gpu_err)
    }

    /// Serial (per-block) range traversal of one tree; returns accumulated
    /// (hits, work, span-cycles) under the fixed-block model.
    fn range_tree(&self, tree: &SubTree, q: &Item, r: f64, out: &mut Vec<Neighbor>) -> (u64, u64) {
        let mut work = 0u64;
        let mut span = 0u64;
        let mut stack = vec![tree.root];
        while let Some(id) = stack.pop() {
            match &tree.nodes[id as usize] {
                TNode::Leaf { objs } => {
                    // Batched leaf verification over the live objects; the
                    // block's threads share the batch, so the span model
                    // (leaf work split across `block_threads`) is unchanged.
                    let live_ids: Vec<u32> = objs
                        .iter()
                        .copied()
                        .filter(|&o| self.live[o as usize])
                        .collect();
                    let mut d = vec![0.0f64; live_ids.len()];
                    let (leaf_work, _s) = self.metric.distance_batch(
                        &self.items,
                        self.arena.as_ref(),
                        q,
                        &live_ids,
                        &mut d,
                    );
                    for (&o, &dist) in live_ids.iter().zip(&d) {
                        if dist <= r {
                            out.push(Neighbor::new(o, dist));
                        }
                    }
                    work += leaf_work;
                    // Leaf objects verified by the block's threads.
                    span += leaf_work / u64::from(self.params.block_threads) + 1;
                }
                TNode::Internal {
                    pivot,
                    rings,
                    children,
                } => {
                    let obj = &self.items[*pivot as usize];
                    let w = self.metric.work(q, obj);
                    let d = self.metric.distance(q, obj);
                    work += w;
                    span += w; // pivot distance on one thread, serial
                    for (j, &(lo, hi)) in rings.iter().enumerate() {
                        if !prune_node_range(lo, hi, d, r) {
                            stack.push(children[j]);
                        }
                    }
                }
            }
        }
        (work, span)
    }

    fn knn_tree(&self, tree: &SubTree, q: &Item, k: usize, heap: &mut Vec<Neighbor>) -> (u64, u64) {
        let bound = |h: &Vec<Neighbor>| {
            if h.len() == k {
                h.last().map_or(f64::INFINITY, |n| n.dist)
            } else {
                f64::INFINITY
            }
        };
        let mut work = 0u64;
        let mut span = 0u64;
        let mut stack = vec![tree.root];
        while let Some(id) = stack.pop() {
            match &tree.nodes[id as usize] {
                TNode::Leaf { objs } => {
                    let live_ids: Vec<u32> = objs
                        .iter()
                        .copied()
                        .filter(|&o| self.live[o as usize])
                        .collect();
                    let mut d = vec![0.0f64; live_ids.len()];
                    let (leaf_work, _s) = self.metric.distance_batch(
                        &self.items,
                        self.arena.as_ref(),
                        q,
                        &live_ids,
                        &mut d,
                    );
                    // Candidates enter the bounded heap in object order —
                    // the same order the per-pair loop used.
                    for (&o, &dist) in live_ids.iter().zip(&d) {
                        crate::bst::insert_bounded(heap, Neighbor::new(o, dist), k);
                    }
                    work += leaf_work;
                    span += leaf_work / u64::from(self.params.block_threads) + 1;
                }
                TNode::Internal {
                    pivot,
                    rings,
                    children,
                } => {
                    let obj = &self.items[*pivot as usize];
                    let w = self.metric.work(q, obj);
                    let d = self.metric.distance(q, obj);
                    work += w;
                    span += w;
                    if self.live[*pivot as usize] {
                        crate::bst::insert_bounded(heap, Neighbor::new(*pivot, d), k);
                    }
                    let b = bound(heap);
                    for (j, &(lo, hi)) in rings.iter().enumerate() {
                        if !prune_node_knn(lo, hi, d, b) {
                            stack.push(children[j]);
                        }
                    }
                }
            }
        }
        (work, span)
    }
}

impl SimilarityIndex<Item> for GpuTree {
    fn name(&self) -> &'static str {
        "GPU-Tree"
    }

    fn len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn range_query(&self, q: &Item, r: f64) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_range(std::slice::from_ref(q), &[r])?
            .pop()
            .expect("one answer"))
    }

    fn knn_query(&self, q: &Item, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_knn(std::slice::from_ref(q), k)?
            .pop()
            .expect("one answer"))
    }

    fn batch_range(
        &self,
        queries: &[Item],
        radii: &[f64],
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        assert_eq!(queries.len(), radii.len());
        let qbytes: u64 = queries.iter().map(Footprint::size_bytes).sum();
        self.dev.h2d_transfer(qbytes);
        let _buffers = self.reserve_buffers(queries.len())?;
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        let mut total_work = 0u64;
        let mut max_span = 0u64;
        for (qi, q) in queries.iter().enumerate() {
            // One block per query, walking all P trees sequentially.
            let mut q_span = 0u64;
            for tree in &self.trees {
                let (w, s) = self.range_tree(tree, q, radii[qi], &mut results[qi]);
                total_work += w;
                q_span += s;
            }
            max_span = max_span.max(q_span);
            sort_neighbors(&mut results[qi]);
        }
        self.dev.charge_kernel(total_work, max_span);
        let hits: usize = results.iter().map(Vec::len).sum();
        self.dev.d2h_transfer((hits * 16) as u64);
        Ok(results)
    }

    fn batch_knn(&self, queries: &[Item], k: usize) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        let qbytes: u64 = queries.iter().map(Footprint::size_bytes).sum();
        self.dev.h2d_transfer(qbytes);
        let _buffers = self.reserve_buffers(queries.len())?;
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        let mut total_work = 0u64;
        let mut max_span = 0u64;
        for (qi, q) in queries.iter().enumerate() {
            let mut heap = Vec::new();
            let mut q_span = 0u64;
            if k > 0 {
                for tree in &self.trees {
                    let (w, s) = self.knn_tree(tree, q, k, &mut heap);
                    total_work += w;
                    q_span += s;
                }
            }
            max_span = max_span.max(q_span);
            results[qi] = heap;
        }
        self.dev.charge_kernel(total_work, max_span);
        let hits: usize = results.iter().map(Vec::len).sum();
        self.dev.d2h_transfer((hits * 16) as u64);
        Ok(results)
    }

    fn memory_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for t in &self.trees {
            for n in &t.nodes {
                bytes += match n {
                    TNode::Internal { rings, .. } => 4 + rings.len() as u64 * 20,
                    TNode::Leaf { objs } => 8 + 4 * objs.len() as u64,
                };
            }
        }
        bytes + self.live.len() as u64 / 8
    }
}

impl DynamicIndex<Item> for GpuTree {
    /// G-PICS-style single-object update: a single GPU core patches the
    /// tree — modelled as a full sub-tree rebuild for the partition the
    /// object falls in (the paper: "leveraging single GPU cores for complex
    /// tree structure updating faces an efficiency bottleneck").
    fn insert(&mut self, obj: Item) -> Result<u32, IndexError> {
        let id = self.items.len() as u32;
        self.dev.h2d_transfer(obj.size_bytes());
        self.items.push(obj);
        self.live.push(true);
        self.rebuild_trees()?;
        Ok(id)
    }

    fn remove(&mut self, id: u32) -> Result<bool, IndexError> {
        match self.live.get_mut(id as usize) {
            Some(l) if *l => {
                *l = false;
                self.rebuild_trees()?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Bulk path: apply all changes, rebuild once.
    fn batch_update(&mut self, insertions: Vec<Item>, deletions: &[u32]) -> Result<(), IndexError> {
        for &d in deletions {
            if let Some(l) = self.live.get_mut(d as usize) {
                *l = false;
            }
        }
        for obj in insertions {
            self.dev.h2d_transfer(obj.size_bytes());
            self.items.push(obj);
            self.live.push(true);
        }
        self.rebuild_trees()
    }
}

impl_gpu_clocked!(GpuTree);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use metric_space::DatasetKind;

    #[test]
    fn matches_linear_scan() {
        let d = DatasetKind::Words.generate(400, 17);
        let dev = Device::rtx_2080_ti();
        let t = GpuTree::build(&dev, d.items.clone(), d.metric).expect("build");
        let scan = LinearScan::new(d.items.clone(), d.metric);
        let q = &d.items[44];
        assert_eq!(
            t.range_query(q, 2.0).expect("t"),
            scan.range_query(q, 2.0).expect("s")
        );
        let da: Vec<f64> = t
            .knn_query(q, 9)
            .expect("t")
            .iter()
            .map(|n| n.dist)
            .collect();
        let db: Vec<f64> = scan
            .knn_query(q, 9)
            .expect("s")
            .iter()
            .map(|n| n.dist)
            .collect();
        assert_eq!(da, db);
    }

    #[test]
    fn memory_deadlock_on_large_batches() {
        let d = DatasetKind::Color.generate(2000, 17);
        let dev = gpu_sim::Device::new(gpu_sim::DeviceConfig {
            global_mem_bytes: 4 << 20,
            ..gpu_sim::DeviceConfig::rtx_2080_ti()
        });
        let t = GpuTree::build(&dev, d.items.clone(), d.metric).expect("build fits");
        let small: Vec<Item> = d.items[..4].to_vec();
        assert!(t.batch_range(&small, &[0.1; 4]).is_ok(), "small batch fits");
        let big: Vec<Item> = (0..512).map(|i| d.items[i % 2000].clone()).collect();
        let err = t.batch_range(&big, &vec![0.1; 512]);
        assert!(
            matches!(err, Err(IndexError::OutOfMemory { .. })),
            "512-query batch must deadlock on a small device"
        );
    }

    #[test]
    fn construction_span_dominates() {
        // One-core-per-node: the build span must be at least the root-split
        // cost of one partition, i.e. much more than total work / cores.
        let d = DatasetKind::TLoc.generate(4000, 17);
        let dev = Device::rtx_2080_ti();
        dev.reset_clock();
        let _t = GpuTree::build(&dev, d.items, d.metric).expect("build");
        let s = dev.stats();
        assert!(
            s.cycles > s.work / u64::from(dev.config().cores) + 8_000,
            "span-bound construction: cycles={} work={}",
            s.cycles,
            s.work
        );
    }

    #[test]
    fn aligned_layout_is_cycle_identical() {
        let d = DatasetKind::TLoc.generate(600, 23);
        let build_on = |layout| {
            let dev = Device::rtx_2080_ti();
            let t = GpuTree::build_with_params(
                &dev,
                d.items.clone(),
                d.metric,
                GpuTreeParams {
                    arena_layout: layout,
                    ..GpuTreeParams::default()
                },
            )
            .expect("build");
            (dev, t)
        };
        let (dev_l, legacy) = build_on(ArenaLayout::Legacy);
        let (dev_a, aligned) = build_on(ArenaLayout::Aligned);
        let queries: Vec<Item> = d.items[..12].to_vec();
        assert_eq!(
            legacy.batch_range(&queries, &[1.0; 12]).expect("l"),
            aligned.batch_range(&queries, &[1.0; 12]).expect("a"),
        );
        assert_eq!(
            legacy.batch_knn(&queries, 5).expect("l"),
            aligned.batch_knn(&queries, 5).expect("a"),
        );
        let (sl, sa) = (dev_l.stats(), dev_a.stats());
        assert_eq!(sl.cycles, sa.cycles, "layout is a pure wall-clock lever");
        assert_eq!(sl.work, sa.work);
        assert_eq!(sl.kernels, sa.kernels);
    }

    #[test]
    fn updates_rebuild() {
        let d = DatasetKind::TLoc.generate(300, 17);
        let dev = Device::rtx_2080_ti();
        let mut t = GpuTree::build(&dev, d.items.clone(), d.metric).expect("build");
        let id = t.insert(Item::vector(vec![4e3, 4e3])).expect("ins");
        let hits = t
            .range_query(&Item::vector(vec![4e3, 4e3]), 0.5)
            .expect("q");
        assert!(hits.iter().any(|n| n.id == id));
        assert!(t.remove(id).expect("rm"));
        let hits = t
            .range_query(&Item::vector(vec![4e3, 4e3]), 0.5)
            .expect("q");
        assert!(!hits.iter().any(|n| n.id == id));
    }
}
