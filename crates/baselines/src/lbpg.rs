//! LBPG-Tree — the GPU R-tree of Kim, Liu & Choi \[36\]: STR-bulk-loaded
//! R-tree with level-synchronous batched search on the device.
//!
//! Special-purpose per the paper's Remark: supports **Lp-norm vector data
//! only** (T-Loc under L2, Color under L1). Its MBRs store `2·dim` floats
//! per node, and in high dimension the min-distance bound prunes almost
//! nothing (the "dimension curse"), so query-time candidate buffers balloon
//! — the mechanism behind its Fig. 11 OOM on Color at 80% cardinality.
//! Updates rebuild the index from scratch (Fig. 5: "these alternatives
//! necessitate a complete rebuild for any data updates").

use crate::clock::impl_gpu_clocked;
use gpu_sim::{Device, GpuError, Reservation};
use metric_space::index::{sort_neighbors, DynamicIndex, IndexError, Neighbor, SimilarityIndex};
use metric_space::{Footprint, Item, ItemMetric, Metric, VectorMetric};
use std::sync::Arc;

const FANOUT: usize = 64;

/// One R-tree node: an MBR plus a child (or leaf-entry) range.
struct RNode {
    lo: Box<[f32]>,
    hi: Box<[f32]>,
    /// Start index in the level below (or in `leaf_objs` for leaves).
    start: u32,
    /// Number of children / leaf entries.
    count: u32,
}

/// STR-packed GPU R-tree.
pub struct LbpgTree {
    pub(crate) dev: Arc<Device>,
    items: Vec<Item>,
    metric: ItemMetric,
    vm: VectorMetric,
    live: Vec<bool>,
    dim: usize,
    /// Levels bottom-up: `levels[0]` are leaves.
    levels: Vec<Vec<RNode>>,
    /// Object ids in STR order (leaf entries).
    leaf_objs: Vec<u32>,
    build_seconds: f64,
    _resident: Reservation,
    _mbr_mem: Option<Reservation>,
}

fn gpu_err(e: GpuError) -> IndexError {
    match e {
        GpuError::OutOfMemory {
            requested,
            available,
            context,
        } => IndexError::OutOfMemory {
            requested,
            available,
            context,
        },
        GpuError::DeviceUnavailable { .. } => {
            IndexError::Unsupported("device quarantined by a permanent fault")
        }
    }
}

impl LbpgTree {
    /// Bulk-load over vector data; `Unsupported` for non-Lp metrics.
    pub fn build(
        dev: &Arc<Device>,
        items: Vec<Item>,
        metric: ItemMetric,
    ) -> Result<Self, IndexError> {
        let vm = match metric {
            ItemMetric::Vector(vm @ (VectorMetric::L1 | VectorMetric::L2)) => vm,
            _ => {
                return Err(IndexError::Unsupported(
                    "LBPG-Tree supports Lp-norm vector data only",
                ))
            }
        };
        let dim = items
            .first()
            .and_then(Item::as_vector)
            .map(<[f32]>::len)
            .ok_or(IndexError::EmptyIndex)?;
        let bytes: u64 = items.iter().map(Footprint::size_bytes).sum();
        let resident = dev
            .reserve(bytes, "LBPG resident objects")
            .map_err(gpu_err)?;
        dev.h2d_transfer(bytes);
        let start = dev.cycles();
        let mut t = LbpgTree {
            dev: Arc::clone(dev),
            live: vec![true; items.len()],
            items,
            metric,
            vm,
            dim,
            levels: Vec::new(),
            leaf_objs: Vec::new(),
            build_seconds: 0.0,
            _resident: resident,
            _mbr_mem: None,
        };
        t.bulk_load()?;
        t.build_seconds = t.dev.seconds_since(start);
        Ok(t)
    }

    fn vec_of(&self, id: u32) -> &[f32] {
        self.items[id as usize].as_vector().expect("vector item")
    }

    /// STR packing: device sort by the first coordinate, slice into leaves
    /// of `FANOUT`, then pack upward 64 children per node.
    fn bulk_load(&mut self) -> Result<(), IndexError> {
        self._mbr_mem = None;
        let mut ids: Vec<u32> = (0..self.items.len() as u32)
            .filter(|&i| self.live[i as usize])
            .collect();
        if ids.is_empty() {
            return Err(IndexError::EmptyIndex);
        }
        // Device sort on coordinate 0 (charged like any global sort).
        let mut pairs: Vec<(f64, u32)> = ids
            .iter()
            .map(|&i| (f64::from(self.vec_of(i)[0]), i))
            .collect();
        gpu_sim::primitives::sort_pairs_by_key(&self.dev, &mut pairs);
        ids = pairs.into_iter().map(|(_, i)| i).collect();
        self.leaf_objs = ids;

        // Leaves.
        let mut leaves = Vec::new();
        let mut work = 0u64;
        for (c, chunk) in self.leaf_objs.chunks(FANOUT).enumerate() {
            let mut lo = vec![f32::INFINITY; self.dim];
            let mut hi = vec![f32::NEG_INFINITY; self.dim];
            for &o in chunk {
                for (d, &x) in self.vec_of(o).iter().enumerate() {
                    lo[d] = lo[d].min(x);
                    hi[d] = hi[d].max(x);
                }
            }
            work += (chunk.len() * self.dim) as u64;
            leaves.push(RNode {
                lo: lo.into_boxed_slice(),
                hi: hi.into_boxed_slice(),
                start: (c * FANOUT) as u32,
                count: chunk.len() as u32,
            });
        }
        self.levels = vec![leaves];
        // Upper levels.
        while self.levels.last().expect("non-empty").len() > 1 {
            let below = self.levels.last().expect("non-empty");
            let mut level = Vec::new();
            for (c, chunk) in below.chunks(FANOUT).enumerate() {
                let mut lo = vec![f32::INFINITY; self.dim];
                let mut hi = vec![f32::NEG_INFINITY; self.dim];
                for n in chunk {
                    for d in 0..self.dim {
                        lo[d] = lo[d].min(n.lo[d]);
                        hi[d] = hi[d].max(n.hi[d]);
                    }
                }
                work += (chunk.len() * self.dim) as u64;
                level.push(RNode {
                    lo: lo.into_boxed_slice(),
                    hi: hi.into_boxed_slice(),
                    start: (c * FANOUT) as u32,
                    count: chunk.len() as u32,
                });
            }
            self.levels.push(level);
        }
        self.dev.charge_kernel(work, 64);
        // MBR storage: 2·dim·f32 per node — the dimension-curse footprint.
        let nodes: usize = self.levels.iter().map(Vec::len).sum();
        let mbr_bytes = (nodes * 2 * self.dim * 4 + nodes * 8) as u64;
        self._mbr_mem = Some(
            self.dev
                .reserve(mbr_bytes, "LBPG MBR storage")
                .map_err(gpu_err)?,
        );
        Ok(())
    }

    /// Simulated construction time.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// Lower bound on `d(q, any point in MBR)` under the node's Lp norm.
    fn mindist(&self, q: &[f32], node: &RNode) -> f64 {
        let mut acc = 0f64;
        for ((&x, &lo), &hi) in q.iter().zip(&node.lo[..]).zip(&node.hi[..]) {
            let excess = if x < lo {
                f64::from(lo - x)
            } else if x > hi {
                f64::from(x - hi)
            } else {
                0.0
            };
            match self.vm {
                VectorMetric::L1 => acc += excess,
                VectorMetric::L2 => acc += excess * excess,
                VectorMetric::Angular => unreachable!("rejected at build"),
            }
        }
        if self.vm == VectorMetric::L2 {
            acc.sqrt()
        } else {
            acc
        }
    }

    /// Level-synchronous device search: returns surviving leaf-entry ranges
    /// per query, charging MBR tests; candidate buffers are then allocated
    /// batch-wide (the OOM mechanism) before verification.
    fn collect_candidates(
        &self,
        queries: &[Item],
        radii: &[f64],
    ) -> Result<Vec<Vec<u32>>, IndexError> {
        let top = self.levels.len() - 1;
        // frontier[qi] = node indices at the current level
        let mut frontier: Vec<Vec<u32>> =
            vec![(0..self.levels[top].len() as u32).collect(); queries.len()];
        let mut work = 0u64;
        for lvl in (1..=top).rev() {
            let mut next: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
            for (qi, nodes) in frontier.iter().enumerate() {
                let q = queries[qi].as_vector().expect("vector query");
                for &ni in nodes {
                    let node = &self.levels[lvl][ni as usize];
                    work += (2 * self.dim) as u64;
                    if self.mindist(q, node) <= radii[qi] {
                        next[qi].extend(node.start..node.start + node.count);
                    }
                }
            }
            frontier = next;
        }
        // Leaf level: surviving leaves contribute their object ranges.
        let mut candidates: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        for (qi, nodes) in frontier.iter().enumerate() {
            let q = queries[qi].as_vector().expect("vector query");
            for &ni in nodes {
                let node = &self.levels[0][ni as usize];
                work += (2 * self.dim) as u64;
                if self.mindist(q, node) <= radii[qi] {
                    candidates[qi].extend_from_slice(
                        &self.leaf_objs[node.start as usize..(node.start + node.count) as usize],
                    );
                }
            }
        }
        self.dev.charge_kernel(work, 64);
        Ok(candidates)
    }

    fn verify(
        &self,
        queries: &[Item],
        radii: &[f64],
        candidates: Vec<Vec<u32>>,
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        let total: usize = candidates.iter().map(Vec::len).sum();
        // Candidate buffers materialised on device — high-dimensional data
        // barely prunes, so this is where LBPG runs out of memory.
        let _buf = self
            .dev
            .alloc::<u64>(total, "LBPG candidate buffers")
            .map_err(gpu_err)?;
        let flat: Vec<(u32, u32)> = candidates
            .iter()
            .enumerate()
            .flat_map(|(qi, c)| c.iter().map(move |&o| (qi as u32, o)))
            .collect();
        let dists = self.dev.launch_map(flat.len(), |t| {
            let (qi, o) = flat[t];
            let q = &queries[qi as usize];
            let obj = &self.items[o as usize];
            (self.metric.distance(q, obj), self.metric.work(q, obj))
        });
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        for ((qi, o), d) in flat.into_iter().zip(dists) {
            if self.live[o as usize] && d <= radii[qi as usize] {
                results[qi as usize].push(Neighbor::new(o, d));
            }
        }
        for r in &mut results {
            sort_neighbors(r);
        }
        Ok(results)
    }
}

impl SimilarityIndex<Item> for LbpgTree {
    fn name(&self) -> &'static str {
        "LBPG-Tree"
    }

    fn len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn range_query(&self, q: &Item, r: f64) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_range(std::slice::from_ref(q), &[r])?
            .pop()
            .expect("one answer"))
    }

    fn knn_query(&self, q: &Item, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_knn(std::slice::from_ref(q), k)?
            .pop()
            .expect("one answer"))
    }

    fn batch_range(
        &self,
        queries: &[Item],
        radii: &[f64],
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        assert_eq!(queries.len(), radii.len());
        let qbytes: u64 = queries.iter().map(Footprint::size_bytes).sum();
        self.dev.h2d_transfer(qbytes);
        let candidates = self.collect_candidates(queries, radii)?;
        let results = self.verify(queries, radii, candidates)?;
        let hits: usize = results.iter().map(Vec::len).sum();
        self.dev.d2h_transfer((hits * 16) as u64);
        Ok(results)
    }

    /// kNN by iterative radius doubling over the range path — LBPG is a
    /// range-query service first; this is its standard kNN adaptation.
    fn batch_knn(&self, queries: &[Item], k: usize) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        if k == 0 {
            return Ok(vec![Vec::new(); queries.len()]);
        }
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        let mut radii: Vec<f64> = vec![self.initial_knn_radius(); queries.len()];
        let mut unresolved: Vec<usize> = (0..queries.len()).collect();
        for _round in 0..48 {
            if unresolved.is_empty() {
                break;
            }
            let qs: Vec<Item> = unresolved.iter().map(|&i| queries[i].clone()).collect();
            let rs: Vec<f64> = unresolved.iter().map(|&i| radii[i]).collect();
            let partial = self.batch_range(&qs, &rs)?;
            let mut still = Vec::new();
            for (slot, hits) in unresolved.iter().zip(partial) {
                if hits.len() >= k.min(self.len()) {
                    let mut h = hits;
                    h.truncate(k);
                    results[*slot] = h;
                } else {
                    radii[*slot] *= 2.0;
                    still.push(*slot);
                }
            }
            unresolved = still;
        }
        Ok(results)
    }

    fn memory_bytes(&self) -> u64 {
        let nodes: usize = self.levels.iter().map(Vec::len).sum();
        (nodes * (2 * self.dim * 4 + 8)) as u64 + 4 * self.leaf_objs.len() as u64
    }
}

impl LbpgTree {
    fn initial_knn_radius(&self) -> f64 {
        // Seed radius from the root MBR extent scaled to the expected
        // nearest-neighbour spacing.
        let root = &self.levels.last().expect("non-empty")[0];
        let extent: f64 = (0..self.dim)
            .map(|d| f64::from(root.hi[d] - root.lo[d]))
            .sum();
        (extent / (self.items.len().max(2) as f64)).max(1e-6)
    }
}

impl DynamicIndex<Item> for LbpgTree {
    /// Any update rebuilds the packed structure from scratch.
    fn insert(&mut self, obj: Item) -> Result<u32, IndexError> {
        if obj.as_vector().map(<[f32]>::len) != Some(self.dim) {
            return Err(IndexError::Unsupported("dimension mismatch"));
        }
        let id = self.items.len() as u32;
        self.dev.h2d_transfer(obj.size_bytes());
        self.items.push(obj);
        self.live.push(true);
        self.bulk_load()?;
        Ok(id)
    }

    fn remove(&mut self, id: u32) -> Result<bool, IndexError> {
        match self.live.get_mut(id as usize) {
            Some(l) if *l => {
                *l = false;
                self.bulk_load()?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Bulk path: apply all changes, re-pack once.
    fn batch_update(&mut self, insertions: Vec<Item>, deletions: &[u32]) -> Result<(), IndexError> {
        for &d in deletions {
            if let Some(l) = self.live.get_mut(d as usize) {
                *l = false;
            }
        }
        for obj in insertions {
            if obj.as_vector().map(<[f32]>::len) != Some(self.dim) {
                return Err(IndexError::Unsupported("dimension mismatch"));
            }
            self.dev.h2d_transfer(obj.size_bytes());
            self.items.push(obj);
            self.live.push(true);
        }
        self.bulk_load()
    }
}

impl_gpu_clocked!(LbpgTree);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use metric_space::DatasetKind;

    #[test]
    fn matches_linear_scan_on_tloc() {
        let d = DatasetKind::TLoc.generate(600, 19);
        let dev = Device::rtx_2080_ti();
        let t = LbpgTree::build(&dev, d.items.clone(), d.metric).expect("build");
        let scan = LinearScan::new(d.items.clone(), d.metric);
        let q = &d.items[77];
        let r = scan.knn_query(q, 6).expect("scan")[5].dist;
        assert_eq!(
            t.range_query(q, r).expect("t"),
            scan.range_query(q, r).expect("s")
        );
        let da: Vec<f64> = t
            .knn_query(q, 6)
            .expect("t")
            .iter()
            .map(|n| n.dist)
            .collect();
        let db: Vec<f64> = scan
            .knn_query(q, 6)
            .expect("s")
            .iter()
            .map(|n| n.dist)
            .collect();
        assert_eq!(da, db);
    }

    #[test]
    fn rejects_non_lp_data() {
        let words = DatasetKind::Words.generate(50, 19);
        let dev = Device::rtx_2080_ti();
        assert!(matches!(
            LbpgTree::build(&dev, words.items, words.metric),
            Err(IndexError::Unsupported(_))
        ));
        let vecs = DatasetKind::Vector.generate(50, 19); // angular, not Lp
        assert!(matches!(
            LbpgTree::build(&dev, vecs.items, vecs.metric),
            Err(IndexError::Unsupported(_))
        ));
    }

    #[test]
    fn high_dim_prunes_poorly() {
        // On Color (282-d L1) the MBR bound should admit most of the
        // dataset as candidates — the dimension curse the paper leans on.
        let d = DatasetKind::Color.generate(800, 19);
        let dev = Device::rtx_2080_ti();
        let t = LbpgTree::build(&dev, d.items.clone(), d.metric).expect("build");
        let scan = LinearScan::new(d.items.clone(), d.metric);
        let q = &d.items[5];
        let r = scan.knn_query(q, 4).expect("s")[3].dist;
        let cands = t
            .collect_candidates(std::slice::from_ref(q), &[r])
            .expect("cands");
        assert!(
            cands[0].len() > 400,
            "expected weak pruning, got {} candidates",
            cands[0].len()
        );
        // Still exact despite weak pruning.
        assert_eq!(
            t.range_query(q, r).expect("t"),
            scan.range_query(q, r).expect("s")
        );
    }

    #[test]
    fn update_rebuilds_and_stays_correct() {
        let d = DatasetKind::TLoc.generate(200, 19);
        let dev = Device::rtx_2080_ti();
        let mut t = LbpgTree::build(&dev, d.items.clone(), d.metric).expect("build");
        let id = t.insert(Item::vector(vec![3e3, 3e3])).expect("ins");
        let hits = t
            .range_query(&Item::vector(vec![3e3, 3e3]), 0.5)
            .expect("q");
        assert!(hits.iter().any(|n| n.id == id));
        assert!(t.remove(id).expect("rm"));
        let hits = t
            .range_query(&Item::vector(vec![3e3, 3e3]), 0.5)
            .expect("q");
        assert!(!hits.iter().any(|n| n.id == id));
        assert!(matches!(
            t.insert(Item::vector(vec![1.0])),
            Err(IndexError::Unsupported(_))
        ));
    }
}
