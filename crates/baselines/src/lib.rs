//! # baselines
//!
//! Every method the GTS paper compares against (§6.1), re-implemented from
//! the cited algorithms and instrumented with the same cost models as GTS so
//! head-to-head shapes are meaningful:
//!
//! | Method | Kind | Source | Notes |
//! |---|---|---|---|
//! | [`LinearScan`] | CPU | — | ground truth for tests |
//! | [`Bst`] | CPU | Kalantari & McDonald \[32\] | bisector tree |
//! | [`Mvpt`] | CPU | Bozkaya & Özsoyoglu \[9,10\] | "most efficient CPU metric index" |
//! | [`Egnat`] | CPU | Navarro & Uribe \[44,48\] | GNAT ranges; memory-hungry |
//! | [`GpuTable`] | GPU | \[6,23,30\] | all-pairs distance table + Dr.Top-k |
//! | [`GpuTree`] | GPU | G-PICS \[38\] | multi-tree, fixed blocks, deadlock-prone |
//! | [`LbpgTree`] | GPU | LBPG \[36\] | STR R-tree; Lp-norm vector data only |
//! | [`Ganns`] | GPU | GANNS \[58\] | kNN-graph beam search; approximate, vector-only |
//!
//! CPU methods charge a [`gpu_sim::CpuClock`] (sequential work); GPU methods
//! charge the shared [`gpu_sim::Device`]. The [`Clocked`] trait exposes
//! simulated time uniformly to the experiment harness.
//!
//! **Where this sits in the arena/batch/launch stack:** the baselines
//! evaluate distances per pair through [`metric_space::Metric`] and charge
//! the clocks directly — they do not use the flat
//! [`metric_space::ObjectArena`] or the batched
//! [`metric_space::BatchMetric`] kernels that GTS's hot paths launch
//! through `Device::launch_batch` (batching the baselines over the same
//! arena is a ROADMAP item). Simulated-cycle comparisons are unaffected:
//! the arena and host-parallel layers are wall-clock optimisations only.

#![warn(missing_docs)]
pub mod bst;
pub mod clock;
pub mod egnat;
pub mod ganns;
pub mod gpu_table;
pub mod gpu_tree;
pub mod lbpg;
pub mod linear;
pub mod mvpt;

pub use bst::Bst;
pub use clock::Clocked;
pub use egnat::Egnat;
pub use ganns::Ganns;
pub use gpu_table::GpuTable;
pub use gpu_tree::GpuTree;
pub use lbpg::LbpgTree;
pub use linear::LinearScan;
pub use mvpt::Mvpt;
