//! GPU-Table — the distance-table family of GPU baselines (\[6, 20, 30, 34\]):
//! one kernel computes the distance from the query batch to **every** object,
//! then MRQ filters by predicate and MkNNQ runs the delegate-centric
//! Dr.Top-k of Gaihre et al. \[23\].
//!
//! There is no index to build (the paper notes GPU-Table "eliminates index
//! construction cost") and no pruning at all — the massive unnecessary
//! distance computation is exactly the weakness GTS addresses. The distance
//! table is materialised in device memory in query-row chunks sized to the
//! free capacity, so large batches degrade gracefully instead of OOMing.

use crate::clock::impl_gpu_clocked;
use gpu_sim::primitives::top_k_min;
use gpu_sim::{Device, GpuError, Reservation};
use metric_space::index::{sort_neighbors, DynamicIndex, IndexError, Neighbor, SimilarityIndex};
use metric_space::{Footprint, Item, ItemMetric, Metric};
use std::sync::Arc;

/// Brute-force GPU distance-table method.
pub struct GpuTable {
    pub(crate) dev: Arc<Device>,
    items: Vec<Item>,
    metric: ItemMetric,
    live: Vec<bool>,
    _resident: Reservation,
}

fn gpu_err(e: GpuError) -> IndexError {
    match e {
        GpuError::OutOfMemory {
            requested,
            available,
            context,
        } => IndexError::OutOfMemory {
            requested,
            available,
            context,
        },
        GpuError::DeviceUnavailable { .. } => {
            IndexError::Unsupported("device quarantined by a permanent fault")
        }
    }
}

impl GpuTable {
    /// Load the dataset onto the device (the only "construction" cost).
    pub fn new(
        dev: &Arc<Device>,
        items: Vec<Item>,
        metric: ItemMetric,
    ) -> Result<Self, IndexError> {
        let bytes: u64 = items.iter().map(Footprint::size_bytes).sum();
        let resident = dev
            .reserve(bytes, "GPU-Table resident objects")
            .map_err(gpu_err)?;
        dev.h2d_transfer(bytes);
        Ok(GpuTable {
            dev: Arc::clone(dev),
            live: vec![true; items.len()],
            items,
            metric,
            _resident: resident,
        })
    }

    /// Process `queries[lo..hi]` against all objects, returning the full
    /// distance rows; the caller chose `hi − lo` so the table fits.
    fn distance_rows(&self, queries: &[Item], lo: usize, hi: usize) -> Vec<f64> {
        let n = self.items.len();
        let tasks = (hi - lo) * n;
        self.dev.launch_map(tasks, |t| {
            let q = &queries[lo + t / n];
            let o = &self.items[t % n];
            (self.metric.distance(q, o), self.metric.work(q, o))
        })
    }

    /// Rows of the distance table that fit in current free memory.
    fn rows_that_fit(&self, remaining: usize) -> usize {
        let n = self.items.len().max(1) as u64;
        let free = self.dev.free_bytes() / 2; // headroom for outputs
        ((free / (n * 8)).max(1) as usize).min(remaining)
    }
}

impl SimilarityIndex<Item> for GpuTable {
    fn name(&self) -> &'static str {
        "GPU-Table"
    }

    fn len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn range_query(&self, q: &Item, r: f64) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_range(std::slice::from_ref(q), &[r])?
            .pop()
            .expect("one answer"))
    }

    fn knn_query(&self, q: &Item, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_knn(std::slice::from_ref(q), k)?
            .pop()
            .expect("one answer"))
    }

    fn batch_range(
        &self,
        queries: &[Item],
        radii: &[f64],
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        assert_eq!(queries.len(), radii.len());
        let n = self.items.len();
        let qbytes: u64 = queries.iter().map(Footprint::size_bytes).sum();
        self.dev.h2d_transfer(qbytes);
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        let mut lo = 0usize;
        while lo < queries.len() {
            let rows = self.rows_that_fit(queries.len() - lo);
            let hi = lo + rows;
            let _table = self
                .dev
                .alloc::<f64>(rows * n, "GPU-Table distance table")
                .map_err(gpu_err)?;
            let d = self.distance_rows(queries, lo, hi);
            // Parallel filter pass over the table.
            self.dev.launch_charged((rows * n) as u64, 8);
            for (row, result) in results[lo..hi].iter_mut().enumerate() {
                let r = radii[lo + row];
                for (o, &dist) in d[row * n..(row + 1) * n].iter().enumerate() {
                    if dist <= r && self.live[o] {
                        result.push(Neighbor::new(o as u32, dist));
                    }
                }
                sort_neighbors(result);
            }
            lo = hi;
        }
        let hits: usize = results.iter().map(Vec::len).sum();
        self.dev.d2h_transfer((hits * 16) as u64);
        Ok(results)
    }

    fn batch_knn(&self, queries: &[Item], k: usize) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        let n = self.items.len();
        let qbytes: u64 = queries.iter().map(Footprint::size_bytes).sum();
        self.dev.h2d_transfer(qbytes);
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        let mut lo = 0usize;
        while lo < queries.len() {
            let rows = self.rows_that_fit(queries.len() - lo);
            let hi = lo + rows;
            let _table = self
                .dev
                .alloc::<f64>(rows * n, "GPU-Table distance table")
                .map_err(gpu_err)?;
            let mut d = self.distance_rows(queries, lo, hi);
            // Tombstoned objects are masked before selection.
            for row in 0..rows {
                for (o, live) in self.live.iter().enumerate() {
                    if !live {
                        d[row * n + o] = f64::INFINITY;
                    }
                }
            }
            self.dev.launch_charged((rows * n) as u64, 4);
            for (row, result) in results[lo..hi].iter_mut().enumerate() {
                let rowslice = &d[row * n..(row + 1) * n];
                // Dr.Top-k: per-chunk delegates, then final selection.
                let idx = top_k_min(&self.dev, rowslice, k);
                result.extend(
                    idx.into_iter()
                        .map(|o| Neighbor::new(o, rowslice[o as usize])),
                );
            }
            lo = hi;
        }
        let hits: usize = results.iter().map(Vec::len).sum();
        self.dev.d2h_transfer((hits * 16) as u64);
        Ok(results)
    }

    fn memory_bytes(&self) -> u64 {
        // No index structure; only the liveness bitmap.
        self.live.len() as u64 / 8
    }
}

impl DynamicIndex<Item> for GpuTable {
    /// No structure to maintain: O(1) append.
    fn insert(&mut self, obj: Item) -> Result<u32, IndexError> {
        let id = self.items.len() as u32;
        self.dev.h2d_transfer(obj.size_bytes());
        self.items.push(obj);
        self.live.push(true);
        Ok(id)
    }

    /// No structure to maintain: O(1) tombstone.
    fn remove(&mut self, id: u32) -> Result<bool, IndexError> {
        match self.live.get_mut(id as usize) {
            Some(l) if *l => {
                *l = false;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

impl_gpu_clocked!(GpuTable);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use metric_space::DatasetKind;

    #[test]
    fn matches_linear_scan() {
        let d = DatasetKind::Vector.generate(200, 3);
        let dev = Device::rtx_2080_ti();
        let t = GpuTable::new(&dev, d.items.clone(), d.metric).expect("new");
        let scan = LinearScan::new(d.items.clone(), d.metric);
        let q = &d.items[9];
        let r = scan.knn_query(q, 5).expect("scan")[4].dist;
        assert_eq!(
            t.range_query(q, r).expect("gpu"),
            scan.range_query(q, r).expect("scan")
        );
        let da: Vec<f64> = t
            .knn_query(q, 5)
            .expect("t")
            .iter()
            .map(|n| n.dist)
            .collect();
        let db: Vec<f64> = scan
            .knn_query(q, 5)
            .expect("s")
            .iter()
            .map(|n| n.dist)
            .collect();
        assert_eq!(da, db);
    }

    #[test]
    fn batch_chunks_under_memory_pressure() {
        let d = DatasetKind::TLoc.generate(500, 3);
        // Device so small that only a few distance rows fit at a time.
        let dev = gpu_sim::Device::new(gpu_sim::DeviceConfig {
            global_mem_bytes: 64 << 10,
            ..gpu_sim::DeviceConfig::rtx_2080_ti()
        });
        let t = GpuTable::new(&dev, d.items.clone(), d.metric).expect("new");
        let queries: Vec<Item> = d.items[..32].to_vec();
        let radii = vec![0.5; 32];
        let res = t.batch_range(&queries, &radii).expect("chunked batch");
        assert_eq!(res.len(), 32);
        for (i, r) in res.iter().enumerate() {
            assert!(r.iter().any(|n| n.id == i as u32), "self hit for {i}");
        }
    }

    #[test]
    fn update_then_query() {
        let d = DatasetKind::TLoc.generate(100, 3);
        let dev = Device::rtx_2080_ti();
        let mut t = GpuTable::new(&dev, d.items.clone(), d.metric).expect("new");
        let id = t.insert(Item::vector(vec![9e3, 9e3])).expect("ins");
        let hits = t
            .range_query(&Item::vector(vec![9e3, 9e3]), 1.0)
            .expect("q");
        assert!(hits.iter().any(|n| n.id == id));
        t.remove(id).expect("rm");
        let hits = t
            .range_query(&Item::vector(vec![9e3, 9e3]), 1.0)
            .expect("q");
        assert!(!hits.iter().any(|n| n.id == id));
        // kNN must also mask removed ids.
        let knn = t.knn_query(&Item::vector(vec![9e3, 9e3]), 3).expect("knn");
        assert!(!knn.iter().any(|n| n.id == id));
    }

    #[test]
    fn charges_all_pairs_work() {
        let d = DatasetKind::TLoc.generate(300, 3);
        let dev = Device::rtx_2080_ti();
        let t = GpuTable::new(&dev, d.items.clone(), d.metric).expect("new");
        dev.reset_clock();
        t.range_query(&d.items[0], 0.1).expect("q");
        // 300 L2 distances at ~14 work each: the whole table, no pruning.
        assert!(dev.stats().work >= 300 * 10, "work = {}", dev.stats().work);
    }
}
