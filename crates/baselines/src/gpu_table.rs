//! GPU-Table — the distance-table family of GPU baselines (\[6, 20, 30, 34\]):
//! one kernel computes the distance from the query batch to **every** object,
//! then MRQ filters by predicate and MkNNQ runs the delegate-centric
//! Dr.Top-k of Gaihre et al. \[23\].
//!
//! There is no index to build (the paper notes GPU-Table "eliminates index
//! construction cost") and no pruning at all — the massive unnecessary
//! distance computation is exactly the weakness GTS addresses. The distance
//! table is materialised in device memory in query-row chunks sized to the
//! free capacity, so large batches degrade gracefully instead of OOMing.

use crate::clock::impl_gpu_clocked;
use gpu_sim::primitives::top_k_min;
use gpu_sim::{Device, GpuError, Reservation};
use metric_space::index::{sort_neighbors, DynamicIndex, IndexError, Neighbor, SimilarityIndex};
use metric_space::{ArenaLayout, BatchMetric, Footprint, Item, ItemMetric, ObjectArena};
use std::sync::Arc;

/// Brute-force GPU distance-table method.
pub struct GpuTable {
    pub(crate) dev: Arc<Device>,
    items: Vec<Item>,
    metric: ItemMetric,
    live: Vec<bool>,
    /// Flat payload arena: distance rows are computed batch-against-batch
    /// through [`BatchMetric::distance_batch`] instead of per pair. `None`
    /// when the dataset is heterogeneous or an append outgrew the arena;
    /// the batch kernel then falls back to boxed payloads with identical
    /// results and identical charged work.
    arena: Option<ObjectArena>,
    ids: Vec<u32>,
    _resident: Reservation,
}

fn gpu_err(e: GpuError) -> IndexError {
    match e {
        GpuError::OutOfMemory {
            requested,
            available,
            context,
        } => IndexError::OutOfMemory {
            requested,
            available,
            context,
        },
        GpuError::DeviceUnavailable { .. } => {
            IndexError::Unsupported("device quarantined by a permanent fault")
        }
    }
}

impl GpuTable {
    /// Load the dataset onto the device (the only "construction" cost).
    /// Uses the packed legacy arena layout.
    pub fn new(
        dev: &Arc<Device>,
        items: Vec<Item>,
        metric: ItemMetric,
    ) -> Result<Self, IndexError> {
        Self::with_layout(dev, items, metric, ArenaLayout::Legacy)
    }

    /// Load the dataset with an explicit arena layout. Metrics without a
    /// block kernel degrade `Aligned` to `Legacy`.
    pub fn with_layout(
        dev: &Arc<Device>,
        items: Vec<Item>,
        metric: ItemMetric,
        layout: ArenaLayout,
    ) -> Result<Self, IndexError> {
        let bytes: u64 = items.iter().map(Footprint::size_bytes).sum();
        let resident = dev
            .reserve(bytes, "GPU-Table resident objects")
            .map_err(gpu_err)?;
        dev.h2d_transfer(bytes);
        let arena = metric.build_arena_with(&items, layout);
        let ids = (0..items.len() as u32).collect();
        Ok(GpuTable {
            dev: Arc::clone(dev),
            live: vec![true; items.len()],
            arena,
            ids,
            items,
            metric,
            _resident: resident,
        })
    }

    /// Process `queries[lo..hi]` against all objects, returning the full
    /// distance rows; the caller chose `hi − lo` so the table fits.
    ///
    /// One batched launch covers the whole chunk: each query row is a
    /// [`BatchMetric::distance_batch`] sweep over the arena, and the launch
    /// charges the summed work with the rows' maximum per-pair span — the
    /// same total, span, and warp padding the old per-pair `launch_map`
    /// charged, so simulated cycles are unchanged.
    fn distance_rows(&self, queries: &[Item], lo: usize, hi: usize) -> Vec<f64> {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let tasks = (hi - lo) * n;
        self.dev.launch_batch(tasks, || {
            let mut d = vec![0.0f64; tasks];
            let (mut total, mut span) = (0u64, 0u64);
            for (row, out) in d.chunks_mut(n).enumerate() {
                let (t, s) = self.metric.distance_batch(
                    &self.items,
                    self.arena.as_ref(),
                    &queries[lo + row],
                    &self.ids,
                    out,
                );
                total += t;
                span = span.max(s);
            }
            (d, total, span)
        })
    }

    /// Rows of the distance table that fit in current free memory.
    fn rows_that_fit(&self, remaining: usize) -> usize {
        let n = self.items.len().max(1) as u64;
        let free = self.dev.free_bytes() / 2; // headroom for outputs
        ((free / (n * 8)).max(1) as usize).min(remaining)
    }
}

impl SimilarityIndex<Item> for GpuTable {
    fn name(&self) -> &'static str {
        "GPU-Table"
    }

    fn len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn range_query(&self, q: &Item, r: f64) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_range(std::slice::from_ref(q), &[r])?
            .pop()
            .expect("one answer"))
    }

    fn knn_query(&self, q: &Item, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_knn(std::slice::from_ref(q), k)?
            .pop()
            .expect("one answer"))
    }

    fn batch_range(
        &self,
        queries: &[Item],
        radii: &[f64],
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        assert_eq!(queries.len(), radii.len());
        let n = self.items.len();
        let qbytes: u64 = queries.iter().map(Footprint::size_bytes).sum();
        self.dev.h2d_transfer(qbytes);
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        let mut lo = 0usize;
        while lo < queries.len() {
            let rows = self.rows_that_fit(queries.len() - lo);
            let hi = lo + rows;
            let _table = self
                .dev
                .alloc::<f64>(rows * n, "GPU-Table distance table")
                .map_err(gpu_err)?;
            let d = self.distance_rows(queries, lo, hi);
            // Parallel filter pass over the table.
            self.dev.launch_charged((rows * n) as u64, 8);
            for (row, result) in results[lo..hi].iter_mut().enumerate() {
                let r = radii[lo + row];
                for (o, &dist) in d[row * n..(row + 1) * n].iter().enumerate() {
                    if dist <= r && self.live[o] {
                        result.push(Neighbor::new(o as u32, dist));
                    }
                }
                sort_neighbors(result);
            }
            lo = hi;
        }
        let hits: usize = results.iter().map(Vec::len).sum();
        self.dev.d2h_transfer((hits * 16) as u64);
        Ok(results)
    }

    fn batch_knn(&self, queries: &[Item], k: usize) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        let n = self.items.len();
        let qbytes: u64 = queries.iter().map(Footprint::size_bytes).sum();
        self.dev.h2d_transfer(qbytes);
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        let mut lo = 0usize;
        while lo < queries.len() {
            let rows = self.rows_that_fit(queries.len() - lo);
            let hi = lo + rows;
            let _table = self
                .dev
                .alloc::<f64>(rows * n, "GPU-Table distance table")
                .map_err(gpu_err)?;
            let mut d = self.distance_rows(queries, lo, hi);
            // Tombstoned objects are masked before selection.
            for row in 0..rows {
                for (o, live) in self.live.iter().enumerate() {
                    if !live {
                        d[row * n + o] = f64::INFINITY;
                    }
                }
            }
            self.dev.launch_charged((rows * n) as u64, 4);
            for (row, result) in results[lo..hi].iter_mut().enumerate() {
                let rowslice = &d[row * n..(row + 1) * n];
                // Dr.Top-k: per-chunk delegates, then final selection.
                let idx = top_k_min(&self.dev, rowslice, k);
                result.extend(
                    idx.into_iter()
                        .map(|o| Neighbor::new(o, rowslice[o as usize])),
                );
            }
            lo = hi;
        }
        let hits: usize = results.iter().map(Vec::len).sum();
        self.dev.d2h_transfer((hits * 16) as u64);
        Ok(results)
    }

    fn memory_bytes(&self) -> u64 {
        // No index structure; only the liveness bitmap.
        self.live.len() as u64 / 8
    }
}

impl DynamicIndex<Item> for GpuTable {
    /// No structure to maintain: O(1) append (the arena grows in step; if
    /// the new object does not fit its layout, the arena is dropped and
    /// queries fall back to boxed payloads).
    fn insert(&mut self, obj: Item) -> Result<u32, IndexError> {
        let id = self.items.len() as u32;
        self.dev.h2d_transfer(obj.size_bytes());
        if let Some(arena) = self.arena.as_mut() {
            if !arena.push_item(&obj) {
                self.arena = None;
            }
        }
        self.items.push(obj);
        self.live.push(true);
        self.ids.push(id);
        Ok(id)
    }

    /// No structure to maintain: O(1) tombstone.
    fn remove(&mut self, id: u32) -> Result<bool, IndexError> {
        match self.live.get_mut(id as usize) {
            Some(l) if *l => {
                *l = false;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

impl_gpu_clocked!(GpuTable);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use metric_space::DatasetKind;

    #[test]
    fn matches_linear_scan() {
        let d = DatasetKind::Vector.generate(200, 3);
        let dev = Device::rtx_2080_ti();
        let t = GpuTable::new(&dev, d.items.clone(), d.metric).expect("new");
        let scan = LinearScan::new(d.items.clone(), d.metric);
        let q = &d.items[9];
        let r = scan.knn_query(q, 5).expect("scan")[4].dist;
        assert_eq!(
            t.range_query(q, r).expect("gpu"),
            scan.range_query(q, r).expect("scan")
        );
        let da: Vec<f64> = t
            .knn_query(q, 5)
            .expect("t")
            .iter()
            .map(|n| n.dist)
            .collect();
        let db: Vec<f64> = scan
            .knn_query(q, 5)
            .expect("s")
            .iter()
            .map(|n| n.dist)
            .collect();
        assert_eq!(da, db);
    }

    #[test]
    fn batch_chunks_under_memory_pressure() {
        let d = DatasetKind::TLoc.generate(500, 3);
        // Device so small that only a few distance rows fit at a time.
        let dev = gpu_sim::Device::new(gpu_sim::DeviceConfig {
            global_mem_bytes: 64 << 10,
            ..gpu_sim::DeviceConfig::rtx_2080_ti()
        });
        let t = GpuTable::new(&dev, d.items.clone(), d.metric).expect("new");
        let queries: Vec<Item> = d.items[..32].to_vec();
        let radii = vec![0.5; 32];
        let res = t.batch_range(&queries, &radii).expect("chunked batch");
        assert_eq!(res.len(), 32);
        for (i, r) in res.iter().enumerate() {
            assert!(r.iter().any(|n| n.id == i as u32), "self hit for {i}");
        }
    }

    #[test]
    fn update_then_query() {
        let d = DatasetKind::TLoc.generate(100, 3);
        let dev = Device::rtx_2080_ti();
        let mut t = GpuTable::new(&dev, d.items.clone(), d.metric).expect("new");
        let id = t.insert(Item::vector(vec![9e3, 9e3])).expect("ins");
        let hits = t
            .range_query(&Item::vector(vec![9e3, 9e3]), 1.0)
            .expect("q");
        assert!(hits.iter().any(|n| n.id == id));
        t.remove(id).expect("rm");
        let hits = t
            .range_query(&Item::vector(vec![9e3, 9e3]), 1.0)
            .expect("q");
        assert!(!hits.iter().any(|n| n.id == id));
        // kNN must also mask removed ids.
        let knn = t.knn_query(&Item::vector(vec![9e3, 9e3]), 3).expect("knn");
        assert!(!knn.iter().any(|n| n.id == id));
    }

    #[test]
    fn aligned_layout_is_cycle_identical() {
        let d = DatasetKind::TLoc.generate(200, 5);
        let dev_l = Device::rtx_2080_ti();
        let dev_a = Device::rtx_2080_ti();
        let legacy = GpuTable::new(&dev_l, d.items.clone(), d.metric).expect("legacy");
        let aligned =
            GpuTable::with_layout(&dev_a, d.items.clone(), d.metric, ArenaLayout::Aligned)
                .expect("aligned");
        let queries: Vec<Item> = d.items[..16].to_vec();
        let radii = vec![1.5; 16];
        assert_eq!(
            legacy.batch_range(&queries, &radii).expect("l"),
            aligned.batch_range(&queries, &radii).expect("a"),
        );
        assert_eq!(
            legacy.batch_knn(&queries, 7).expect("l"),
            aligned.batch_knn(&queries, 7).expect("a"),
        );
        let (sl, sa) = (dev_l.stats(), dev_a.stats());
        assert_eq!(sl.cycles, sa.cycles, "layout is a pure wall-clock lever");
        assert_eq!(sl.work, sa.work);
        assert_eq!(sl.kernels, sa.kernels);
    }

    #[test]
    fn charges_all_pairs_work() {
        let d = DatasetKind::TLoc.generate(300, 3);
        let dev = Device::rtx_2080_ti();
        let t = GpuTable::new(&dev, d.items.clone(), d.metric).expect("new");
        dev.reset_clock();
        t.range_query(&d.items[0], 0.1).expect("q");
        // 300 L2 distances at ~14 work each: the whole table, no pruning.
        assert!(dev.stats().work >= 300 * 10, "work = {}", dev.stats().work);
    }
}
