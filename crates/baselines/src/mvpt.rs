//! MVPT — the multi-vantage-point tree of Bozkaya & Özsoyoglu \[9, 10\],
//! called out by the survey \[17\] (and by the GTS paper) as the most
//! efficient CPU-based in-memory metric index. GTS's own tree is modelled
//! on it, which makes it the most direct CPU/GPU comparison point.
//!
//! Each internal node holds one vantage point (pivot); children partition
//! the node's objects into `FANOUT` contiguous distance rings. Leaves cache
//! each object's distances to all ancestors' pivots, so leaf verification
//! filters with `|d(o, pᵢ) − d(q, pᵢ)| > r` before any real distance call —
//! the classic MVPT path-distance trick.

use crate::bst::insert_bounded;
use crate::clock::impl_cpu_clocked;
use gpu_sim::CpuClock;
use metric_space::index::{sort_neighbors, DynamicIndex, IndexError, Neighbor, SimilarityIndex};
use metric_space::lemmas::{prune_node_knn, prune_node_range};
use metric_space::{Item, ItemMetric, Metric};

const FANOUT: usize = 5;
const LEAF_CAP: usize = 32;

enum MvptNode {
    Internal {
        pivot: u32,
        /// Per-child distance ring `[min, max]` w.r.t. this node's pivot.
        rings: Vec<(f64, f64)>,
        children: Vec<u32>,
    },
    Leaf {
        objs: Vec<u32>,
        /// `path_d[i][a]` = distance from `objs[i]` to ancestor pivot `a`
        /// (root-first order).
        path_d: Vec<Box<[f64]>>,
    },
}

/// Multi-vantage-point tree over [`Item`]s.
pub struct Mvpt {
    items: Vec<Item>,
    metric: ItemMetric,
    live: Vec<bool>,
    nodes: Vec<MvptNode>,
    root: u32,
    build_seconds: f64,
    pub(crate) clock: CpuClock,
}

impl Mvpt {
    /// Build over a dataset.
    pub fn build(items: Vec<Item>, metric: ItemMetric) -> Self {
        let mut t = Mvpt {
            live: vec![true; items.len()],
            items,
            metric,
            nodes: Vec::new(),
            root: 0,
            build_seconds: 0.0,
            clock: CpuClock::default(),
        };
        let ids: Vec<u32> = (0..t.items.len() as u32).collect();
        t.root = t.build_node(ids, &mut Vec::new());
        t.build_seconds = t.clock.seconds();
        t
    }

    fn dist(&self, a: u32, b: &Item) -> f64 {
        let ai = &self.items[a as usize];
        self.clock.charge(self.metric.work(ai, b));
        self.metric.distance(ai, b)
    }

    fn build_node(&mut self, ids: Vec<u32>, ancestors: &mut Vec<u32>) -> u32 {
        if ids.len() <= LEAF_CAP {
            let path_d = ids
                .iter()
                .map(|&o| {
                    ancestors
                        .iter()
                        .map(|&p| self.dist(p, &self.items[o as usize]))
                        .collect::<Vec<f64>>()
                        .into_boxed_slice()
                })
                .collect();
            self.nodes.push(MvptNode::Leaf { objs: ids, path_d });
            return (self.nodes.len() - 1) as u32;
        }
        // Vantage point: farthest from the last ancestor (FFT step), or the
        // first object at the root.
        let pivot = match ancestors.last() {
            Some(&p) => {
                let mut best = ids[0];
                let mut best_d = -1.0;
                for &o in &ids {
                    let d = self.dist(p, &self.items[o as usize]);
                    if d > best_d {
                        best_d = d;
                        best = o;
                    }
                }
                best
            }
            None => ids[0],
        };
        let mut with_d: Vec<(f64, u32)> = ids
            .iter()
            .map(|&o| (self.dist(pivot, &self.items[o as usize]), o))
            .collect();
        with_d.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN").then(a.1.cmp(&b.1)));
        if with_d.first().map(|f| f.0) == with_d.last().map(|l| l.0) {
            // All equidistant from the pivot (e.g. all-identical data):
            // rings cannot separate anything; flat leaf instead.
            let objs: Vec<u32> = with_d.into_iter().map(|(_, o)| o).collect();
            return self.build_leaf_direct(objs, ancestors);
        }
        let chunk = with_d.len().div_ceil(FANOUT);
        let mut rings = Vec::with_capacity(FANOUT);
        let mut children = Vec::with_capacity(FANOUT);
        ancestors.push(pivot);
        for part in with_d.chunks(chunk) {
            let ring = (part[0].0, part.last().expect("non-empty").0);
            let child_ids: Vec<u32> = part.iter().map(|&(_, o)| o).collect();
            let child = self.build_node(child_ids, ancestors);
            rings.push(ring);
            children.push(child);
        }
        ancestors.pop();
        self.nodes.push(MvptNode::Internal {
            pivot,
            rings,
            children,
        });
        (self.nodes.len() - 1) as u32
    }

    fn build_leaf_direct(&mut self, objs: Vec<u32>, ancestors: &[u32]) -> u32 {
        let path_d = objs
            .iter()
            .map(|&o| {
                ancestors
                    .iter()
                    .map(|&p| self.dist(p, &self.items[o as usize]))
                    .collect::<Vec<f64>>()
                    .into_boxed_slice()
            })
            .collect();
        self.nodes.push(MvptNode::Leaf { objs, path_d });
        (self.nodes.len() - 1) as u32
    }

    /// Simulated seconds spent constructing the tree.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    fn range_rec(
        &self,
        node: u32,
        q: &Item,
        r: f64,
        qpath: &mut Vec<f64>,
        out: &mut Vec<Neighbor>,
    ) {
        match &self.nodes[node as usize] {
            MvptNode::Leaf { objs, path_d } => {
                'obj: for (i, &o) in objs.iter().enumerate() {
                    if !self.live[o as usize] {
                        continue;
                    }
                    for (a, &dop) in path_d[i].iter().enumerate() {
                        if a < qpath.len() && (dop - qpath[a]).abs() > r {
                            continue 'obj; // ancestor-pivot filter
                        }
                    }
                    let d = self.dist(o, q);
                    if d <= r {
                        out.push(Neighbor::new(o, d));
                    }
                }
            }
            MvptNode::Internal {
                pivot,
                rings,
                children,
            } => {
                let dq = self.dist(*pivot, q);
                qpath.push(dq);
                for (j, &(lo, hi)) in rings.iter().enumerate() {
                    if !prune_node_range(lo, hi, dq, r) {
                        self.range_rec(children[j], q, r, qpath, out);
                    }
                }
                qpath.pop();
            }
        }
    }

    fn knn_rec(
        &self,
        node: u32,
        q: &Item,
        k: usize,
        qpath: &mut Vec<f64>,
        heap: &mut Vec<Neighbor>,
    ) {
        let bound = |h: &Vec<Neighbor>| {
            if h.len() == k {
                h.last().map_or(f64::INFINITY, |n| n.dist)
            } else {
                f64::INFINITY
            }
        };
        match &self.nodes[node as usize] {
            MvptNode::Leaf { objs, path_d } => {
                'obj: for (i, &o) in objs.iter().enumerate() {
                    if !self.live[o as usize] {
                        continue;
                    }
                    let b = bound(heap);
                    for (a, &dop) in path_d[i].iter().enumerate() {
                        if a < qpath.len() && (dop - qpath[a]).abs() >= b {
                            continue 'obj;
                        }
                    }
                    let d = self.dist(o, q);
                    insert_bounded(heap, Neighbor::new(o, d), k);
                }
            }
            MvptNode::Internal {
                pivot,
                rings,
                children,
            } => {
                let dq = self.dist(*pivot, q);
                if self.live[*pivot as usize] {
                    insert_bounded(heap, Neighbor::new(*pivot, dq), k);
                }
                qpath.push(dq);
                // Visit rings nearest the query coordinate first.
                let mut order: Vec<usize> = (0..children.len()).collect();
                order.sort_by(|&a, &b| {
                    ring_gap(rings[a], dq)
                        .partial_cmp(&ring_gap(rings[b], dq))
                        .expect("NaN")
                });
                for j in order {
                    let (lo, hi) = rings[j];
                    if !prune_node_knn(lo, hi, dq, bound(heap)) {
                        self.knn_rec(children[j], q, k, qpath, heap);
                    }
                }
                qpath.pop();
            }
        }
    }
}

fn ring_gap((lo, hi): (f64, f64), dq: f64) -> f64 {
    if dq < lo {
        lo - dq
    } else if dq > hi {
        dq - hi
    } else {
        0.0
    }
}

impl SimilarityIndex<Item> for Mvpt {
    fn name(&self) -> &'static str {
        "MVPT"
    }

    fn len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn range_query(&self, q: &Item, r: f64) -> Result<Vec<Neighbor>, IndexError> {
        let mut out = Vec::new();
        self.range_rec(self.root, q, r, &mut Vec::new(), &mut out);
        sort_neighbors(&mut out);
        Ok(out)
    }

    fn knn_query(&self, q: &Item, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        let mut heap = Vec::new();
        if k > 0 {
            self.knn_rec(self.root, q, k, &mut Vec::new(), &mut heap);
        }
        Ok(heap)
    }

    fn memory_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for n in &self.nodes {
            bytes += match n {
                MvptNode::Internal { rings, .. } => 4 + rings.len() as u64 * 20,
                MvptNode::Leaf { objs, path_d } => {
                    4 * objs.len() as u64 + path_d.iter().map(|p| 8 * p.len() as u64).sum::<u64>()
                }
            };
        }
        bytes + self.live.len() as u64 / 8
    }
}

impl DynamicIndex<Item> for Mvpt {
    /// Streaming insert: descend into the ring containing the pivot
    /// distance (nearest ring if outside all), append to the leaf with its
    /// ancestor distances, widening rings on the way.
    fn insert(&mut self, obj: Item) -> Result<u32, IndexError> {
        let id = self.items.len() as u32;
        self.items.push(obj);
        self.live.push(true);
        let mut node = self.root;
        let mut qpath: Vec<f64> = Vec::new();
        loop {
            let step = match &self.nodes[node as usize] {
                MvptNode::Leaf { .. } => None,
                MvptNode::Internal {
                    pivot,
                    rings,
                    children,
                } => {
                    let d = self.dist(*pivot, &self.items[id as usize]);
                    let mut best = 0usize;
                    let mut best_gap = f64::INFINITY;
                    for (j, &ring) in rings.iter().enumerate() {
                        let g = ring_gap(ring, d);
                        if g < best_gap {
                            best_gap = g;
                            best = j;
                        }
                    }
                    Some((best, d, children[best]))
                }
            };
            match step {
                Some((j, d, next)) => {
                    if let MvptNode::Internal { rings, .. } = &mut self.nodes[node as usize] {
                        rings[j].0 = rings[j].0.min(d);
                        rings[j].1 = rings[j].1.max(d);
                    }
                    qpath.push(d);
                    node = next;
                }
                None => {
                    if let MvptNode::Leaf { objs, path_d } = &mut self.nodes[node as usize] {
                        objs.push(id);
                        path_d.push(qpath.clone().into_boxed_slice());
                    }
                    return Ok(id);
                }
            }
        }
    }

    /// Streaming delete: liveness tombstone.
    fn remove(&mut self, id: u32) -> Result<bool, IndexError> {
        match self.live.get_mut(id as usize) {
            Some(l) if *l => {
                *l = false;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

impl_cpu_clocked!(Mvpt);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use metric_space::DatasetKind;

    #[test]
    fn matches_linear_scan_all_kinds() {
        for kind in [DatasetKind::Words, DatasetKind::TLoc, DatasetKind::Color] {
            let d = kind.generate(250, 7);
            let t = Mvpt::build(d.items.clone(), d.metric);
            let scan = LinearScan::new(d.items.clone(), d.metric);
            let q = &d.items[13];
            let r = scan.knn_query(q, 8).expect("scan")[7].dist;
            assert_eq!(
                t.range_query(q, r).expect("mvpt"),
                scan.range_query(q, r).expect("scan"),
                "{kind:?}"
            );
            let da: Vec<f64> = t
                .knn_query(q, 8)
                .expect("t")
                .iter()
                .map(|n| n.dist)
                .collect();
            let db: Vec<f64> = scan
                .knn_query(q, 8)
                .expect("s")
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(da, db, "{kind:?}");
        }
    }

    #[test]
    fn prunes_more_than_scan() {
        let d = DatasetKind::TLoc.generate(2000, 7);
        let t = Mvpt::build(d.items.clone(), d.metric);
        let m = t.mark_distances();
        t.range_query(&d.items[0], 0.5).expect("q");
        let used = t.mark_distances() - m;
        assert!(
            used < 2000,
            "MVPT should verify a subset, used {used} distances"
        );
    }

    impl Mvpt {
        fn mark_distances(&self) -> u64 {
            self.clock.work()
        }
    }

    #[test]
    fn insert_and_remove() {
        let d = DatasetKind::TLoc.generate(300, 9);
        let mut t = Mvpt::build(d.items.clone(), d.metric);
        let id = t.insert(Item::vector(vec![1e4, 1e4])).expect("ins");
        let hits = t
            .range_query(&Item::vector(vec![1e4, 1e4]), 1.0)
            .expect("q");
        assert!(hits.iter().any(|n| n.id == id));
        assert!(t.remove(id).expect("rm"));
        let hits = t
            .range_query(&Item::vector(vec![1e4, 1e4]), 1.0)
            .expect("q");
        assert!(!hits.iter().any(|n| n.id == id));
    }

    #[test]
    fn identical_objects_build() {
        let items: Vec<Item> = (0..200).map(|_| Item::vector(vec![1.0, 2.0])).collect();
        let t = Mvpt::build(items, ItemMetric::L2);
        let hits = t
            .range_query(&Item::vector(vec![1.0, 2.0]), 0.0)
            .expect("q");
        assert_eq!(hits.len(), 200);
    }
}
