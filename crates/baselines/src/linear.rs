//! Linear scan: the trivial exact method, used as ground truth in tests and
//! as the conceptual floor for every comparison.

use crate::clock::impl_cpu_clocked;
use gpu_sim::CpuClock;
use metric_space::index::{sort_neighbors, IndexError, Neighbor, SimilarityIndex};
use metric_space::{Item, ItemMetric, Metric};

/// Exact CPU linear scan over the whole dataset.
pub struct LinearScan {
    items: Vec<Item>,
    metric: ItemMetric,
    pub(crate) clock: CpuClock,
}

impl LinearScan {
    /// Wrap a dataset (no construction work).
    pub fn new(items: Vec<Item>, metric: ItemMetric) -> Self {
        LinearScan {
            items,
            metric,
            clock: CpuClock::default(),
        }
    }

    fn dist(&self, a: &Item, b: &Item) -> f64 {
        self.clock.charge(self.metric.work(a, b));
        self.metric.distance(a, b)
    }
}

impl SimilarityIndex<Item> for LinearScan {
    fn name(&self) -> &'static str {
        "Scan"
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn range_query(&self, q: &Item, r: f64) -> Result<Vec<Neighbor>, IndexError> {
        let mut out: Vec<Neighbor> = self
            .items
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                let d = self.dist(q, o);
                (d <= r).then_some(Neighbor::new(i as u32, d))
            })
            .collect();
        sort_neighbors(&mut out);
        Ok(out)
    }

    fn knn_query(&self, q: &Item, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        let mut all: Vec<Neighbor> = self
            .items
            .iter()
            .enumerate()
            .map(|(i, o)| Neighbor::new(i as u32, self.dist(q, o)))
            .collect();
        sort_neighbors(&mut all);
        all.truncate(k);
        Ok(all)
    }

    fn memory_bytes(&self) -> u64 {
        0 // no index structure
    }
}

impl_cpu_clocked!(LinearScan);

#[cfg(test)]
mod tests {
    use super::*;
    use metric_space::DatasetKind;

    #[test]
    fn range_and_knn_consistent() {
        let d = DatasetKind::Words.generate(100, 3);
        let scan = LinearScan::new(d.items.clone(), d.metric);
        let q = &d.items[5];
        let knn = scan.knn_query(q, 5).expect("knn");
        assert_eq!(knn.len(), 5);
        assert_eq!(knn[0].id, 5, "self is nearest");
        let r = knn.last().expect("k-th").dist;
        let range = scan.range_query(q, r).expect("range");
        assert!(range.len() >= 5, "range at k-th distance covers the kNN");
        assert!(range.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn clock_advances() {
        use crate::clock::Clocked;
        let d = DatasetKind::TLoc.generate(50, 3);
        let scan = LinearScan::new(d.items.clone(), d.metric);
        let m = scan.mark();
        scan.knn_query(&d.items[0], 3).expect("knn");
        assert!(scan.elapsed_since(m) > 0.0);
    }
}
