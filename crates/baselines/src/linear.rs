//! Linear scan: the trivial exact method, used as ground truth in tests and
//! as the conceptual floor for every comparison.
//!
//! The scan is **batched**: every query resolves all object payloads through
//! the flat [`ObjectArena`] in one [`BatchMetric::distance_batch`] call
//! (optionally with the SIMD-aligned block layout), instead of touching the
//! boxed objects pair by pair. Work charged to the CPU clock is the batch's
//! reported total — bit-identical to the per-pair sum, since the batch
//! kernels account per pair with the same work model.

use crate::clock::impl_cpu_clocked;
use gpu_sim::CpuClock;
use metric_space::index::{sort_neighbors, IndexError, Neighbor, SimilarityIndex};
use metric_space::{ArenaLayout, BatchMetric, Item, ItemMetric, ObjectArena};

/// Exact CPU linear scan over the whole dataset.
pub struct LinearScan {
    items: Vec<Item>,
    metric: ItemMetric,
    arena: Option<ObjectArena>,
    ids: Vec<u32>,
    pub(crate) clock: CpuClock,
}

impl LinearScan {
    /// Wrap a dataset (no construction work); packed legacy arena layout.
    pub fn new(items: Vec<Item>, metric: ItemMetric) -> Self {
        Self::with_layout(items, metric, ArenaLayout::Legacy)
    }

    /// Wrap a dataset with an explicit arena layout. Metrics without a
    /// block kernel degrade `Aligned` to `Legacy`; heterogeneous datasets
    /// get no arena and scan through the per-pair fallback.
    pub fn with_layout(items: Vec<Item>, metric: ItemMetric, layout: ArenaLayout) -> Self {
        let arena = metric.build_arena_with(&items, layout);
        let ids = (0..items.len() as u32).collect();
        LinearScan {
            items,
            metric,
            arena,
            ids,
            clock: CpuClock::default(),
        }
    }

    /// One batched pass: distances from `q` to every object, in id order.
    fn scan(&self, q: &Item) -> Vec<f64> {
        let mut out = vec![0.0; self.items.len()];
        let (total, _span) =
            self.metric
                .distance_batch(&self.items, self.arena.as_ref(), q, &self.ids, &mut out);
        self.clock.charge(total);
        out
    }
}

impl SimilarityIndex<Item> for LinearScan {
    fn name(&self) -> &'static str {
        "Scan"
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn range_query(&self, q: &Item, r: f64) -> Result<Vec<Neighbor>, IndexError> {
        let mut out: Vec<Neighbor> = self
            .scan(q)
            .into_iter()
            .enumerate()
            .filter_map(|(i, d)| (d <= r).then_some(Neighbor::new(i as u32, d)))
            .collect();
        sort_neighbors(&mut out);
        Ok(out)
    }

    fn knn_query(&self, q: &Item, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        let mut all: Vec<Neighbor> = self
            .scan(q)
            .into_iter()
            .enumerate()
            .map(|(i, d)| Neighbor::new(i as u32, d))
            .collect();
        sort_neighbors(&mut all);
        all.truncate(k);
        Ok(all)
    }

    fn memory_bytes(&self) -> u64 {
        0 // no index structure
    }
}

impl_cpu_clocked!(LinearScan);

#[cfg(test)]
mod tests {
    use super::*;
    use metric_space::DatasetKind;

    #[test]
    fn range_and_knn_consistent() {
        let d = DatasetKind::Words.generate(100, 3);
        let scan = LinearScan::new(d.items.clone(), d.metric);
        let q = &d.items[5];
        let knn = scan.knn_query(q, 5).expect("knn");
        assert_eq!(knn.len(), 5);
        assert_eq!(knn[0].id, 5, "self is nearest");
        let r = knn.last().expect("k-th").dist;
        let range = scan.range_query(q, r).expect("range");
        assert!(range.len() >= 5, "range at k-th distance covers the kNN");
        assert!(range.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn clock_advances() {
        use crate::clock::Clocked;
        let d = DatasetKind::TLoc.generate(50, 3);
        let scan = LinearScan::new(d.items.clone(), d.metric);
        let m = scan.mark();
        scan.knn_query(&d.items[0], 3).expect("knn");
        assert!(scan.elapsed_since(m) > 0.0);
    }

    #[test]
    fn aligned_layout_matches_legacy_bitwise() {
        use crate::clock::Clocked;
        // T-Loc is 2-d L2: the aligned layout has a block kernel, so both
        // layouts must return identical bits and charge identical work.
        let d = DatasetKind::TLoc.generate(120, 9);
        let legacy = LinearScan::new(d.items.clone(), d.metric);
        let aligned = LinearScan::with_layout(d.items.clone(), d.metric, ArenaLayout::Aligned);
        let (m_l, m_a) = (legacy.mark(), aligned.mark());
        for q in d.items.iter().take(8) {
            let a = legacy.range_query(q, 900.0).expect("legacy");
            let b = aligned.range_query(q, 900.0).expect("aligned");
            assert_eq!(a, b);
            let ka = legacy.knn_query(q, 7).expect("legacy");
            let kb = aligned.knn_query(q, 7).expect("aligned");
            assert_eq!(ka, kb);
        }
        assert_eq!(
            legacy.clock.work() - m_l,
            aligned.clock.work() - m_a,
            "layouts charge identical work"
        );
    }
}
