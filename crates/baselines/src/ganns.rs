//! GANNS — the GPU-accelerated proximity-graph ANN method of Yu et al.
//! \[58\]: a navigable kNN graph built on the device, searched by greedy beam
//! expansion.
//!
//! Special-purpose per the paper's Remark: **vector data only** (T-Loc,
//! Vector, Color), **kNN only** (no range queries), and **approximate**
//! (`is_exact() == false`; the harness reports recall instead). The graph's
//! adjacency lists plus the per-insertion parallel work pools make its
//! footprint an order of magnitude above GTS (Table 4: 244 MB vs 4 MB on
//! Color) and blow device memory on T-Loc-scale data — the Table 4 `/`.

use crate::clock::impl_gpu_clocked;
use gpu_sim::{Device, GpuError, Reservation};
use metric_space::index::{DynamicIndex, IndexError, Neighbor, SimilarityIndex};
use metric_space::{Footprint, Item, ItemMetric, Metric};
use std::collections::HashSet;
use std::sync::Arc;

/// Graph degree bound `M` (neighbours kept per node).
const DEGREE: usize = 16;
/// Construction beam width.
const EF_CONSTRUCTION: usize = 64;
/// Per-insertion parallel workspace entries (candidate pools, visited maps)
/// — GANNS processes insertions in large parallel waves, so this workspace
/// exists for every object at once during construction.
const WORKSPACE_PER_NODE: u64 = 64 * 16;

/// GPU proximity-graph ANN index.
pub struct Ganns {
    pub(crate) dev: Arc<Device>,
    items: Vec<Item>,
    metric: ItemMetric,
    live: Vec<bool>,
    adj: Vec<Vec<u32>>,
    entry: u32,
    build_seconds: f64,
    _resident: Reservation,
    _graph_mem: Option<Reservation>,
}

fn gpu_err(e: GpuError) -> IndexError {
    match e {
        GpuError::OutOfMemory {
            requested,
            available,
            context,
        } => IndexError::OutOfMemory {
            requested,
            available,
            context,
        },
        GpuError::DeviceUnavailable { .. } => {
            IndexError::Unsupported("device quarantined by a permanent fault")
        }
    }
}

impl Ganns {
    /// Build the proximity graph; `Unsupported` for non-vector data, OOM
    /// when the graph + construction workspace exceed device memory.
    pub fn build(
        dev: &Arc<Device>,
        items: Vec<Item>,
        metric: ItemMetric,
    ) -> Result<Self, IndexError> {
        if !metric.is_vector() {
            return Err(IndexError::Unsupported("GANNS supports vector data only"));
        }
        if items.is_empty() {
            return Err(IndexError::EmptyIndex);
        }
        let bytes: u64 = items.iter().map(Footprint::size_bytes).sum();
        let resident = dev
            .reserve(bytes, "GANNS resident objects")
            .map_err(gpu_err)?;
        dev.h2d_transfer(bytes);
        let start = dev.cycles();
        let mut g = Ganns {
            dev: Arc::clone(dev),
            live: vec![true; items.len()],
            items,
            metric,
            adj: Vec::new(),
            entry: 0,
            build_seconds: 0.0,
            _resident: resident,
            _graph_mem: None,
        };
        g.rebuild_graph()?;
        g.build_seconds = g.dev.seconds_since(start);
        Ok(g)
    }

    fn rebuild_graph(&mut self) -> Result<(), IndexError> {
        self._graph_mem = None;
        let n = self.items.len();
        // Construction workspace (candidate pools for the parallel insertion
        // waves) + adjacency. Reserved up front: this is the T-Loc OOM.
        let graph_bytes = (n * DEGREE * 4) as u64;
        let workspace = self
            .dev
            .reserve(
                n as u64 * WORKSPACE_PER_NODE,
                "GANNS construction workspace",
            )
            .map_err(gpu_err)?;
        let graph_mem = self
            .dev
            .reserve(graph_bytes, "GANNS adjacency lists")
            .map_err(gpu_err)?;

        self.adj = vec![Vec::new(); n];
        self.entry = (0..n as u32)
            .find(|&i| self.live[i as usize])
            .ok_or(IndexError::EmptyIndex)?;
        let mut inserted: Vec<u32> = vec![self.entry];
        for i in 0..n as u32 {
            if i == self.entry || !self.live[i as usize] {
                continue;
            }
            let (found, work, span) =
                self.beam_search_graph(&self.items[i as usize].clone(), EF_CONSTRUCTION, &inserted);
            self.dev.charge_kernel(work, span);
            let neighbours: Vec<u32> = found.iter().take(DEGREE).map(|nb| nb.id).collect();
            for &nb in &neighbours {
                self.adj[nb as usize].push(i);
                if self.adj[nb as usize].len() > DEGREE {
                    self.truncate_neighbours(nb);
                }
            }
            self.adj[i as usize] = neighbours;
            inserted.push(i);
        }
        drop(workspace); // construction pools released; adjacency stays
        self._graph_mem = Some(graph_mem);
        Ok(())
    }

    /// Keep a node's `DEGREE` nearest neighbours (charged).
    fn truncate_neighbours(&mut self, node: u32) {
        let base = self.items[node as usize].clone();
        let mut work = 0u64;
        let mut scored: Vec<(f64, u32)> = self.adj[node as usize]
            .iter()
            .map(|&nb| {
                let o = &self.items[nb as usize];
                work += self.metric.work(&base, o);
                (self.metric.distance(&base, o), nb)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN").then(a.1.cmp(&b.1)));
        scored.truncate(DEGREE);
        self.adj[node as usize] = scored.into_iter().map(|(_, nb)| nb).collect();
        self.dev.charge_kernel(work, 64);
    }

    /// Greedy beam search over the graph restricted to `universe` (during
    /// construction) or the full graph (`universe` empty ⇒ all inserted).
    /// Returns candidates ascending by distance plus (work, span).
    fn beam_search_graph(
        &self,
        q: &Item,
        ef: usize,
        universe: &[u32],
    ) -> (Vec<Neighbor>, u64, u64) {
        let start = if universe.is_empty() {
            self.entry
        } else {
            universe[0]
        };
        let mut work = 0u64;
        let mut hops = 0u64;
        let dist = |work: &mut u64, id: u32| {
            let o = &self.items[id as usize];
            *work += self.metric.work(q, o);
            self.metric.distance(q, o)
        };
        let mut visited: HashSet<u32> = HashSet::new();
        visited.insert(start);
        let d0 = dist(&mut work, start);
        // `pool`: ascending candidates; `frontier`: ids still to expand.
        let mut pool: Vec<Neighbor> = vec![Neighbor::new(start, d0)];
        let mut frontier: Vec<Neighbor> = vec![Neighbor::new(start, d0)];
        while let Some(cur) = frontier.pop() {
            hops += 1;
            let worst = pool
                .get(ef.saturating_sub(1))
                .map_or(f64::INFINITY, |n| n.dist);
            if cur.dist > worst {
                break;
            }
            for &nb in &self.adj[cur.id as usize] {
                if !visited.insert(nb) {
                    continue;
                }
                let d = dist(&mut work, nb);
                let worst = pool
                    .get(ef.saturating_sub(1))
                    .map_or(f64::INFINITY, |n| n.dist);
                if d < worst || pool.len() < ef {
                    let n = Neighbor::new(nb, d);
                    let pos = pool.partition_point(|x| (x.dist, x.id) < (d, nb));
                    pool.insert(pos, n);
                    pool.truncate(ef);
                    // Frontier kept sorted descending so pop() yields the
                    // closest unexpanded candidate.
                    let fpos = frontier.partition_point(|x| (x.dist, x.id) > (d, nb));
                    frontier.insert(fpos, n);
                }
            }
        }
        // Span: the greedy walk is sequential hop-to-hop; each hop's
        // neighbour distances evaluate in parallel on the block.
        let span = hops * (work / hops.max(1) / (DEGREE as u64)).max(1);
        (pool, work, span)
    }

    /// Simulated construction time.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// Recall of this index against exact answers (harness helper).
    pub fn recall(expected: &[Neighbor], got: &[Neighbor]) -> f64 {
        if expected.is_empty() {
            return 1.0;
        }
        let want: HashSet<u32> = expected.iter().map(|n| n.id).collect();
        let hit = got.iter().filter(|n| want.contains(&n.id)).count();
        hit as f64 / expected.len() as f64
    }
}

impl SimilarityIndex<Item> for Ganns {
    fn name(&self) -> &'static str {
        "GANNS"
    }

    fn len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn range_query(&self, _q: &Item, _r: f64) -> Result<Vec<Neighbor>, IndexError> {
        Err(IndexError::Unsupported(
            "GANNS answers kNN queries only (no exact range support)",
        ))
    }

    fn knn_query(&self, q: &Item, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        self.dev.h2d_transfer(q.size_bytes());
        let ef = (4 * k).max(32);
        let (mut pool, work, span) = self.beam_search_graph(q, ef, &[]);
        self.dev.charge_kernel(work, span);
        pool.retain(|n| self.live[n.id as usize]);
        pool.truncate(k);
        self.dev.d2h_transfer((pool.len() * 16) as u64);
        Ok(pool)
    }

    fn memory_bytes(&self) -> u64 {
        (self.adj.iter().map(Vec::len).sum::<usize>() * 4 + self.adj.len() * 8) as u64
    }

    fn is_exact(&self) -> bool {
        false
    }
}

impl DynamicIndex<Item> for Ganns {
    /// Updates rebuild the graph from scratch (per the paper's Fig. 5
    /// discussion of GANNS).
    fn insert(&mut self, obj: Item) -> Result<u32, IndexError> {
        let id = self.items.len() as u32;
        self.dev.h2d_transfer(obj.size_bytes());
        self.items.push(obj);
        self.live.push(true);
        self.rebuild_graph()?;
        Ok(id)
    }

    fn remove(&mut self, id: u32) -> Result<bool, IndexError> {
        match self.live.get_mut(id as usize) {
            Some(l) if *l => {
                *l = false;
                self.rebuild_graph()?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Bulk path: apply all changes, rebuild the graph once.
    fn batch_update(&mut self, insertions: Vec<Item>, deletions: &[u32]) -> Result<(), IndexError> {
        for &d in deletions {
            if let Some(l) = self.live.get_mut(d as usize) {
                *l = false;
            }
        }
        for obj in insertions {
            self.dev.h2d_transfer(obj.size_bytes());
            self.items.push(obj);
            self.live.push(true);
        }
        self.rebuild_graph()
    }
}

impl_gpu_clocked!(Ganns);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use metric_space::DatasetKind;

    #[test]
    fn high_recall_on_clustered_vectors() {
        let d = DatasetKind::Vector.generate(400, 23);
        let dev = Device::rtx_2080_ti();
        let g = Ganns::build(&dev, d.items.clone(), d.metric).expect("build");
        let scan = LinearScan::new(d.items.clone(), d.metric);
        let mut total = 0.0;
        let probes = 20;
        for i in 0..probes {
            let q = &d.items[i * 17];
            let exact = scan.knn_query(q, 10).expect("scan");
            let approx = g.knn_query(q, 10).expect("ganns");
            total += Ganns::recall(&exact, &approx);
        }
        let recall = total / f64::from(probes as u32);
        assert!(recall > 0.8, "recall = {recall}");
        assert!(!g.is_exact());
    }

    #[test]
    fn rejects_text_and_range() {
        let d = DatasetKind::Words.generate(50, 23);
        let dev = Device::rtx_2080_ti();
        assert!(matches!(
            Ganns::build(&dev, d.items, d.metric),
            Err(IndexError::Unsupported(_))
        ));
        let v = DatasetKind::Vector.generate(60, 23);
        let g = Ganns::build(&dev, v.items.clone(), v.metric).expect("build");
        assert!(matches!(
            g.range_query(&v.items[0], 1.0),
            Err(IndexError::Unsupported(_))
        ));
    }

    #[test]
    fn construction_oom_on_large_data() {
        let d = DatasetKind::TLoc.generate(5000, 23);
        let dev = gpu_sim::Device::new(gpu_sim::DeviceConfig {
            global_mem_bytes: 2 << 20, // 2 MiB: workspace cannot fit
            ..gpu_sim::DeviceConfig::rtx_2080_ti()
        });
        assert!(matches!(
            Ganns::build(&dev, d.items, d.metric),
            Err(IndexError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn update_rebuilds() {
        let d = DatasetKind::Vector.generate(150, 23);
        let dev = Device::rtx_2080_ti();
        let mut g = Ganns::build(&dev, d.items.clone(), d.metric).expect("build");
        let probe = d.items[3].clone();
        let id = g.insert(probe.clone()).expect("ins");
        let knn = g.knn_query(&probe, 3).expect("q");
        assert!(
            knn.iter().any(|n| n.id == id || n.id == 3),
            "near-duplicate found"
        );
        assert!(g.remove(id).expect("rm"));
        let knn = g.knn_query(&probe, 3).expect("q");
        assert!(!knn.iter().any(|n| n.id == id));
    }
}
