//! Uniform simulated-time access across CPU- and GPU-backed indexes.

/// An index whose operations advance a simulated clock.
///
/// `mark()` returns an opaque checkpoint; `elapsed(mark)` the simulated
/// seconds since. GPU methods report device cycles / clock rate, CPU methods
/// report work units / effective throughput.
pub trait Clocked {
    /// Opaque clock checkpoint.
    fn mark(&self) -> u64;
    /// Simulated seconds elapsed since `mark`.
    fn elapsed_since(&self, mark: u64) -> f64;
}

/// Helper macro: implement [`Clocked`] over a `CpuClock` field.
macro_rules! impl_cpu_clocked {
    ($ty:ty) => {
        impl crate::clock::Clocked for $ty {
            fn mark(&self) -> u64 {
                self.clock.work()
            }
            fn elapsed_since(&self, mark: u64) -> f64 {
                self.clock.seconds_since(mark)
            }
        }
    };
}

/// Helper macro: implement [`Clocked`] over an `Arc<Device>` field.
macro_rules! impl_gpu_clocked {
    ($ty:ty) => {
        impl crate::clock::Clocked for $ty {
            fn mark(&self) -> u64 {
                self.dev.cycles()
            }
            fn elapsed_since(&self, mark: u64) -> f64 {
                self.dev.seconds_since(mark)
            }
        }
    };
}

pub(crate) use impl_cpu_clocked;
pub(crate) use impl_gpu_clocked;
