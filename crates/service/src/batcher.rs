//! Admission queue + microbatcher: the coalescing half of the service.
//!
//! Requests enter through a [`SubmitHandle`] into a **bounded FIFO
//! admission queue** — past [`ServiceConfig::queue_depth`] entries,
//! submission rejects with [`ServiceError::QueueFull`] (reject-with-error
//! backpressure, never blocking the caller). The **microbatcher** thread
//! drains the queue into batches on two triggers:
//!
//! * **size** — the queue holds at least the *batch target*: the number of
//!   queries the §5.3 cost model expects the whole device pool to descend
//!   in one pass without query grouping
//!   ([`ShardedGts::max_batch_queries`](gts_core::ShardedGts::max_batch_queries),
//!   evaluated against the pool-wide free-memory minimum — the global
//!   two-stage budget), clamped by [`ServiceConfig::max_batch`];
//! * **deadline** — the oldest queued request has waited
//!   [`ServiceConfig::flush_deadline`], so a partially-filled batch ships
//!   rather than stalling a quiet period (the latency/throughput knob of
//!   open-loop serving).
//!
//! Flushed batches are dealt **round-robin** across the service's executor
//! lanes (batch *i* goes to lane *i* mod *L* — deterministic for a given
//! arrival sequence), each lane fed by its own **bounded** pipeline channel
//! (`EXECUTOR_PIPELINE_BATCHES`). Within a lane, batches execute strictly
//! in flush order, so batch formation under the size trigger — and every
//! simulated cycle a batch charges — is reproducible for a given arrival
//! sequence; with one lane the service degenerates to the original single
//! executor. Slow lanes back pressure up into the admission queue instead
//! of buffering batches without bound.

use crate::api::{FlushTrigger, Request, Response, ServiceError, Ticket};
use crate::metrics::{MetricsHub, DEFAULT_CLIENT};
use gts_trace::RequestId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the service derives its batch-size trigger.
#[derive(Clone, Copy, Debug)]
pub enum BatchSizing {
    /// A fixed batch target (operator override; also how the benches pin
    /// the degenerate one-request-per-batch baseline).
    Fixed(usize),
    /// Derive the target from the §5.3 cost model fitted by seeded
    /// sampling, sized against the pool-wide free-memory minimum — the
    /// global two-stage memory budget shared by all shards.
    CostModel {
        /// Representative query radius the survivor estimate is evaluated
        /// at (a workload hint, not a correctness bound).
        radius_hint: f64,
        /// Distance samples used to fit σ and the mean distance work.
        samples: usize,
        /// RNG seed for the sampling — the service's tie-breaking seed:
        /// the same seed always derives the same batch target, which is
        /// what makes size-triggered batch formation reproducible.
        seed: u64,
    },
}

/// Configuration of the online query service.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Admission-queue bound: submissions beyond this many queued requests
    /// are rejected with [`ServiceError::QueueFull`].
    pub queue_depth: usize,
    /// Flush a partially-filled batch once its oldest request has waited
    /// this long.
    pub flush_deadline: Duration,
    /// Batch-size trigger derivation.
    pub sizing: BatchSizing,
    /// Hard cap on the batch target regardless of what the cost model
    /// recommends (bounds per-batch latency and host staging memory).
    pub max_batch: usize,
    /// Executor lanes to run. Each lane drains its own bounded pipeline
    /// channel and prefers a disjoint set of replicas, so lanes execute
    /// concurrently without sharing devices. Clamped at startup to the
    /// number of replicas in the served index (extra lanes would race on
    /// the same devices and destroy clock determinism).
    pub lanes: usize,
    /// Tracing configuration. Disabled by default; when enabled the
    /// service creates a [`gts_trace::TraceRecorder`], attaches it to every
    /// device, and threads per-request span context from admission to
    /// kernel launch. Tracing observes the simulated clocks and never
    /// advances them, so answers, epochs, and cycle counts are bit-identical
    /// with it on or off.
    pub trace: gts_trace::TraceConfig,
    /// Metrics recording. Disabled by default; when enabled the service
    /// owns a [`crate::MetricsHub`] — per-client request
    /// accounting, flush/batch counters, device-utilization gauges, the
    /// cost-model audit — scrapeable via
    /// [`QueryService::scrape`](crate::QueryService::scrape). The same
    /// observability contract as tracing holds: metrics on or off,
    /// answers, epochs, and simulated cycle counts are bit-identical.
    pub metrics: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: 4096,
            flush_deadline: Duration::from_millis(2),
            sizing: BatchSizing::CostModel {
                radius_hint: 2.0,
                samples: 256,
                seed: 0x67_74_73,
            },
            max_batch: 4096,
            lanes: 1,
            trace: gts_trace::TraceConfig::default(),
            metrics: false,
        }
    }
}

impl ServiceConfig {
    /// Builder-style queue-depth override.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "queue depth must admit at least one request");
        self.queue_depth = depth;
        self
    }

    /// Builder-style flush-deadline override.
    pub fn with_flush_deadline(mut self, deadline: Duration) -> Self {
        self.flush_deadline = deadline;
        self
    }

    /// Builder-style sizing override.
    pub fn with_sizing(mut self, sizing: BatchSizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Builder-style batch cap override.
    pub fn with_max_batch(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "a batch holds at least one request");
        self.max_batch = cap;
        self
    }

    /// Builder-style executor-lane override.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "the service needs at least one executor lane");
        self.lanes = lanes;
        self
    }

    /// Builder-style tracing override (see [`ServiceConfig::trace`]).
    pub fn with_tracing(mut self, trace: gts_trace::TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Builder-style metrics switch (see [`ServiceConfig::metrics`]).
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }
}

/// One queued request: the payload, its response channel, and its
/// admission timestamp (for the queue-wait measurement and the deadline
/// trigger).
pub(crate) struct Pending<O> {
    pub(crate) req: Request<O>,
    pub(crate) tx: mpsc::SyncSender<Response>,
    pub(crate) enqueued: Instant,
    /// Service-assigned request id, minted under the admission lock so ids
    /// follow admission order (the trace/latency correlation key).
    pub(crate) id: RequestId,
    /// Client id the request was submitted under (the per-client metrics
    /// tag; [`DEFAULT_CLIENT`] unless [`SubmitHandle::submit_as`] named
    /// one).
    pub(crate) client: Arc<str>,
}

/// What a flushed batch holds: queries or updates, never both. The drain
/// stops at the first entry whose kind differs from the batch head — the
/// **read/write ordering barrier** that keeps the service linearizable:
/// every query admitted before an update executes before it, every query
/// admitted after executes after.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BatchKind {
    /// Range/kNN requests — dealt round-robin to one lane.
    Query,
    /// Insert/remove/batch-update requests — broadcast to **every** lane,
    /// so each lane's replicas apply the same serialized order.
    Update,
}

/// One flushed-batch entry as the executor sees it: the request, its
/// response channel, its stamped queue wait (µs), its service-assigned
/// id, and the client id it was submitted under.
pub(crate) type Entry<O> = (
    Request<O>,
    mpsc::SyncSender<Response>,
    u64,
    RequestId,
    Arc<str>,
);

/// One flushed batch: FIFO-ordered entries with their queue waits stamped
/// at flush time, plus the trigger that shipped it.
pub(crate) struct Batch<O> {
    pub(crate) entries: Vec<Entry<O>>,
    pub(crate) trigger: FlushTrigger,
    pub(crate) kind: BatchKind,
    /// Flush sequence number, assigned by the batcher in flush order — the
    /// batch id trace events carry. Broadcast copies of an update batch
    /// share the seq of the flushed batch they duplicate.
    pub(crate) seq: u64,
    /// Whether this lane answers the tickets. Update batches are broadcast
    /// to every lane but each ticket must receive exactly one response:
    /// only the lane-0 copy responds, the other lanes apply silently.
    pub(crate) respond: bool,
}

/// Queue state guarded by the admission mutex.
struct QueueState<O> {
    queue: VecDeque<Pending<O>>,
    stopped: bool,
}

/// State shared between submit handles and the microbatcher thread.
pub(crate) struct Shared<O> {
    state: Mutex<QueueState<O>>,
    cv: Condvar,
    depth: usize,
    pub(crate) target: usize,
    deadline: Duration,
    pub(crate) admitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    /// Next request id to mint (see [`Pending::id`]).
    pub(crate) next_request: AtomicU64,
    /// The service's metrics hub, when [`ServiceConfig::metrics`] enabled
    /// one — the submit path records per-client admission counters here.
    pub(crate) metrics: Option<Arc<MetricsHub>>,
}

impl<O> Shared<O> {
    pub(crate) fn new(
        depth: usize,
        target: usize,
        deadline: Duration,
        metrics: Option<Arc<MetricsHub>>,
    ) -> Arc<Shared<O>> {
        Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                stopped: false,
            }),
            cv: Condvar::new(),
            depth,
            target,
            deadline,
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            next_request: AtomicU64::new(0),
            metrics,
        })
    }

    /// Flip the stopped flag and wake the batcher so it drains and exits.
    pub(crate) fn stop(&self) {
        self.state.lock().expect("admission lock").stopped = true;
        self.cv.notify_all();
    }
}

/// Cloneable submission endpoint of a running
/// [`QueryService`](crate::QueryService).
pub struct SubmitHandle<O> {
    pub(crate) shared: Arc<Shared<O>>,
}

impl<O> Clone for SubmitHandle<O> {
    fn clone(&self) -> Self {
        SubmitHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<O> SubmitHandle<O> {
    /// Submit one request under the default client id. Returns a
    /// [`Ticket`] redeemable for the response, or an immediate rejection
    /// when the admission queue is at depth ([`ServiceError::QueueFull`] —
    /// the backpressure contract: submission never blocks) or the service
    /// is stopping.
    pub fn submit(&self, req: Request<O>) -> Result<Ticket, ServiceError> {
        self.submit_as(DEFAULT_CLIENT, req)
    }

    /// [`SubmitHandle::submit`] under an explicit client id: with metrics
    /// enabled, this request's admission, rejection, queue wait, and
    /// response are accounted to `client`'s labelled series. The client id
    /// changes accounting only — never batching, ordering, or answers.
    pub fn submit_as(&self, client: &str, req: Request<O>) -> Result<Ticket, ServiceError> {
        let (tx, rx) = mpsc::sync_channel(1);
        let mut st = self.shared.state.lock().expect("admission lock");
        if st.stopped {
            return Err(ServiceError::Stopped);
        }
        if st.queue.len() >= self.shared.depth {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            drop(st);
            if let Some(hub) = &self.shared.metrics {
                hub.client_rejected(client);
            }
            return Err(ServiceError::QueueFull {
                depth: self.shared.depth,
            });
        }
        // Minted under the admission lock: ids follow admission order, so a
        // deterministic arrival sequence gets deterministic ids (rejected
        // submissions consume none).
        let id = RequestId(self.shared.next_request.fetch_add(1, Ordering::Relaxed));
        st.queue.push_back(Pending {
            req,
            tx,
            enqueued: Instant::now(),
            id,
            client: Arc::from(client),
        });
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(hub) = &self.shared.metrics {
            hub.client_admitted(client);
        }
        let len = st.queue.len();
        drop(st);
        // Wake the batcher only when this admission changes what it would
        // do: the empty→non-empty transition (it sits in an untimed wait)
        // or reaching the size target (an immediate flush is due). Arrivals
        // in between are covered by its deadline-timed wait, so notifying
        // per request would only add lock contention on the hot path.
        if len == 1 || len >= self.shared.target {
            self.shared.cv.notify_all();
        }
        Ok(Ticket { rx })
    }

    /// Current queue occupancy (instantaneous; for load shedding and the
    /// open-loop bench driver).
    pub fn queue_len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("admission lock")
            .queue
            .len()
    }
}

/// Drain up to `limit` FIFO entries into a [`Batch`], stamping each
/// request's queue wait against one shared flush instant (a single clock
/// read per flush — this runs inside the admission critical section).
///
/// The head entry decides the batch's [`BatchKind`], and the drain stops
/// early at the first entry of the other kind: a kind flip always flushes,
/// so reads and writes never share a batch and FIFO admission order *is*
/// the serialization order.
fn drain<O>(queue: &mut VecDeque<Pending<O>>, limit: usize, trigger: FlushTrigger) -> Batch<O> {
    let head_is_update = queue.front().is_some_and(|p| p.req.is_update());
    let kind = if head_is_update {
        BatchKind::Update
    } else {
        BatchKind::Query
    };
    let mut take = queue.len().min(limit);
    if let Some(flip) = queue
        .iter()
        .take(take)
        .position(|p| p.req.is_update() != head_is_update)
    {
        take = flip;
    }
    let now = Instant::now();
    let entries = queue
        .drain(..take)
        .map(|p| {
            let wait = now.saturating_duration_since(p.enqueued);
            let wait_us = wait.as_micros().min(u128::from(u64::MAX)) as u64;
            (p.req, p.tx, wait_us, p.id, p.client)
        })
        .collect();
    Batch {
        entries,
        trigger,
        kind,
        seq: 0, // assigned by the batcher loop in flush order
        respond: true,
    }
}

/// Capacity of the batcher→executor pipeline, in batches: one executing
/// plus one staged. The channel being **bounded** is what ties the whole
/// backpressure story together — if it were unbounded, a slow executor
/// would let the batcher drain the admission queue forever and
/// [`ServiceError::QueueFull`] would never fire (flushed batches would
/// pile up in host memory instead). With a bounded channel the batcher
/// blocks on a full pipeline, arrivals back the admission queue up to its
/// depth, and submission starts rejecting exactly as documented.
pub(crate) const EXECUTOR_PIPELINE_BATCHES: usize = 2;

/// Tear the queue down after an executor lane has vanished mid-run (its
/// end of the pipeline channel dropped, e.g. a lane panic): refuse new
/// work and **disconnect every queued ticket** by dropping the pending
/// entries — and with them their response senders — so waiting clients
/// get [`ServiceError::Disconnected`] instead of blocking forever on a
/// service that can no longer answer anything.
fn poison<O>(shared: &Shared<O>) {
    let mut st = shared.state.lock().expect("admission lock");
    st.stopped = true;
    st.queue.clear();
}

/// The microbatcher loop: runs on its own thread until stopped, dealing
/// flushed **query** batches round-robin across the executor lanes'
/// bounded pipeline channels (query batch *i* → lane *i* mod *L*,
/// deterministic) and **broadcasting update batches to every lane** —
/// lanes pin disjoint replica sets, so each lane must apply every update
/// to keep its replicas current; only the lane-0 copy answers the
/// tickets. Per-lane channels are FIFO, so a lane sees
/// `[earlier queries][update][later queries]` exactly in admission order.
/// Every `send` happens **outside** the admission lock, so a full
/// pipeline stalls only this thread — [`SubmitHandle::submit`] stays
/// non-blocking throughout. Dropping the senders on exit is what tells
/// the lanes to finish; conversely a failed send means a lane died, and
/// the queue is poisoned so nothing hangs.
pub(crate) fn run<O: Clone>(shared: &Shared<O>, lane_txs: &[mpsc::SyncSender<Batch<O>>]) {
    assert!(!lane_txs.is_empty(), "the batcher needs at least one lane");
    let mut next_lane = 0usize;
    let mut next_seq = 0u64;
    let mut send = move |mut batch: Batch<O>| {
        batch.seq = next_seq;
        next_seq += 1;
        match batch.kind {
            BatchKind::Query => {
                let tx = &lane_txs[next_lane];
                next_lane = (next_lane + 1) % lane_txs.len();
                tx.send(batch)
            }
            BatchKind::Update => {
                // Silent copies first (lanes 1..), responder copy last: a
                // ticket answered implies every lane already has the update
                // queued ahead of any later query batch.
                for tx in &lane_txs[1..] {
                    let copy = Batch {
                        entries: batch
                            .entries
                            .iter()
                            .map(|(req, tx, wait, id, client)| {
                                (req.clone(), tx.clone(), *wait, *id, Arc::clone(client))
                            })
                            .collect(),
                        trigger: batch.trigger,
                        kind: BatchKind::Update,
                        seq: batch.seq,
                        respond: false,
                    };
                    tx.send(copy)?;
                }
                lane_txs[0].send(batch)
            }
        }
    };
    let mut st = shared.state.lock().expect("admission lock");
    loop {
        // Size trigger: a full batch is ready — ship it immediately.
        if st.queue.len() >= shared.target {
            let batch = drain(&mut st.queue, shared.target, FlushTrigger::Size);
            drop(st);
            if send(batch).is_err() {
                return poison(shared);
            }
            st = shared.state.lock().expect("admission lock");
            continue;
        }
        // Shutdown: drain the remainder in FIFO target-sized chunks.
        if st.stopped {
            loop {
                if st.queue.is_empty() {
                    return;
                }
                let batch = drain(&mut st.queue, shared.target, FlushTrigger::Shutdown);
                drop(st);
                if send(batch).is_err() {
                    return poison(shared);
                }
                st = shared.state.lock().expect("admission lock");
            }
        }
        // Deadline trigger: the oldest request has waited long enough.
        match st.queue.front().map(|p| p.enqueued.elapsed()) {
            Some(age) if age >= shared.deadline => {
                let batch = drain(&mut st.queue, shared.target, FlushTrigger::Deadline);
                drop(st);
                if send(batch).is_err() {
                    return poison(shared);
                }
                st = shared.state.lock().expect("admission lock");
            }
            Some(age) => {
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, shared.deadline - age)
                    .expect("admission lock");
                st = guard;
            }
            None => {
                st = shared.cv.wait(st).expect("admission lock");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(depth: usize, target: usize) -> (SubmitHandle<u32>, Arc<Shared<u32>>) {
        let shared = Shared::new(depth, target, Duration::from_millis(1), None);
        (
            SubmitHandle {
                shared: Arc::clone(&shared),
            },
            shared,
        )
    }

    #[test]
    fn backpressure_rejects_past_depth() {
        let (h, shared) = handle(2, 100);
        let _t1 = h.submit(Request::Knn { query: 1, k: 1 }).expect("fits");
        let _t2 = h.submit(Request::Knn { query: 2, k: 1 }).expect("fits");
        let err = h.submit(Request::Knn { query: 3, k: 1 }).expect_err("full");
        assert_eq!(err, ServiceError::QueueFull { depth: 2 });
        assert_eq!(shared.admitted.load(Ordering::Relaxed), 2);
        assert_eq!(shared.rejected.load(Ordering::Relaxed), 1);
        assert_eq!(h.queue_len(), 2);
    }

    #[test]
    fn stopped_queue_rejects_everything() {
        let (h, shared) = handle(10, 100);
        shared.stop();
        assert_eq!(
            h.submit(Request::Knn { query: 1, k: 1 }).expect_err("down"),
            ServiceError::Stopped
        );
    }

    #[test]
    fn drain_is_fifo_and_stamps_waits() {
        let mut q = VecDeque::new();
        let (tx, _rx) = mpsc::sync_channel(1);
        for i in 0..5u32 {
            q.push_back(Pending {
                req: Request::Knn { query: i, k: 1 },
                tx: tx.clone(),
                enqueued: Instant::now(),
                id: RequestId(u64::from(i)),
                client: Arc::from(DEFAULT_CLIENT),
            });
        }
        let batch = drain(&mut q, 3, FlushTrigger::Size);
        assert_eq!(batch.entries.len(), 3);
        assert_eq!(q.len(), 2);
        for (i, (req, _, _, id, client)) in batch.entries.iter().enumerate() {
            assert_eq!(
                &**client, DEFAULT_CLIENT,
                "submit() tags the default client"
            );
            let Request::Knn { query, .. } = req else {
                panic!("knn expected")
            };
            assert_eq!(*query as usize, i, "FIFO order preserved");
            assert_eq!(id.0 as usize, i, "admission ids ride the batch");
        }
    }

    #[test]
    fn batcher_flushes_on_size_and_shutdown() {
        let shared = Shared::<u32>::new(64, 4, Duration::from_secs(3600), None);
        let h = SubmitHandle {
            shared: Arc::clone(&shared),
        };
        let (tx, rx) = mpsc::sync_channel(EXECUTOR_PIPELINE_BATCHES);
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run(&shared, std::slice::from_ref(&tx)))
        };
        let _tickets: Vec<Ticket> = (0..10)
            .map(|i| h.submit(Request::Knn { query: i, k: 1 }).expect("fits"))
            .collect();
        // Two full size-triggered batches arrive without any deadline help
        // (the deadline is an hour out).
        let b1 = rx.recv_timeout(Duration::from_secs(5)).expect("batch 1");
        let b2 = rx.recv_timeout(Duration::from_secs(5)).expect("batch 2");
        assert_eq!(b1.trigger, FlushTrigger::Size);
        assert_eq!(b1.entries.len(), 4);
        assert_eq!(b2.entries.len(), 4);
        assert_eq!((b1.seq, b2.seq), (0, 1), "flush order assigns batch seqs");
        // Shutdown drains the two stragglers.
        shared.stop();
        let b3 = rx.recv_timeout(Duration::from_secs(5)).expect("drain");
        assert_eq!(b3.trigger, FlushTrigger::Shutdown);
        assert_eq!(b3.entries.len(), 2);
        worker.join().expect("batcher exits");
    }

    #[test]
    fn executor_death_poisons_the_service() {
        let shared = Shared::<u32>::new(64, 4, Duration::from_secs(3600), None);
        let h = SubmitHandle {
            shared: Arc::clone(&shared),
        };
        let (tx, rx) = mpsc::sync_channel(EXECUTOR_PIPELINE_BATCHES);
        drop(rx); // the "executor" dies immediately
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run(&shared, std::slice::from_ref(&tx)))
        };
        // A full batch triggers a flush whose send fails: the batcher must
        // poison the queue — disconnect every waiting ticket and refuse
        // new work — rather than leave the service a silent black hole.
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| h.submit(Request::Knn { query: i, k: 1 }).expect("fits"))
            .collect();
        worker.join().expect("batcher exits");
        for t in tickets {
            assert_eq!(
                t.wait().expect_err("disconnected"),
                ServiceError::Disconnected
            );
        }
        assert_eq!(
            h.submit(Request::Knn { query: 9, k: 1 })
                .expect_err("poisoned"),
            ServiceError::Stopped
        );
    }

    #[test]
    fn batches_deal_round_robin_across_lanes() {
        let shared = Shared::<u32>::new(64, 2, Duration::from_secs(3600), None);
        let h = SubmitHandle {
            shared: Arc::clone(&shared),
        };
        let (tx0, rx0) = mpsc::sync_channel(EXECUTOR_PIPELINE_BATCHES);
        let (tx1, rx1) = mpsc::sync_channel(EXECUTOR_PIPELINE_BATCHES);
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run(&shared, &[tx0, tx1]))
        };
        let _tickets: Vec<Ticket> = (0..8)
            .map(|i| h.submit(Request::Knn { query: i, k: 1 }).expect("fits"))
            .collect();
        // Four size-triggered batches: 0 and 2 land on lane 0, 1 and 3 on
        // lane 1, preserving FIFO within each lane.
        for (lane, rx) in [(0u32, &rx0), (1, &rx1)] {
            for round in 0..2u32 {
                let b = rx.recv_timeout(Duration::from_secs(5)).expect("batch");
                assert_eq!(b.entries.len(), 2);
                let Request::Knn { query, .. } = b.entries[0].0 else {
                    panic!("knn expected")
                };
                assert_eq!(query, (round * 2 + lane) * 2, "deterministic deal");
            }
        }
        shared.stop();
        worker.join().expect("batcher exits");
    }

    #[test]
    fn drain_stops_at_a_kind_flip() {
        let mut q = VecDeque::new();
        let (tx, _rx) = mpsc::sync_channel(1);
        let reqs: Vec<Request<u32>> = vec![
            Request::Knn { query: 0, k: 1 },
            Request::Knn { query: 1, k: 1 },
            Request::Insert { object: 2 },
            Request::Remove { id: 0 },
            Request::Knn { query: 3, k: 1 },
        ];
        for req in reqs {
            q.push_back(Pending {
                req,
                tx: tx.clone(),
                enqueued: Instant::now(),
                id: RequestId(0),
                client: Arc::from(DEFAULT_CLIENT),
            });
        }
        // The limit would take everything; the kind flips cut it into
        // [2 queries][2 updates][1 query] — reads never pass writes.
        let b = drain(&mut q, 10, FlushTrigger::Size);
        assert_eq!((b.kind, b.entries.len()), (BatchKind::Query, 2));
        let b = drain(&mut q, 10, FlushTrigger::Size);
        assert_eq!((b.kind, b.entries.len()), (BatchKind::Update, 2));
        let b = drain(&mut q, 10, FlushTrigger::Size);
        assert_eq!((b.kind, b.entries.len()), (BatchKind::Query, 1));
        assert!(b.respond);
        assert!(q.is_empty());
    }

    #[test]
    fn update_batches_broadcast_to_every_lane_with_one_responder() {
        let shared = Shared::<u32>::new(64, 1, Duration::from_secs(3600), None);
        let h = SubmitHandle {
            shared: Arc::clone(&shared),
        };
        let (tx0, rx0) = mpsc::sync_channel(EXECUTOR_PIPELINE_BATCHES);
        let (tx1, rx1) = mpsc::sync_channel(EXECUTOR_PIPELINE_BATCHES);
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run(&shared, &[tx0, tx1]))
        };
        let _t = h.submit(Request::Insert { object: 42 }).expect("fits");
        // Both lanes receive the update; only lane 0's copy responds.
        let b0 = rx0.recv_timeout(Duration::from_secs(5)).expect("lane 0");
        let b1 = rx1.recv_timeout(Duration::from_secs(5)).expect("lane 1");
        for b in [&b0, &b1] {
            assert_eq!(b.kind, BatchKind::Update);
            assert_eq!(b.entries.len(), 1);
            assert!(matches!(b.entries[0].0, Request::Insert { object: 42 }));
        }
        assert!(b0.respond, "lane 0 answers the ticket");
        assert!(!b1.respond, "lane 1 applies silently");
        // A query afterwards is dealt to exactly one lane (round-robin).
        let _t = h.submit(Request::Knn { query: 7, k: 1 }).expect("fits");
        let q = rx0.recv_timeout(Duration::from_secs(5)).expect("query");
        assert_eq!(q.kind, BatchKind::Query);
        assert!(rx1.try_recv().is_err(), "queries are not broadcast");
        shared.stop();
        worker.join().expect("batcher exits");
    }

    #[test]
    fn batcher_flushes_on_deadline() {
        let shared = Shared::<u32>::new(64, 1000, Duration::from_millis(5), None);
        let h = SubmitHandle {
            shared: Arc::clone(&shared),
        };
        let (tx, rx) = mpsc::sync_channel(EXECUTOR_PIPELINE_BATCHES);
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run(&shared, std::slice::from_ref(&tx)))
        };
        let _t = h.submit(Request::Range {
            query: 9,
            radius: 1.0,
        });
        let b = rx.recv_timeout(Duration::from_secs(5)).expect("deadline");
        assert_eq!(b.trigger, FlushTrigger::Deadline);
        assert_eq!(b.entries.len(), 1);
        shared.stop();
        worker.join().expect("batcher exits");
    }
}
