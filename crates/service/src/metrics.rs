//! [`MetricsHub`]: the service's metrics surface — one
//! [`MetricsRegistry`] owning every family the serving stack exports,
//! with per-client request accounting, batch/flush counters, per-device
//! utilization gauges, and the cost-model audit's calibration histogram.
//!
//! Two kinds of family live here:
//!
//! * **Incremental** — bumped on the hot path as requests flow
//!   (per-client admitted/rejected/served/failed counters, per-client
//!   queue-wait histograms, flush-trigger counters, batch-span
//!   histograms). Disabled-path cost is one relaxed atomic load per call
//!   site, same contract as tracing.
//! * **Refreshed** — re-read from cumulative sources at scrape time and
//!   written idempotently (`Gauge::set`, `Histogram::replace`): device
//!   utilization, the cost-model audit, the epoch, and the per-stage
//!   trace summary. Two scrapes of an idle service are byte-identical.
//!
//! Like tracing, metrics **observe** the simulated clocks and never
//! advance them: enabling the hub changes no answer, epoch, or cycle
//! count (asserted in `tests/metrics_invariance.rs`).

use crate::api::FlushTrigger;
use gpu_sim::DeviceUtilization;
use gts_core::CostAuditSnapshot;
use gts_metrics::MetricsRegistry;
use gts_trace::TraceSummary;

/// The service's metrics registry plus the pre-registered handles of its
/// unlabelled hot-path families. Per-client series are minted on demand
/// (registration is idempotent), so the client cardinality is whatever
/// the callers present.
pub struct MetricsHub {
    registry: MetricsRegistry,
}

/// The client id [`SubmitHandle::submit`](crate::SubmitHandle::submit)
/// accounts under; [`SubmitHandle::submit_as`](crate::SubmitHandle::submit_as)
/// overrides it per call.
pub const DEFAULT_CLIENT: &str = "default";

impl MetricsHub {
    /// Create a hub with recording on or off.
    pub fn new(enabled: bool) -> Self {
        MetricsHub {
            registry: MetricsRegistry::new(enabled),
        }
    }

    /// The underlying registry (for JSON export or direct snapshots).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Render the Prometheus text exposition of everything recorded.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    // ---- incremental (hot path) ----------------------------------------

    /// One request admitted for `client`.
    pub(crate) fn client_admitted(&self, client: &str) {
        self.registry
            .counter(
                "gts_requests_admitted_total",
                "requests accepted into the admission queue",
                &[("client", client)],
            )
            .inc();
    }

    /// One request rejected by backpressure for `client`.
    pub(crate) fn client_rejected(&self, client: &str) {
        self.registry
            .counter(
                "gts_requests_rejected_total",
                "requests rejected by admission backpressure",
                &[("client", client)],
            )
            .inc();
    }

    /// One response produced for `client` (errors included — every
    /// answered request counts; matches `ServiceStats::completed` for
    /// clients that keep their tickets). Counted just before the send so
    /// a client scraping after `Ticket::wait` returns always sees itself.
    pub(crate) fn client_served(&self, client: &str) {
        self.registry
            .counter(
                "gts_requests_served_total",
                "responses produced for submitted requests",
                &[("client", client)],
            )
            .inc();
    }

    /// One error response produced for `client`.
    pub(crate) fn client_failed(&self, client: &str) {
        self.registry
            .counter(
                "gts_requests_failed_total",
                "requests answered with a typed error",
                &[("client", client)],
            )
            .inc();
    }

    /// Queue wait of one request of `client`, stamped at flush time.
    pub(crate) fn queue_wait(&self, client: &str, us: u64) {
        self.registry
            .histogram(
                "gts_queue_wait_microseconds",
                "host microseconds requests spent in the admission queue",
                &[("client", client)],
            )
            .record(us);
    }

    /// One batch flushed by `trigger`.
    pub(crate) fn batch_flushed(&self, trigger: FlushTrigger) {
        let t = match trigger {
            FlushTrigger::Size => "size",
            FlushTrigger::Deadline => "deadline",
            FlushTrigger::Shutdown => "shutdown",
        };
        self.registry
            .counter(
                "gts_batches_total",
                "batches flushed by the microbatcher, by trigger",
                &[("trigger", t)],
            )
            .inc();
    }

    /// Simulated span cycles one executed sub-batch added to its lane's
    /// critical path.
    pub(crate) fn batch_span(&self, cycles: u64) {
        self.registry
            .histogram(
                "gts_batch_span_cycles",
                "simulated device cycles per executed sub-batch",
                &[],
            )
            .record(cycles);
    }

    // ---- refreshed (scrape time, idempotent) ---------------------------

    /// Refresh the epoch gauge.
    pub(crate) fn set_epoch(&self, epoch: u64) {
        self.registry
            .gauge(
                "gts_epoch",
                "updates serialized since the index was built",
                &[],
            )
            .set(epoch);
    }

    /// Refresh one device's utilization gauges. `device` is the global
    /// device index (replica-major, matching the trace recorder's track
    /// ids); the components partition the device clock exactly:
    /// `busy + transfer + stall + idle == span` for every device.
    pub(crate) fn set_device_utilization(&self, device: usize, u: &DeviceUtilization) {
        let dev = device.to_string();
        let labels: &[(&str, &str)] = &[("device", dev.as_str())];
        let set = |name: &str, help: &str, v: u64| {
            self.registry.gauge(name, help, labels).set(v);
        };
        set(
            "gts_device_busy_cycles",
            "cycles the device spent executing kernels",
            u.busy_cycles,
        );
        set(
            "gts_device_transfer_cycles",
            "cycles the device spent on H2D/D2H transfers",
            u.transfer_cycles,
        );
        set(
            "gts_device_stall_cycles",
            "cycles the device idled at lockstep barriers",
            u.stall_cycles,
        );
        set(
            "gts_device_idle_cycles",
            "cycles behind the pool-wide span (untouched tail)",
            u.idle_cycles,
        );
        set(
            "gts_device_span_cycles",
            "the pool-wide span the components are measured against",
            u.span_cycles,
        );
        set(
            "gts_device_peak_allocated_bytes",
            "device-memory high-water mark",
            u.peak_allocated,
        );
    }

    /// Refresh the cost-model audit families from a (possibly folded)
    /// snapshot. Gauges are set, the calibration histogram is replaced —
    /// both idempotent, so repeated scrapes of quiescent state agree.
    pub(crate) fn set_cost_audit(&self, snap: &CostAuditSnapshot) {
        let set = |name: &str, help: &str, v: u64| {
            self.registry.gauge(name, help, &[]).set(v);
        };
        set(
            "gts_cost_predicted_batch",
            "batch size the cost model admitted (min across shards)",
            snap.predicted_batch as u64,
        );
        set(
            "gts_cost_predicted_peak_bytes",
            "predicted peak intermediate-buffer bytes for that batch",
            snap.predicted_peak_bytes,
        );
        set(
            "gts_cost_levels_observed",
            "per-level audit observations recorded",
            snap.levels_observed,
        );
        set(
            "gts_cost_levels_overpredicted",
            "levels where pruning beat the Chebyshev estimate",
            snap.overpredicted,
        );
        set(
            "gts_cost_levels_underpredicted",
            "levels where survivors exceeded the estimate",
            snap.underpredicted,
        );
        set(
            "gts_cost_peak_frontier_bytes",
            "largest intermediate expansion buffer actually allocated",
            snap.peak_frontier_bytes,
        );
        self.registry
            .histogram(
                "gts_cost_calibration_pct",
                "100*observed/predicted frontier entries per level step",
                &[],
            )
            .replace(&snap.calibration_pct);
    }

    /// Refresh the per-stage span histograms from a trace summary. Series
    /// follow the canonical [`gts_trace::STAGE_ORDER`] in the exposition
    /// — the same order `TraceSummary::to_table` prints.
    pub(crate) fn set_stage_summary(&self, summary: &TraceSummary) {
        for (stage, hist) in &summary.stages {
            self.registry
                .histogram(
                    "gts_stage_cycles",
                    "simulated span cycles per pipeline stage",
                    &[("stage", stage)],
                )
                .replace(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_client_series_accumulate_independently() {
        let hub = MetricsHub::new(true);
        hub.client_admitted("alice");
        hub.client_admitted("alice");
        hub.client_admitted("bob");
        hub.client_rejected("bob");
        hub.queue_wait("alice", 120);
        let text = hub.render_prometheus();
        assert!(text.contains("gts_requests_admitted_total{client=\"alice\"} 2"));
        assert!(text.contains("gts_requests_admitted_total{client=\"bob\"} 1"));
        assert!(text.contains("gts_requests_rejected_total{client=\"bob\"} 1"));
        assert!(text.contains("gts_queue_wait_microseconds_count{client=\"alice\"} 1"));
    }

    #[test]
    fn disabled_hub_renders_empty_families() {
        let hub = MetricsHub::new(false);
        hub.client_admitted("alice");
        hub.batch_span(1000);
        assert!(hub
            .render_prometheus()
            .contains("gts_requests_admitted_total{client=\"alice\"} 0"));
    }

    #[test]
    fn refreshed_families_are_idempotent() {
        let hub = MetricsHub::new(true);
        let snap = CostAuditSnapshot {
            predicted_batch: 64,
            levels_observed: 3,
            ..CostAuditSnapshot::default()
        };
        hub.set_cost_audit(&snap);
        let once = hub.render_prometheus();
        hub.set_cost_audit(&snap);
        hub.set_cost_audit(&snap);
        assert_eq!(hub.render_prometheus(), once, "refresh is not accumulation");
        assert!(once.contains("gts_cost_predicted_batch 64"));
    }
}
