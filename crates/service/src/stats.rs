//! Service-level statistics: admission counters, flush-trigger breakdown,
//! latency histograms, and the underlying index's search counters.

use gts_core::stats::{LatencyHistogram, StatsSnapshot};

/// A point-in-time snapshot of everything the service has done.
///
/// Latency is recorded into two [`LatencyHistogram`]s — host-side **queue
/// wait** (microseconds from submission to batch flush) and simulated
/// **batch span** (device cycles each executing sub-batch added to the
/// sharded critical path) — and the underlying
/// [`ShardedGts`](gts_core::ShardedGts) search counters are aggregated in
/// as [`StatsSnapshot`], so one snapshot tells the whole serving story:
/// admission → batching → device work.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted into the admission queue.
    pub admitted: u64,
    /// Requests rejected by backpressure (queue at depth).
    pub rejected: u64,
    /// Responses actually delivered to a waiting [`Ticket`](crate::Ticket).
    /// A fire-and-forget client that drops its ticket before the batch
    /// executes is *not* counted here, so `completed` can lawfully trail
    /// `admitted` even with `rejected == 0`.
    pub completed: u64,
    /// Batches flushed by the microbatcher.
    pub batches: u64,
    /// Batches flushed by the size trigger.
    pub size_flushes: u64,
    /// Batches flushed by the deadline trigger.
    pub deadline_flushes: u64,
    /// Batches flushed while draining at shutdown.
    pub shutdown_flushes: u64,
    /// The batch target in force (requests per size-triggered batch),
    /// derived once at startup from the configured
    /// [`BatchSizing`](crate::BatchSizing).
    pub batch_target: usize,
    /// Host microseconds requests spent queued, stamped at flush time.
    pub queue_wait_us: LatencyHistogram,
    /// Simulated span cycles per executed sub-batch (one sample per index
    /// call, weighted once — not per request).
    pub batch_span_cycles: LatencyHistogram,
    /// Aggregated search counters of the underlying sharded index.
    pub index: StatsSnapshot,
}

/// The mutable half the executor updates as batches run (everything except
/// the submit-side atomics and the index snapshot, which are folded in
/// when a [`ServiceStats`] is taken).
#[derive(Debug, Default)]
pub(crate) struct ExecutorStats {
    pub(crate) completed: u64,
    pub(crate) batches: u64,
    pub(crate) size_flushes: u64,
    pub(crate) deadline_flushes: u64,
    pub(crate) shutdown_flushes: u64,
    pub(crate) queue_wait_us: LatencyHistogram,
    pub(crate) batch_span_cycles: LatencyHistogram,
}
