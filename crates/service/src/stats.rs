//! Service-level statistics: admission counters, flush-trigger breakdown,
//! latency histograms, lane/failure accounting, and the underlying index's
//! search and replica counters.

use gts_core::stats::{LatencyHistogram, ReplicaStats, StatsSnapshot};

/// A point-in-time snapshot of everything the service has done.
///
/// Latency is recorded into two [`LatencyHistogram`]s — host-side **queue
/// wait** (microseconds from submission to batch flush) and simulated
/// **batch span** (device cycles each executing sub-batch added to the
/// executing lane's replica critical path) — and the underlying
/// [`ReplicatedShards`](gts_core::ReplicatedShards) search counters are
/// aggregated in as [`StatsSnapshot`] plus [`ReplicaStats`], so one
/// snapshot tells the whole serving story: admission → batching → lanes →
/// replicas → device work.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted into the admission queue.
    pub admitted: u64,
    /// Requests rejected by backpressure (queue at depth).
    pub rejected: u64,
    /// Responses actually delivered to a waiting [`Ticket`](crate::Ticket).
    /// A fire-and-forget client that drops its ticket before the batch
    /// executes is *not* counted here, so `completed` can lawfully trail
    /// `admitted` even with `rejected == 0`. Counts error responses too:
    /// every delivered response is a completion, never a hang.
    pub completed: u64,
    /// Batches flushed by the microbatcher.
    pub batches: u64,
    /// Batches flushed by the size trigger.
    pub size_flushes: u64,
    /// Batches flushed by the deadline trigger.
    pub deadline_flushes: u64,
    /// Batches flushed while draining at shutdown.
    pub shutdown_flushes: u64,
    /// The batch target in force (requests per size-triggered batch),
    /// derived once at startup from the configured
    /// [`BatchSizing`](crate::BatchSizing).
    pub batch_target: usize,
    /// Executor lanes running (after clamping the configured lane count to
    /// the number of replicas).
    pub lanes: usize,
    /// Batches executed per lane (index = lane). The batcher deals flushed
    /// batches round-robin, so these stay within one of each other.
    pub lane_batches: Vec<u64>,
    /// Requests answered with a typed error (`Err` responses delivered).
    /// Always `<= completed`; a lost request would show up as
    /// `completed < admitted` with live tickets, which never happens.
    pub failed: u64,
    /// Requests failed fast with
    /// [`ServiceError::ShardUnavailable`](crate::ServiceError::ShardUnavailable)
    /// because every replica of a shard was quarantined.
    pub shard_unavailable: u64,
    /// Panics caught at a lane boundary (beyond the replica layer's own
    /// containment). The lane keeps draining afterwards.
    pub lane_panics: u64,
    /// Updates applied successfully through the admission queue (each one
    /// epoch step, counted once even though every lane applies its copy).
    pub updates_applied: u64,
    /// Update batches flushed (counted once, at the responder copy).
    pub update_batches: u64,
    /// The index's update epoch at snapshot time: how many updates have
    /// been serialized since the index was built (or since the epoch its
    /// snapshot was restored at). Max across replicas — a replica lagging
    /// after a permanent device loss does not hide progress.
    pub epoch: u64,
    /// Replica-layer retries after an injected device fault or metric panic.
    pub retries: u64,
    /// Device faults observed by the replica layer (transient + permanent).
    pub device_faults: u64,
    /// User-metric panics contained by the replica layer.
    pub metric_panics: u64,
    /// Batches answered via the degraded per-shard composition path
    /// (mixing surviving shard copies across replicas).
    pub degraded_calls: u64,
    /// Host microseconds requests spent queued, stamped at flush time.
    pub queue_wait_us: LatencyHistogram,
    /// Simulated span cycles per executed sub-batch (one sample per index
    /// call, weighted once — not per request).
    pub batch_span_cycles: LatencyHistogram,
    /// Aggregated search counters of the underlying replicated index.
    pub index: StatsSnapshot,
    /// Replica-layer health/fault counters (per-replica strikes included).
    pub replica: ReplicaStats,
    /// Lane-batch executions the per-lane counters are missing versus what
    /// the flush counters say ran. A healthy service satisfies
    /// `Σ lane_batches == batches + (lanes−1)·update_batches` at quiescence
    /// (queries run on one lane; updates are broadcast to every lane but
    /// counted once — a broadcast copy still in flight on a sibling lane
    /// shows as a transient deficit on a mid-run snapshot);
    /// a lane that panicked mid-batch increments `lane_panics` without its
    /// `lane_batches` slot, and that shortfall is reconciled here at
    /// snapshot time instead of silently undercounting.
    pub lane_batches_deficit: u64,
    /// Trace events dropped by the recorder's bounded rings (oldest-first).
    /// Zero when tracing is disabled or the rings never filled.
    pub trace_events_dropped: u64,
    /// Flight-recorder dumps captured so far (device faults, lane panics,
    /// dead shards) — the last-N-events snapshots taken at each fault.
    /// Empty when tracing is disabled.
    pub flight_dumps: Vec<gts_trace::FlightDump>,
    /// A full metrics snapshot (every family the
    /// [`MetricsHub`](crate::MetricsHub) exports, refreshed at snapshot
    /// time), when [`ServiceConfig::metrics`](crate::ServiceConfig)
    /// enabled the hub. `None` otherwise.
    pub metrics: Option<gts_metrics::MetricsSnapshot>,
}

/// The mutable half the executor lanes update as batches run (everything
/// except the submit-side atomics and the index snapshots, which are folded
/// in when a [`ServiceStats`] is taken).
#[derive(Debug, Default)]
pub(crate) struct ExecutorStats {
    pub(crate) completed: u64,
    pub(crate) batches: u64,
    pub(crate) size_flushes: u64,
    pub(crate) deadline_flushes: u64,
    pub(crate) shutdown_flushes: u64,
    pub(crate) lane_batches: Vec<u64>,
    pub(crate) failed: u64,
    pub(crate) shard_unavailable: u64,
    pub(crate) lane_panics: u64,
    pub(crate) updates_applied: u64,
    pub(crate) update_batches: u64,
    pub(crate) queue_wait_us: LatencyHistogram,
    pub(crate) batch_span_cycles: LatencyHistogram,
}
