//! The request/response surface of the online query service.

use metric_space::index::{IndexError, Neighbor};
use std::fmt;
use std::sync::mpsc;

/// One similarity-search request, as a client submits it: a single query
/// object plus its parameters. The microbatcher coalesces many of these
/// into one batched index call.
#[derive(Clone, Debug)]
pub enum Request<O> {
    /// Metric range query `MRQ(query, radius)` (paper Definition 3.1).
    Range {
        /// The query object.
        query: O,
        /// The search radius.
        radius: f64,
    },
    /// Metric kNN query `MkNNQ(query, k)` (paper Definition 3.2).
    Knn {
        /// The query object.
        query: O,
        /// Number of nearest neighbours requested.
        k: usize,
    },
    /// Streaming insert (paper §4.4): the object lands in its owning
    /// shard's cache table on every replica, advancing the epoch by one.
    Insert {
        /// The object to index.
        object: O,
    },
    /// Streaming delete (§4.4): tombstone (or cache-evict) the global id
    /// on every replica. Removing an unknown id is a no-op answer but
    /// still advances the epoch — every update serializes.
    Remove {
        /// The global id to remove.
        id: u32,
    },
    /// Batch update (§4.4): apply all changes and reconstruct the affected
    /// shards once, as a single epoch step.
    BatchUpdate {
        /// Objects to add.
        insertions: Vec<O>,
        /// Global ids to drop.
        deletions: Vec<u32>,
    },
}

impl<O> Request<O> {
    /// True for the mutating variants — the batcher never mixes updates and
    /// queries in one flushed batch (the read/write ordering barrier).
    pub fn is_update(&self) -> bool {
        matches!(
            self,
            Request::Insert { .. } | Request::Remove { .. } | Request::BatchUpdate { .. }
        )
    }
}

/// Which trigger flushed the batch a request rode in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushTrigger {
    /// The queue reached the batch target (the §5.3 cost-model size).
    Size,
    /// The oldest queued request aged past the flush deadline.
    Deadline,
    /// The service was shutting down and drained the queue.
    Shutdown,
}

/// Per-request latency breakdown, reported with every [`Response`].
#[derive(Clone, Copy, Debug)]
pub struct LatencyBreakdown {
    /// The service-assigned request id, minted at admission in submission
    /// order. With tracing enabled this is the id the request's trace
    /// events carry ([`gts_trace::TraceCtx::request`]), so a response links
    /// directly to its span chain in a trace export or flight dump.
    pub request: gts_trace::RequestId,
    /// Host wall-clock microseconds the request spent in the admission
    /// queue, from submission to batch flush.
    pub queue_wait_us: u64,
    /// Simulated device cycles the executing batch call added to the
    /// sharded critical path ([`ShardedGts::span_cycles`]
    /// delta around the sub-batch this request was answered in).
    ///
    /// [`ShardedGts::span_cycles`]: gts_core::ShardedGts::span_cycles
    pub batch_span_cycles: u64,
    /// Total requests in the flushed batch this request rode in (the
    /// sub-batch that executed it may be smaller: ranges and distinct `k`
    /// values run as separate index calls).
    pub batch_size: usize,
    /// Why the batch flushed.
    pub trigger: FlushTrigger,
}

/// Receipt for one applied update: what the serialized apply did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateAck {
    /// Global ids assigned to the inserted objects, in submission order
    /// (empty for pure deletions).
    pub assigned: Vec<u32>,
    /// How many of the requested deletions removed a live object.
    pub removed: usize,
}

/// The payload of a successful [`Response`]: neighbours for a query,
/// a receipt for an update.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Answer to a [`Request::Range`] or [`Request::Knn`], in the
    /// canonical `(distance, id)` order.
    Neighbors(Vec<Neighbor>),
    /// Receipt for an [`Request::Insert`] / [`Request::Remove`] /
    /// [`Request::BatchUpdate`].
    Update(UpdateAck),
}

impl Reply {
    /// The neighbour list of a query reply.
    ///
    /// # Panics
    /// When the reply is an update receipt — submit queries, expect
    /// neighbours.
    pub fn neighbors(self) -> Vec<Neighbor> {
        match self {
            Reply::Neighbors(n) => n,
            Reply::Update(_) => panic!("expected a query reply, got an update receipt"),
        }
    }

    /// The receipt of an update reply.
    ///
    /// # Panics
    /// When the reply is a neighbour list.
    pub fn update(self) -> UpdateAck {
        match self {
            Reply::Update(a) => a,
            Reply::Neighbors(_) => panic!("expected an update receipt, got a query reply"),
        }
    }
}

/// The service's answer to one [`Request`].
#[derive(Clone, Debug)]
pub struct Response {
    /// The per-request answer — for queries, bit-identical to a direct
    /// batched index call over the same requests at this response's epoch.
    /// `Err` surfaces execution failures **per request** without
    /// poisoning the lane: a typed index error (e.g. device OOM), a dead
    /// shard ([`ServiceError::ShardUnavailable`]), or a caught panic
    /// ([`ServiceError::BatchPanicked`]).
    pub result: Result<Reply, ServiceError>,
    /// The update epoch this request was served at: the number of updates
    /// serialized before it. A query's answer is exactly the state after
    /// replaying that many updates; an update's own application is
    /// included in its stamp. Monotone in admission order per lane
    /// topology (strictly FIFO end-to-end).
    pub epoch: u64,
    /// Where this request's latency went.
    pub latency: LatencyBreakdown,
}

/// Errors surfaced by request submission, result collection, and batch
/// execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The admission queue is at its configured depth — backpressure.
    /// The request was **rejected**, not queued; clients retry or shed.
    QueueFull {
        /// The configured admission-queue depth that was hit.
        depth: usize,
    },
    /// The service has begun shutting down and admits no new requests.
    Stopped,
    /// The service dropped this request's response channel without
    /// answering (it was torn down mid-flight).
    Disconnected,
    /// The underlying index failed this request's batch with a typed error
    /// (e.g. device OOM under the naive memory strategy).
    Index(IndexError),
    /// Every replica of this shard is on a quarantined device: requests
    /// over it fail fast instead of hanging the queue. Other shards keep
    /// serving.
    ShardUnavailable {
        /// The shard with no surviving replica.
        shard: u32,
    },
    /// The batch died on every replica it was tried on (e.g. a user metric
    /// panicking on this batch's queries on all copies, or a panic caught
    /// at the lane boundary). The lane survives and keeps draining.
    BatchPanicked,
    /// A sub-batch's requests did not match its declared shape (internal
    /// invariant violation); the batch is failed, the lane survives.
    MalformedBatch,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { depth } => {
                write!(f, "admission queue full (depth {depth}); request rejected")
            }
            ServiceError::Stopped => write!(f, "service stopped; request rejected"),
            ServiceError::Disconnected => write!(f, "service dropped the response channel"),
            ServiceError::Index(e) => write!(f, "index error: {e}"),
            ServiceError::ShardUnavailable { shard } => {
                write!(
                    f,
                    "shard {shard} has no surviving replica; request failed fast"
                )
            }
            ServiceError::BatchPanicked => {
                write!(f, "batch execution panicked on every replica tried")
            }
            ServiceError::MalformedBatch => {
                write!(f, "malformed sub-batch (internal invariant violation)")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<IndexError> for ServiceError {
    fn from(e: IndexError) -> Self {
        ServiceError::Index(e)
    }
}

impl From<gts_core::ReplicaError> for ServiceError {
    fn from(e: gts_core::ReplicaError) -> Self {
        match e {
            gts_core::ReplicaError::Index(e) => ServiceError::Index(e),
            gts_core::ReplicaError::ShardUnavailable { shard } => {
                ServiceError::ShardUnavailable { shard }
            }
            gts_core::ReplicaError::AllReplicasFailed { .. } => ServiceError::BatchPanicked,
        }
    }
}

/// A claim check for one submitted request; redeem it with
/// [`Ticket::wait`] to receive the [`Response`].
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Block until the request's batch executes and return the response.
    pub fn wait(self) -> Result<Response, ServiceError> {
        self.rx.recv().map_err(|_| ServiceError::Disconnected)
    }

    /// Non-blocking poll: `Ok(Some(..))` when the response has arrived,
    /// `Ok(None)` while the request is still queued or executing.
    pub fn try_wait(&self) -> Result<Option<Response>, ServiceError> {
        match self.rx.try_recv() {
            Ok(r) => Ok(Some(r)),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(ServiceError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(ServiceError::QueueFull { depth: 8 }
            .to_string()
            .contains("depth 8"));
        assert!(ServiceError::Stopped.to_string().contains("stopped"));
        assert!(ServiceError::Disconnected.to_string().contains("dropped"));
    }

    #[test]
    fn ticket_roundtrip_and_disconnect() {
        let (tx, rx) = mpsc::sync_channel(1);
        let ticket = Ticket { rx };
        assert!(ticket.try_wait().expect("pending").is_none());
        tx.send(Response {
            result: Ok(Reply::Neighbors(Vec::new())),
            epoch: 0,
            latency: LatencyBreakdown {
                request: gts_trace::RequestId(7),
                queue_wait_us: 1,
                batch_span_cycles: 2,
                batch_size: 3,
                trigger: FlushTrigger::Size,
            },
        })
        .expect("send");
        let r = ticket.wait().expect("answered");
        assert_eq!(r.latency.batch_size, 3);

        let (tx2, rx2) = mpsc::sync_channel::<Response>(1);
        drop(tx2);
        assert_eq!(
            Ticket { rx: rx2 }.wait().expect_err("dropped"),
            ServiceError::Disconnected
        );
    }
}
