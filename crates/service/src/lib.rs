//! # gts-service
//!
//! An **online query service** over a sharded GTS index: the layer that
//! turns individual similarity-search requests — the shape real serving
//! traffic arrives in — into the large MRQ/MkNNQ batches the paper's
//! concurrent-query design (§4), cost model (§5.3), and two-stage memory
//! strategy are built to exploit.
//!
//! ```text
//!  clients ──▶ SubmitHandle ──▶ admission queue ──▶ microbatcher ──▶ lane 0 ──▶ replicas {0,2,…}
//!              (submit())       (bounded depth,     (kind barrier:  ├▶ lane 1 ──▶ replicas {1,3,…}
//!                ▲ Ticket        reject past it;     queries deal   └▶ …          (each replica =
//!                │               queries AND         round-robin,                 S shards on S
//!                │               updates, FIFO)      updates broadcast            devices, FENCED
//!                │                                   to every lane)               against direct
//!                │                                                                mutation)
//!                └──── Response: result + epoch + latency breakdown ◀──┘
//! ```
//!
//! Updates (`Insert`/`Remove`/`BatchUpdate`) ride the same FIFO admission
//! queue as queries; the batcher never mixes the two kinds in one batch
//! (the read/write barrier), deals query batches to one lane and
//! broadcasts update batches to all lanes, and each applied update
//! advances a monotone **epoch** on every replica. Every [`Response`]
//! stamps the epoch it was served at, and answers are bit-identical to
//! replaying the same requests against a single index in epoch order
//! (`tests/streaming_updates.rs`).
//!
//! Three pieces, each its own module:
//!
//! * [`api`] — the request/response surface: [`Request`], [`Ticket`],
//!   [`Response`] with its per-request [`LatencyBreakdown`], and
//!   [`ServiceError`] (including the typed execution failures
//!   [`ServiceError::ShardUnavailable`] and
//!   [`ServiceError::BatchPanicked`]);
//! * [`batcher`] — the bounded **admission queue** (backpressure: past the
//!   configured depth, [`SubmitHandle::submit`] rejects with
//!   [`ServiceError::QueueFull`] instead of blocking) and the
//!   **microbatcher** that flushes a batch when either the **size trigger**
//!   fires (queue depth reaches the batch target derived from
//!   [`CostModel::max_batch_queries`](gts_core::CostModel::max_batch_queries)
//!   against the pool-wide free-memory view) or the **deadline trigger**
//!   fires (the oldest queued request has waited the configured flush
//!   deadline), dealing flushed batches round-robin across the lanes;
//! * [`metrics`] — [`MetricsHub`]: the service's metrics surface — one
//!   [`MetricsRegistry`](gts_metrics::MetricsRegistry) holding per-client
//!   request counters and queue-wait histograms (tag requests with
//!   [`SubmitHandle::submit_as`]), flush/batch-span families, per-device
//!   utilization gauges, and the cost-model audit; scrape it with
//!   [`QueryService::scrape`] for Prometheus text exposition;
//! * [`service`] — [`QueryService`]: owns the batcher and lane threads,
//!   drives flushed batches through
//!   [`ReplicatedShards::batch_range`](gts_core::ReplicatedShards::batch_range) /
//!   [`ReplicatedShards::batch_knn`](gts_core::ReplicatedShards::batch_knn)
//!   (FIFO within each lane, lanes preferring disjoint replica sets), and
//!   aggregates [`ServiceStats`].
//!
//! **Determinism.** Batch *formation* under the size trigger is a pure
//! function of the arrival sequence: requests are admitted FIFO, the batch
//! target is computed once at startup from seeded cost-model sampling
//! ([`BatchSizing::CostModel`]), batches are dealt to lanes round-robin,
//! and each lane executes its batches in FIFO order against its own
//! replicas — so a given arrival sequence always produces the same
//! batches, and the simulated device clocks advance identically run to
//! run. The deadline trigger necessarily depends on wall-clock timing, but
//! **answers never do**: every batch shape returns bit-identical results
//! to a direct [`ShardedGts`](gts_core::ShardedGts) call over the same
//! requests, at any lane or replica count (`tests/service_invariance.rs`).
//!
//! **Fault tolerance.** Device faults are contained by the replica layer
//! (retry on surviving copies, exact degraded composition, typed
//! [`ServiceError::ShardUnavailable`] only when a shard's last copy is
//! gone); panics from user metrics are converted to typed per-batch errors
//! at the replica and lane boundaries, so one poisoned batch never kills
//! the service (`tests/fault_injection.rs`).

#![warn(missing_docs)]

pub mod api;
pub mod batcher;
pub mod metrics;
pub mod service;
pub mod stats;

pub use api::{
    FlushTrigger, LatencyBreakdown, Reply, Request, Response, ServiceError, Ticket, UpdateAck,
};
pub use batcher::{BatchSizing, ServiceConfig, SubmitHandle};
pub use metrics::{MetricsHub, DEFAULT_CLIENT};
pub use service::QueryService;
pub use stats::ServiceStats;
