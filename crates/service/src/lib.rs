//! # gts-service
//!
//! An **online query service** over a sharded GTS index: the layer that
//! turns individual similarity-search requests — the shape real serving
//! traffic arrives in — into the large MRQ/MkNNQ batches the paper's
//! concurrent-query design (§4), cost model (§5.3), and two-stage memory
//! strategy are built to exploit.
//!
//! ```text
//!  clients ──▶ SubmitHandle ──▶ admission queue ──▶ microbatcher ──▶ executor ──▶ ShardedGts
//!              (submit())       (bounded depth,     (size trigger      (FIFO,       (scatter to
//!                ▲ Ticket        reject past it)     from §5.3 cost     one batch     shards,
//!                │                                   model + global     at a time)    exact merge)
//!                └──────────── Response: result + latency breakdown ◀───┘
//! ```
//!
//! Three pieces, each its own module:
//!
//! * [`api`] — the request/response surface: [`Request`], [`Ticket`],
//!   [`Response`] with its per-request [`LatencyBreakdown`], and
//!   [`ServiceError`];
//! * [`batcher`] — the bounded **admission queue** (backpressure: past the
//!   configured depth, [`SubmitHandle::submit`] rejects with
//!   [`ServiceError::QueueFull`] instead of blocking) and the
//!   **microbatcher** that flushes a batch when either the **size trigger**
//!   fires (queue depth reaches the batch target derived from
//!   [`CostModel::max_batch_queries`](gts_core::CostModel::max_batch_queries)
//!   against the pool-wide free-memory view) or the **deadline trigger**
//!   fires (the oldest queued request has waited the configured flush
//!   deadline);
//! * [`service`] — [`QueryService`]: owns the batcher and executor
//!   threads, drives flushed batches through
//!   [`ShardedGts::batch_range`](gts_core::ShardedGts::batch_range) /
//!   [`ShardedGts::batch_knn`](gts_core::ShardedGts::batch_knn) in FIFO
//!   flush order, and aggregates [`ServiceStats`].
//!
//! **Determinism.** Batch *formation* under the size trigger is a pure
//! function of the arrival sequence: requests are admitted FIFO, the batch
//! target is computed once at startup from seeded cost-model sampling
//! ([`BatchSizing::CostModel`]), and batches are flushed and executed in
//! FIFO order by a single executor — so a given arrival sequence always
//! produces the same batches, and the simulated device clocks advance
//! identically run to run. The deadline trigger necessarily depends on
//! wall-clock timing, but **answers never do**: every batch shape returns
//! bit-identical results to a direct [`ShardedGts`](gts_core::ShardedGts)
//! call over the same requests (`tests/service_invariance.rs`).

#![warn(missing_docs)]

pub mod api;
pub mod batcher;
pub mod service;
pub mod stats;

pub use api::{FlushTrigger, LatencyBreakdown, Request, Response, ServiceError, Ticket};
pub use batcher::{BatchSizing, ServiceConfig, SubmitHandle};
pub use service::QueryService;
pub use stats::ServiceStats;
