//! [`QueryService`]: the running service — a batcher thread dealing
//! flushed batches round-robin across executor **lanes**, each lane pinned
//! to a disjoint set of replicas of a [`ReplicatedShards`] index.
//!
//! ## Failure domains
//!
//! Each lane executes its batches against its preferred replicas, so a
//! device fault is contained to one lane's replica set: the replica layer
//! retries on survivors (bit-identically — replicas are exact copies), and
//! only a shard whose **every** copy is quarantined fails requests, fast
//! and typed ([`ServiceError::ShardUnavailable`]). A panicking user metric
//! is likewise contained: the replica layer converts it to a typed
//! per-batch error, and a panic escaping even that is caught at the lane
//! boundary ([`ServiceError::BatchPanicked`]) — the lane keeps draining
//! either way, so one poisoned batch can never hang the queue behind it.

use crate::api::{
    FlushTrigger, LatencyBreakdown, Reply, Request, Response, ServiceError, UpdateAck,
};
use crate::batcher::EXECUTOR_PIPELINE_BATCHES;
use crate::batcher::{
    self, Batch, BatchKind, BatchSizing, Entry, ServiceConfig, Shared, SubmitHandle,
};
use crate::metrics::MetricsHub;
use crate::stats::{ExecutorStats, ServiceStats};
use gts_core::{ReplicatedShards, ShardedGts, UpdateOp};
use gts_trace::{DumpReason, EventKind, TraceEvent, TraceRecorder};
use metric_space::index::Neighbor;
use metric_space::{BatchMetric, Footprint};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// The online query service: accepts individual [`Request`]s through
/// [`SubmitHandle`]s, microbatches them, and executes the batches against
/// a replicated sharded index on one or more executor lanes — query
/// batches are dealt round-robin across lanes (FIFO within each lane),
/// update batches are broadcast to every lane so each lane's replicas
/// apply the same serialized epoch order. While the service runs, the
/// index is **fenced**: direct `insert`/`remove`/`batch_update` calls on
/// it are rejected, so the admission order is the only write order.
///
/// ```
/// use gts_core::{GtsParams, ShardedGts};
/// use gts_service::{QueryService, Request, ServiceConfig};
/// use gpu_sim::DevicePool;
/// use metric_space::DatasetKind;
///
/// let data = DatasetKind::Words.generate(600, 42);
/// let pool = DevicePool::rtx_2080_ti(2);
/// let index = ShardedGts::build(&pool, data.items.clone(), data.metric,
///                               GtsParams::default().with_shards(2)).unwrap();
/// let service = QueryService::start(index, ServiceConfig::default());
/// let handle = service.handle();
///
/// // An update flows through the same admission queue as the queries.
/// let inserted = handle.submit(Request::Insert {
///     object: data.items[0].clone(),
/// }).unwrap().wait().unwrap();
/// assert_eq!(inserted.epoch, 1);
/// assert_eq!(inserted.result.unwrap().update().assigned, vec![600]);
///
/// let ticket = handle.submit(Request::Knn {
///     query: data.items[0].clone(),
///     k: 3,
/// }).unwrap();
/// let response = ticket.wait().unwrap();
/// assert_eq!(response.result.unwrap().neighbors().len(), 3);
/// assert_eq!(response.epoch, 1, "served after the one applied update");
/// let stats = service.shutdown();
/// assert_eq!(stats.completed, 2);
/// assert_eq!(stats.epoch, 1);
/// ```
pub struct QueryService<O, M> {
    shared: Arc<Shared<O>>,
    index: Arc<ReplicatedShards<O, M>>,
    exec_stats: Arc<Mutex<ExecutorStats>>,
    batcher: Option<JoinHandle<()>>,
    lanes: Vec<JoinHandle<()>>,
    batch_target: usize,
    num_lanes: usize,
    /// The trace recorder, when [`ServiceConfig::trace`] enabled one. The
    /// same recorder is attached to every device of every replica.
    trace: Option<Arc<TraceRecorder>>,
    /// The metrics hub, when [`ServiceConfig::metrics`] enabled one.
    metrics: Option<Arc<MetricsHub>>,
}

impl<O, M> QueryService<O, M>
where
    O: Clone + Send + Sync + Footprint + 'static,
    M: BatchMetric<O> + Clone + Send + Sync + 'static,
{
    /// Start the service over a plain [`ShardedGts`]: the compatibility
    /// path, equivalent to one replica and one lane of
    /// [`QueryService::start_replicated`] (the index is wrapped in a
    /// single-replica [`ReplicatedShards`], which adds no devices and
    /// changes no clocks). Takes the index **by value** — a retained
    /// outside handle could mutate it behind the admission queue's back;
    /// reach it through [`QueryService::index`] instead.
    pub fn start(index: ShardedGts<O, M>, cfg: ServiceConfig) -> Self {
        Self::start_replicated(Arc::new(ReplicatedShards::from_replicas(vec![index])), cfg)
    }

    /// Start the service over a replicated index: derives the batch target
    /// from `cfg.sizing` (one seeded cost-model fit per shard for
    /// [`BatchSizing::CostModel`], sized against the pool-wide free-memory
    /// minimum — the global two-stage budget), then spawns the batcher
    /// thread and `cfg.lanes` executor lanes. The lane count is clamped to
    /// the replica count — lane `l` prefers replicas `{r : r mod L = l}`,
    /// and more lanes than replicas would race on the same devices and
    /// destroy clock determinism.
    ///
    /// The index is **fenced** for the service's lifetime: direct mutation
    /// of any replica is rejected with a typed error until shutdown
    /// releases the fence — submit [`Request::Insert`] /
    /// [`Request::Remove`] / [`Request::BatchUpdate`] instead, so every
    /// write serializes through the admission queue.
    pub fn start_replicated(index: Arc<ReplicatedShards<O, M>>, cfg: ServiceConfig) -> Self {
        index.fence_all();
        // The builder asserts these, but the fields are pub — validate here
        // too so a hand-built config fails with a meaningful message.
        assert!(
            cfg.max_batch >= 1,
            "max_batch must admit at least one request"
        );
        assert!(
            cfg.queue_depth >= 1,
            "queue_depth must admit at least one request"
        );
        assert!(cfg.lanes >= 1, "the service needs at least one lane");
        let num_lanes = cfg.lanes.min(index.num_replicas());
        let batch_target = match cfg.sizing {
            BatchSizing::Fixed(n) => n,
            BatchSizing::CostModel {
                radius_hint,
                samples,
                seed,
            } => index.max_batch_queries(radius_hint, samples, seed),
        }
        // Clamped to the queue depth as well as the batch cap: a target the
        // admission queue cannot physically hold would make the size
        // trigger silently unreachable (every flush would wait out the
        // deadline).
        .clamp(1, cfg.max_batch.min(cfg.queue_depth));
        // Metrics: one hub owning every family the stack exports. Enabling
        // it also switches on the per-shard cost-model audit so the §5.3
        // sizing prediction is held against observed survivors. Both are
        // observational — answers, epochs, and cycles are bit-identical
        // with metrics on or off.
        let metrics = cfg.metrics.then(|| Arc::new(MetricsHub::new(true)));
        if metrics.is_some() {
            index.set_cost_audit_enabled(true);
        }
        let shared = Shared::new(
            cfg.queue_depth,
            batch_target,
            cfg.flush_deadline,
            metrics.clone(),
        );
        // Tracing: one recorder shared by every layer, attached to every
        // device of every replica with globally unique track ids. Purely
        // observational — it reads the simulated clocks, never advances
        // them, so enabling it changes no answer, epoch, or cycle count.
        let trace = cfg.trace.enabled.then(|| {
            let rec = TraceRecorder::new(cfg.trace);
            let mut dev_id = 0u32;
            for r in 0..index.num_replicas() {
                for d in index
                    .replica(r)
                    .read()
                    .expect("replica lock")
                    .pool()
                    .devices()
                {
                    d.attach_tracer(Arc::clone(&rec), dev_id);
                    dev_id += 1;
                }
            }
            rec
        });
        let exec_stats = Arc::new(Mutex::new(ExecutorStats {
            lane_batches: vec![0; num_lanes],
            ..ExecutorStats::default()
        }));
        // One bounded pipeline channel per lane: a slow lane backs pressure
        // up through the batcher into the admission queue instead of
        // accumulating flushed batches in host memory.
        let mut lane_txs = Vec::with_capacity(num_lanes);
        let mut lane_rxs = Vec::with_capacity(num_lanes);
        for _ in 0..num_lanes {
            let (tx, rx) = mpsc::sync_channel::<Batch<O>>(EXECUTOR_PIPELINE_BATCHES);
            lane_txs.push(tx);
            lane_rxs.push(rx);
        }
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher::run(&shared, &lane_txs))
        };
        let lanes = lane_rxs
            .into_iter()
            .enumerate()
            .map(|(lane, rx)| {
                let index = Arc::clone(&index);
                let stats = Arc::clone(&exec_stats);
                let trace = trace.clone();
                let metrics = metrics.clone();
                // Disjoint preferred replica sets: lane l owns every
                // replica congruent to l mod L.
                let prefer: Vec<usize> = (0..index.num_replicas())
                    .filter(|r| r % num_lanes == lane)
                    .collect();
                std::thread::spawn(move || {
                    run_lane(
                        &index,
                        lane,
                        &prefer,
                        &rx,
                        &stats,
                        trace.as_ref(),
                        metrics.as_deref(),
                    )
                })
            })
            .collect();
        QueryService {
            shared,
            index,
            exec_stats,
            batcher: Some(batcher),
            lanes,
            batch_target,
            num_lanes,
            trace,
            metrics,
        }
    }

    /// A cloneable submission endpoint.
    pub fn handle(&self) -> SubmitHandle<O> {
        SubmitHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The batch target in force: requests per size-triggered flush.
    pub fn batch_target(&self) -> usize {
        self.batch_target
    }

    /// Executor lanes running (the configured count clamped to the replica
    /// count).
    pub fn num_lanes(&self) -> usize {
        self.num_lanes
    }

    /// The replicated index the service executes against.
    pub fn index(&self) -> &Arc<ReplicatedShards<O, M>> {
        &self.index
    }

    /// The trace recorder, when [`ServiceConfig::trace`] enabled tracing:
    /// export with [`TraceRecorder::to_chrome_json`], summarize with
    /// [`TraceRecorder::summary`], or inspect flight dumps directly.
    pub fn trace(&self) -> Option<&Arc<TraceRecorder>> {
        self.trace.as_ref()
    }

    /// The metrics hub, when [`ServiceConfig::metrics`] enabled one.
    pub fn metrics(&self) -> Option<&Arc<MetricsHub>> {
        self.metrics.as_ref()
    }

    /// Refresh the scrape-time families (epoch, per-device utilization,
    /// cost-model audit, per-stage trace summary) and render the
    /// Prometheus text exposition. `None` when metrics are disabled.
    /// Scraping is observational: it reads the simulated clocks without
    /// advancing them, and two scrapes of an idle service are
    /// byte-identical.
    pub fn scrape(&self) -> Option<String> {
        let hub = self.metrics.as_ref()?;
        self.refresh_metrics(hub);
        Some(hub.render_prometheus())
    }

    /// Re-read the cumulative sources into their idempotent families.
    /// Device indices are global and replica-major — the same numbering
    /// the trace recorder uses for track ids.
    fn refresh_metrics(&self, hub: &MetricsHub) {
        hub.set_epoch(self.index.epoch_of(&[]));
        let mut dev = 0usize;
        for r in 0..self.index.num_replicas() {
            for u in self
                .index
                .replica(r)
                .read()
                .expect("replica lock")
                .pool()
                .utilization()
            {
                hub.set_device_utilization(dev, &u);
                dev += 1;
            }
        }
        hub.set_cost_audit(&self.index.cost_audit());
        if let Some(rec) = &self.trace {
            hub.set_stage_summary(&rec.summary());
        }
    }

    /// Point-in-time statistics (the service keeps running).
    pub fn stats(&self) -> ServiceStats {
        self.collect_stats()
    }

    /// Stop admitting, drain the queue (every in-flight request is still
    /// answered, via shutdown-triggered flushes), join all threads, and
    /// return the final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop_and_join();
        self.collect_stats()
    }

    fn collect_stats(&self) -> ServiceStats {
        let e = self.exec_stats.lock().unwrap_or_else(|p| p.into_inner());
        let replica = self.index.replica_stats();
        // Snapshot-time reconciliation of the lane/batch ledger. Every
        // flushed batch is executed once per responsible lane — query
        // batches by one lane, update batches by all L — so a healthy
        // service satisfies `Σ lane_batches = batches + (L−1)·update_batches`.
        // A lane that died mid-run (panic past every containment layer)
        // stops draining its copies and leaves the sum short; the deficit is
        // reported rather than silently miscounting throughput.
        let expected = e.batches + (self.num_lanes as u64 - 1) * e.update_batches;
        let lane_sum: u64 = e.lane_batches.iter().sum();
        ServiceStats {
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            completed: e.completed,
            batches: e.batches,
            size_flushes: e.size_flushes,
            deadline_flushes: e.deadline_flushes,
            shutdown_flushes: e.shutdown_flushes,
            batch_target: self.batch_target,
            lanes: self.num_lanes,
            lane_batches: e.lane_batches.clone(),
            failed: e.failed,
            shard_unavailable: e.shard_unavailable,
            lane_panics: e.lane_panics,
            updates_applied: e.updates_applied,
            update_batches: e.update_batches,
            epoch: self.index.epoch_of(&[]),
            retries: replica.retries,
            device_faults: replica.device_faults,
            metric_panics: replica.metric_panics,
            degraded_calls: replica.degraded_calls,
            queue_wait_us: e.queue_wait_us.clone(),
            batch_span_cycles: e.batch_span_cycles.clone(),
            lane_batches_deficit: expected.saturating_sub(lane_sum),
            trace_events_dropped: self.trace.as_ref().map_or(0, |t| t.dropped()),
            flight_dumps: self
                .trace
                .as_ref()
                .map_or_else(Vec::new, |t| t.flight_dumps()),
            index: self.index.stats(),
            replica,
            metrics: self.metrics.as_ref().map(|hub| {
                self.refresh_metrics(hub);
                hub.registry().snapshot()
            }),
        }
    }
}

// Teardown needs none of the query-path bounds, and living in an
// unbounded impl lets `Drop` share it verbatim with `shutdown`.
impl<O, M> QueryService<O, M> {
    fn stop_and_join(&mut self) {
        self.shared.stop();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        for h in self.lanes.drain(..) {
            let _ = h.join();
        }
        // Every lane is gone: hand the index back to the caller by lifting
        // the direct-mutation fence (idempotent — Drop after shutdown
        // releases again harmlessly).
        self.index.release_all();
    }
}

impl<O, M> Drop for QueryService<O, M> {
    fn drop(&mut self) {
        // Same teardown as `shutdown`, so a dropped service never leaks its
        // threads (after shutdown all handles are already taken — no-op).
        self.stop_and_join();
    }
}

/// One executable sub-batch: indices into the flushed batch plus the
/// uniform call shape (every range request can share one `batch_range`
/// call; kNN requests share a call per distinct `k`).
enum SubBatch {
    Range(Vec<usize>),
    Knn(Vec<usize>, usize),
}

impl SubBatch {
    /// The flushed-batch indices this sub-batch answers.
    fn indices(&self) -> &[usize] {
        match self {
            SubBatch::Range(idx) | SubBatch::Knn(idx, _) => idx,
        }
    }
}

/// Split one flushed batch into its index calls, deterministically: all
/// range requests first (FIFO order), then kNN groups by ascending `k`
/// (FIFO within each group). The split is a pure function of the batch, so
/// FIFO batches imply FIFO sub-batches — and reproducible device clocks.
fn split_batch<O>(entries: &[Entry<O>]) -> Vec<SubBatch> {
    let mut ranges = Vec::new();
    let mut knn: Vec<(usize, Vec<usize>)> = Vec::new(); // (k, FIFO indices)
    for (i, (req, _, _, _, _)) in entries.iter().enumerate() {
        match req {
            Request::Range { .. } => ranges.push(i),
            Request::Knn { k, .. } => match knn.binary_search_by_key(k, |g| g.0) {
                Ok(g) => knn[g].1.push(i),
                Err(g) => knn.insert(g, (*k, vec![i])),
            },
            Request::Insert { .. } | Request::Remove { .. } | Request::BatchUpdate { .. } => {
                // The batcher's kind barrier keeps updates out of query
                // batches; an update here is an internal invariant
                // violation and is skipped (its ticket disconnects).
                debug_assert!(false, "update request in a query batch");
            }
        }
    }
    let mut out = Vec::new();
    if !ranges.is_empty() {
        out.push(SubBatch::Range(ranges));
    }
    out.extend(knn.into_iter().map(|(k, idx)| SubBatch::Knn(idx, k)));
    out
}

/// One executor lane: receives its batches in deal order and runs each to
/// completion before the next. Lanes prefer disjoint replica sets, so the
/// per-batch span-cycle deltas a lane records against its own replicas'
/// clocks are exact (no interleaving with sibling lanes) — and so each
/// lane's replicas are written **only by this lane**, in the per-lane FIFO
/// order every lane shares (update batches are broadcast). A panic
/// escaping the replica layer's own containment is caught here — the
/// batch fails typed ([`ServiceError::BatchPanicked`]) and the lane keeps
/// draining.
///
/// Stats gating: `lane_batches` counts every batch each lane executes;
/// all per-request counters (`batches`, flush kinds, queue waits,
/// `completed`, `failed`, `updates_applied`, …) are bumped only by the
/// batch's **responder** copy, so a broadcast update is counted once.
fn run_lane<O, M>(
    index: &ReplicatedShards<O, M>,
    lane: usize,
    prefer: &[usize],
    batch_rx: &mpsc::Receiver<Batch<O>>,
    stats: &Mutex<ExecutorStats>,
    trace: Option<&Arc<TraceRecorder>>,
    metrics: Option<&MetricsHub>,
) where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O> + Clone,
{
    for batch in batch_rx.iter() {
        {
            let mut s = stats.lock().unwrap_or_else(|p| p.into_inner());
            s.lane_batches[lane] += 1;
            if batch.respond {
                s.batches += 1;
                match batch.trigger {
                    FlushTrigger::Size => s.size_flushes += 1,
                    FlushTrigger::Deadline => s.deadline_flushes += 1,
                    FlushTrigger::Shutdown => s.shutdown_flushes += 1,
                }
                for (_, _, wait_us, _, _) in &batch.entries {
                    s.queue_wait_us.record(*wait_us);
                }
            }
        }
        // Metrics mirror the responder-gated stats: the flush trigger is
        // counted once per batch, queue waits once per request, both only
        // on the responder copy (broadcast updates execute on every lane
        // but are accounted once).
        if batch.respond {
            if let Some(hub) = metrics {
                hub.batch_flushed(batch.trigger);
                for (_, _, wait_us, _, client) in &batch.entries {
                    hub.queue_wait(client, *wait_us);
                }
            }
        }
        // Plant the lane/batch trace context for everything this batch
        // does, and record the request→batch association *before*
        // execution — so a flight dump taken at a mid-batch fault already
        // holds the member list needed to walk back to the requests.
        let ctx = gts_trace::TraceCtx::default()
            .with_batch(batch.seq)
            .with_lane(lane as u32);
        let _scope = gts_trace::scoped_ctx(ctx);
        let span_begin = index.span_of(prefer);
        if let Some(rec) = trace {
            rec.record(TraceEvent::instant(
                EventKind::BatchStart {
                    size: batch.entries.len() as u32,
                    update: batch.kind == BatchKind::Update,
                },
                ctx,
                None,
                span_begin,
            ));
            for (_, _, _, id, _) in &batch.entries {
                let mut mctx = ctx;
                mctx.request = Some(*id);
                rec.record(TraceEvent::instant(
                    EventKind::BatchMember { request: *id },
                    mctx,
                    None,
                    span_begin,
                ));
            }
        }
        // Outer containment: `query_batch`/`update_batch` catch panics per
        // sub-batch, but a panic escaping even that (e.g. out of a respond
        // path) must not kill the lane — a dead lane stops draining its
        // pipeline and wedges the batcher. The batch's tickets disconnect;
        // the lane keeps serving.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match batch.kind {
            BatchKind::Query => query_batch(index, prefer, &batch, stats, trace, metrics),
            BatchKind::Update => update_batch(index, prefer, &batch, stats, trace, metrics),
        }));
        if outcome.is_err() {
            stats.lock().unwrap_or_else(|p| p.into_inner()).lane_panics += 1;
            if let Some(rec) = trace {
                rec.record(TraceEvent::instant(
                    EventKind::LanePanic,
                    ctx,
                    None,
                    index.span_of(prefer),
                ));
                rec.flight_dump(DumpReason::LanePanic);
            }
        } else if let Some(rec) = trace {
            rec.record(TraceEvent::span(
                EventKind::LaneBatch {
                    size: batch.entries.len() as u32,
                    update: batch.kind == BatchKind::Update,
                },
                ctx,
                None,
                span_begin,
                index.span_of(prefer),
            ));
        }
    }
}

/// Execute one query batch: split into uniform sub-batches and answer each
/// at the lane's current epoch. The epoch is read once — this lane's
/// replicas are mutated only by this lane (updates broadcast per lane), so
/// it cannot move under a running batch.
fn query_batch<O, M>(
    index: &ReplicatedShards<O, M>,
    prefer: &[usize],
    batch: &Batch<O>,
    stats: &Mutex<ExecutorStats>,
    trace: Option<&Arc<TraceRecorder>>,
    metrics: Option<&MetricsHub>,
) where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O> + Clone,
{
    let size = batch.entries.len();
    let epoch = index.epoch_of(prefer);
    for sub in split_batch(&batch.entries) {
        let before = index.span_of(prefer);
        let answers = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_sub(index, prefer, &batch.entries, &sub)
        })) {
            Ok(res) => res,
            Err(_) => {
                stats.lock().expect("executor stats lock").lane_panics += 1;
                if let Some(rec) = trace {
                    rec.record(TraceEvent::instant(
                        EventKind::LanePanic,
                        gts_trace::current_ctx(),
                        None,
                        index.span_of(prefer),
                    ));
                    rec.flight_dump(DumpReason::LanePanic);
                }
                Err(ServiceError::BatchPanicked)
            }
        };
        let span = index.span_of(prefer).saturating_sub(before);
        stats
            .lock()
            .expect("executor stats lock")
            .batch_span_cycles
            .record(span);
        if let Some(hub) = metrics {
            hub.batch_span(span);
        }
        let indices = sub.indices();
        let mut answered = 0u64;
        let mut failed = 0u64;
        let mut unavailable = 0u64;
        match answers {
            Ok(mut per_query) => {
                // Walk in reverse so `pop` hands each index its answer
                // without cloning.
                for &i in indices.iter().rev() {
                    let result = Ok(Reply::Neighbors(
                        per_query.pop().expect("one answer per request"),
                    ));
                    answered += respond(
                        &batch.entries[i],
                        result,
                        epoch,
                        span,
                        size,
                        batch.trigger,
                        metrics,
                    );
                }
            }
            Err(e) => {
                if matches!(e, ServiceError::ShardUnavailable { .. }) {
                    unavailable = indices.len() as u64;
                }
                failed = indices.len() as u64;
                for &i in indices {
                    answered += respond(
                        &batch.entries[i],
                        Err(e.clone()),
                        epoch,
                        span,
                        size,
                        batch.trigger,
                        metrics,
                    );
                }
            }
        }
        let mut s = stats.lock().expect("executor stats lock");
        s.completed += answered;
        s.failed += failed;
        s.shard_unavailable += unavailable;
    }
}

/// Apply one update batch to this lane's replicas, strictly FIFO — each
/// update is one epoch step on every replica of the preferred set. Only
/// the responder copy (lane 0's) answers tickets and bumps per-request
/// counters; sibling lanes apply the identical ops to their own replicas
/// silently, which is what keeps all replicas at the same epoch.
fn update_batch<O, M>(
    index: &ReplicatedShards<O, M>,
    prefer: &[usize],
    batch: &Batch<O>,
    stats: &Mutex<ExecutorStats>,
    trace: Option<&Arc<TraceRecorder>>,
    metrics: Option<&MetricsHub>,
) where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O> + Clone,
{
    let size = batch.entries.len();
    if batch.respond {
        stats.lock().expect("executor stats lock").update_batches += 1;
    }
    for entry in &batch.entries {
        let op = match &entry.0 {
            Request::Insert { object } => UpdateOp::Insert(object.clone()),
            Request::Remove { id } => UpdateOp::Remove(*id),
            Request::BatchUpdate {
                insertions,
                deletions,
            } => UpdateOp::Batch {
                insertions: insertions.clone(),
                deletions: deletions.clone(),
            },
            Request::Range { .. } | Request::Knn { .. } => {
                debug_assert!(false, "update batch must hold update requests");
                if batch.respond {
                    let epoch = index.epoch_of(prefer);
                    let mut s = stats.lock().expect("executor stats lock");
                    s.failed += 1;
                    s.completed += respond(
                        entry,
                        Err(ServiceError::MalformedBatch),
                        epoch,
                        0,
                        size,
                        batch.trigger,
                        metrics,
                    );
                }
                continue;
            }
        };
        let before = index.span_of(prefer);
        let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            index.apply_preferring(prefer, &op)
        })) {
            Ok(Ok(ack)) => Ok(Reply::Update(UpdateAck {
                assigned: ack.assigned,
                removed: ack.removed,
            })),
            Ok(Err(e)) => Err(ServiceError::from(e)),
            Err(_) => {
                stats.lock().expect("executor stats lock").lane_panics += 1;
                if let Some(rec) = trace {
                    rec.record(TraceEvent::instant(
                        EventKind::LanePanic,
                        gts_trace::current_ctx(),
                        None,
                        index.span_of(prefer),
                    ));
                    rec.flight_dump(DumpReason::LanePanic);
                }
                Err(ServiceError::BatchPanicked)
            }
        };
        let span = index.span_of(prefer).saturating_sub(before);
        // The update's own application is included in its stamp.
        let epoch = index.epoch_of(prefer);
        if batch.respond {
            let mut s = stats.lock().expect("executor stats lock");
            s.batch_span_cycles.record(span);
            match &result {
                Ok(_) => s.updates_applied += 1,
                Err(e) => {
                    s.failed += 1;
                    if matches!(e, ServiceError::ShardUnavailable { .. }) {
                        s.shard_unavailable += 1;
                    }
                }
            }
            if let Some(hub) = metrics {
                hub.batch_span(span);
            }
            s.completed += respond(entry, result, epoch, span, size, batch.trigger, metrics);
        }
    }
}

/// Run one sub-batch against the lane's preferred replicas, returning the
/// per-request answers. A request whose shape contradicts the sub-batch it
/// was grouped into is an internal invariant violation: loud in debug
/// builds, a typed [`ServiceError::MalformedBatch`] that fails only this
/// batch (the lane survives) in release builds.
fn execute_sub<O, M>(
    index: &ReplicatedShards<O, M>,
    prefer: &[usize],
    entries: &[Entry<O>],
    sub: &SubBatch,
) -> Result<Vec<Vec<Neighbor>>, ServiceError>
where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O> + Clone,
{
    match sub {
        SubBatch::Range(indices) => {
            let mut queries = Vec::with_capacity(indices.len());
            let mut radii = Vec::with_capacity(indices.len());
            for &i in indices {
                let Request::Range { query, radius } = &entries[i].0 else {
                    debug_assert!(false, "range sub-batch must hold range requests");
                    return Err(ServiceError::MalformedBatch);
                };
                queries.push(query.clone());
                radii.push(*radius);
            }
            index
                .batch_range_preferring(prefer, &queries, &radii)
                .map_err(ServiceError::from)
        }
        SubBatch::Knn(indices, k) => {
            let mut queries = Vec::with_capacity(indices.len());
            for &i in indices {
                let Request::Knn { query, .. } = &entries[i].0 else {
                    debug_assert!(false, "knn sub-batch must hold knn requests");
                    return Err(ServiceError::MalformedBatch);
                };
                queries.push(query.clone());
            }
            index
                .batch_knn_preferring(prefer, &queries, *k)
                .map_err(ServiceError::from)
        }
    }
}

/// Send one response; returns 1 when delivered, 0 when the client dropped
/// its [`Ticket`](crate::Ticket) (not an error — fire-and-forget clients
/// are allowed).
fn respond<O>(
    entry: &Entry<O>,
    result: Result<Reply, ServiceError>,
    epoch: u64,
    span: u64,
    batch_size: usize,
    trigger: FlushTrigger,
    metrics: Option<&MetricsHub>,
) -> u64 {
    let (_, tx, wait_us, id, client) = entry;
    // Metrics land *before* the send: a client scraping the moment its
    // `Ticket::wait` returns must already see its own request counted
    // (the send is the happens-before edge).
    if let Some(hub) = metrics {
        if result.is_err() {
            hub.client_failed(client);
        }
        hub.client_served(client);
    }
    let response = Response {
        result,
        epoch,
        latency: LatencyBreakdown {
            request: *id,
            queue_wait_us: *wait_us,
            batch_span_cycles: span,
            batch_size,
            trigger,
        },
    };
    u64::from(tx.send(response).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ServiceError;
    use gpu_sim::DevicePool;
    use gts_core::{Gts, GtsParams};
    use gts_trace::RequestId;
    use metric_space::index::SimilarityIndex;
    use metric_space::{DatasetKind, Item, ItemMetric};
    use std::time::Duration;

    fn service(
        n: usize,
        shards: u32,
        cfg: ServiceConfig,
    ) -> (Vec<Item>, ItemMetric, QueryService<Item, ItemMetric>) {
        let data = DatasetKind::Words.generate(n, 77);
        let pool = DevicePool::rtx_2080_ti(shards as usize);
        let index = ShardedGts::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default().with_shards(shards),
        )
        .expect("build");
        (data.items, data.metric, QueryService::start(index, cfg))
    }

    fn replicated_service(
        n: usize,
        shards: u32,
        replicas: u32,
        cfg: ServiceConfig,
    ) -> (Vec<Item>, QueryService<Item, ItemMetric>) {
        let data = DatasetKind::Words.generate(n, 77);
        let pool = DevicePool::rtx_2080_ti((shards * replicas) as usize);
        let index = ReplicatedShards::build(
            &pool,
            data.items.clone(),
            data.metric,
            GtsParams::default()
                .with_shards(shards)
                .with_replicas(replicas),
        )
        .expect("build");
        (
            data.items,
            QueryService::start_replicated(Arc::new(index), cfg),
        )
    }

    /// Regression for the lane/batch ledger gap: a lane dying mid-run
    /// (panic past every containment layer, or a wedged thread at
    /// teardown) leaves `Σ lane_batches` short of what the flush counters
    /// say ran — update broadcasts especially, where the responder counts
    /// the batch once but each lane counts its own copy. The snapshot
    /// reconciles the ledger instead of silently undercounting: healthy
    /// runs report a zero deficit, a doctored shortfall surfaces exactly.
    #[test]
    fn snapshot_reconciles_lane_batch_undercount() {
        let (items, svc) = replicated_service(
            240,
            1,
            2,
            ServiceConfig::default()
                .with_sizing(BatchSizing::Fixed(2))
                .with_flush_deadline(Duration::from_millis(1))
                .with_lanes(2),
        );
        let h = svc.handle();
        let mut tickets = Vec::new();
        for i in 0..6 {
            tickets.push(
                h.submit(Request::Knn {
                    query: items[i * 7].clone(),
                    k: 3,
                })
                .expect("admitted"),
            );
        }
        tickets.push(
            h.submit(Request::Insert {
                object: items[0].clone(),
            })
            .expect("admitted"),
        );
        for t in tickets {
            t.wait().expect("answered").result.expect("ok");
        }
        // Healthy ledger at quiescence: Σ lane_batches == batches +
        // (L−1)·update_batches. The responder answers before the other
        // lane's silent broadcast copy lands, so poll briefly for the
        // in-flight copy instead of asserting mid-race.
        let healthy = {
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                let s = svc.stats();
                if s.lane_batches_deficit == 0 || std::time::Instant::now() > deadline {
                    break s;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        };
        assert_eq!(
            healthy.lane_batches.iter().sum::<u64>(),
            healthy.batches + healthy.update_batches,
            "2 lanes: each update batch runs twice, counted once"
        );
        assert_eq!(healthy.lane_batches_deficit, 0, "healthy runs reconcile");

        // Simulate the undercount (a lane whose counter never landed) and
        // snapshot again: the deficit surfaces instead of vanishing.
        svc.exec_stats.lock().expect("stats lock").lane_batches[0] -= 1;
        assert_eq!(svc.stats().lane_batches_deficit, 1);
        let stats = svc.shutdown();
        assert_eq!(stats.lane_batches_deficit, 1, "shutdown keeps the ledger");
    }

    #[test]
    fn split_batch_groups_deterministically() {
        let (tx, _rx) = mpsc::sync_channel(1);
        let mk = |req| {
            (
                req,
                tx.clone(),
                0u64,
                RequestId(0),
                Arc::from(crate::metrics::DEFAULT_CLIENT),
            )
        };
        let entries = vec![
            mk(Request::Knn { query: 0u32, k: 5 }),
            mk(Request::Range {
                query: 1,
                radius: 1.0,
            }),
            mk(Request::Knn { query: 2, k: 3 }),
            mk(Request::Knn { query: 3, k: 5 }),
        ];
        let subs = split_batch(&entries);
        assert_eq!(subs.len(), 3, "ranges + two distinct k groups");
        let SubBatch::Range(r) = &subs[0] else {
            panic!("ranges first")
        };
        assert_eq!(r, &vec![1]);
        let SubBatch::Knn(g3, k3) = &subs[1] else {
            panic!("knn ascending")
        };
        assert_eq!((g3.as_slice(), *k3), ([2usize].as_slice(), 3));
        let SubBatch::Knn(g5, k5) = &subs[2] else {
            panic!("knn ascending")
        };
        assert_eq!((g5.as_slice(), *k5), ([0usize, 3].as_slice(), 5));
        assert_eq!(subs[2].indices(), &[0, 3]);
    }

    #[test]
    fn end_to_end_mixed_batch() {
        let (items, metric, svc) = service(
            400,
            2,
            ServiceConfig::default()
                .with_sizing(BatchSizing::Fixed(4))
                .with_flush_deadline(Duration::from_millis(1)),
        );
        let h = svc.handle();
        let tickets: Vec<_> = (0..8)
            .map(|i| {
                let req = if i % 2 == 0 {
                    Request::Range {
                        query: items[i].clone(),
                        radius: 2.0,
                    }
                } else {
                    Request::Knn {
                        query: items[i].clone(),
                        k: 3,
                    }
                };
                h.submit(req).expect("admitted")
            })
            .collect();
        let single = Gts::build(
            &gpu_sim::Device::rtx_2080_ti(),
            items.clone(),
            metric,
            GtsParams::default(),
        )
        .expect("build");
        for (i, t) in tickets.into_iter().enumerate() {
            let r = t.wait().expect("answered");
            assert_eq!(r.epoch, 0, "no updates were admitted");
            let got = r.result.expect("no index error").neighbors();
            let want = if i % 2 == 0 {
                single.range_query(&items[i], 2.0).expect("direct")
            } else {
                single.knn_query(&items[i], 3).expect("direct")
            };
            assert_eq!(got, want, "request {i}");
            assert!(r.latency.batch_size >= 1);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.admitted, 8);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.lanes, 1);
        assert_eq!(stats.lane_batches.iter().sum::<u64>(), stats.batches);
        assert!(stats.batches >= 2);
        assert_eq!(stats.queue_wait_us.count(), 8);
        assert!(stats.index.distance_computations > 0);
    }

    #[test]
    fn two_lanes_answer_bit_identically_to_one() {
        // Same requests through a 1-lane×1-replica and a 2-lane×2-replica
        // service: every answer must match, and both lanes must have
        // executed work.
        let cfg = ServiceConfig::default()
            .with_sizing(BatchSizing::Fixed(3))
            .with_flush_deadline(Duration::from_millis(1));
        let (items, _, base) = service(400, 2, cfg);
        let (items2, wide) = replicated_service(400, 2, 2, cfg.with_lanes(2));
        assert_eq!(items, items2);
        assert_eq!(wide.num_lanes(), 2);
        let submit = |svc: &QueryService<Item, ItemMetric>| {
            let h = svc.handle();
            let tickets: Vec<_> = (0..12)
                .map(|i| {
                    h.submit(Request::Knn {
                        query: items[i * 7].clone(),
                        k: 4,
                    })
                    .expect("admitted")
                })
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().expect("answered").result.expect("ok").neighbors())
                .collect::<Vec<_>>()
        };
        let want = submit(&base);
        let got = submit(&wide);
        assert_eq!(got, want, "lanes and replicas never change answers");
        let stats = wide.shutdown();
        assert_eq!(stats.lanes, 2);
        assert_eq!(stats.lane_batches.len(), 2);
        assert!(
            stats.lane_batches.iter().all(|&b| b > 0),
            "round-robin dealt batches to both lanes: {:?}",
            stats.lane_batches
        );
        assert_eq!(stats.failed, 0);
        base.shutdown();
    }

    #[test]
    fn lanes_clamp_to_replica_count() {
        let (_, svc) = replicated_service(
            200,
            1,
            1,
            ServiceConfig::default().with_lanes(4), // only 1 replica exists
        );
        assert_eq!(svc.num_lanes(), 1);
        svc.shutdown();
    }

    #[test]
    fn malformed_sub_batch_is_typed_not_fatal() {
        // Hand-build a contradictory sub-batch (a kNN request inside a
        // Range sub): debug builds assert loudly; release builds degrade to
        // the typed MalformedBatch error. Either way it cannot escape as an
        // unclassified panic past the lane boundary.
        let data = DatasetKind::Words.generate(120, 5);
        let pool = DevicePool::rtx_2080_ti(1);
        let index = Arc::new(ReplicatedShards::from_replicas(vec![ShardedGts::build(
            &pool,
            data.items,
            data.metric,
            GtsParams::default(),
        )
        .expect("build")]));
        let (tx, _rx) = mpsc::sync_channel(1);
        let entries = vec![(
            Request::Knn {
                query: Item::text("q"),
                k: 1,
            },
            tx,
            0u64,
            RequestId(0),
            Arc::from(crate::metrics::DEFAULT_CLIENT),
        )];
        let sub = SubBatch::Range(vec![0]);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_sub(index.as_ref(), &[], &entries, &sub)
        }));
        if cfg!(debug_assertions) {
            assert!(outcome.is_err(), "debug builds assert on malformed subs");
        } else {
            assert_eq!(
                outcome.expect("no panic in release"),
                Err(ServiceError::MalformedBatch)
            );
        }
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let (items, _, svc) = service(
            300,
            1,
            ServiceConfig::default()
                .with_sizing(BatchSizing::Fixed(1000))
                .with_flush_deadline(Duration::from_secs(3600)),
        );
        let h = svc.handle();
        let tickets: Vec<_> = (0..5)
            .map(|i| {
                h.submit(Request::Knn {
                    query: items[i].clone(),
                    k: 2,
                })
                .expect("admitted")
            })
            .collect();
        // Neither trigger can fire (huge target, hour-long deadline);
        // shutdown must still answer everything.
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.shutdown_flushes, 1);
        for t in tickets {
            assert_eq!(
                t.wait()
                    .expect("drained")
                    .result
                    .expect("ok")
                    .neighbors()
                    .len(),
                2
            );
        }
    }

    #[test]
    fn updates_flow_through_the_queue_and_stamp_epochs() {
        let (items, metric, svc) = service(
            300,
            2,
            ServiceConfig::default()
                .with_sizing(BatchSizing::Fixed(4))
                .with_flush_deadline(Duration::from_millis(1)),
        );
        let h = svc.handle();
        // insert → remove → query, submitted in order: FIFO admission is
        // the serialization order, and each response stamps its epoch.
        let t_ins = h
            .submit(Request::Insert {
                object: items[0].clone(),
            })
            .expect("admitted");
        let t_rem = h.submit(Request::Remove { id: 1 }).expect("admitted");
        let t_query = h
            .submit(Request::Knn {
                query: items[0].clone(),
                k: 3,
            })
            .expect("admitted");
        let r = t_ins.wait().expect("answered");
        assert_eq!(r.epoch, 1);
        let ack = r.result.expect("ok").update();
        assert_eq!(
            (ack.assigned.as_slice(), ack.removed),
            ([300u32].as_slice(), 0)
        );
        let r = t_rem.wait().expect("answered");
        assert_eq!(r.epoch, 2);
        assert_eq!(r.result.expect("ok").update().removed, 1);
        let r = t_query.wait().expect("answered");
        assert_eq!(r.epoch, 2, "the query reads after both updates");
        // The serialized oracle: one Gts over the same ops in epoch order.
        let mut single = Gts::build(
            &gpu_sim::Device::rtx_2080_ti(),
            items.clone(),
            metric,
            GtsParams::default(),
        )
        .expect("build");
        use metric_space::index::DynamicIndex;
        single.insert(items[0].clone()).expect("insert");
        single.remove(1).expect("remove");
        assert_eq!(
            r.result.expect("ok").neighbors(),
            single.knn_query(&items[0], 3).expect("direct"),
        );
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.updates_applied, 2);
        // Same-kind updates may coalesce into one flushed batch or split
        // across two depending on flush timing; both serialize identically.
        assert!((1..=2).contains(&stats.update_batches));
        assert_eq!(stats.epoch, 2);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn service_fences_its_index_until_shutdown() {
        let (items, svc) = replicated_service(
            200,
            1,
            2,
            ServiceConfig::default()
                .with_sizing(BatchSizing::Fixed(2))
                .with_flush_deadline(Duration::from_millis(1))
                .with_lanes(2),
        );
        use metric_space::index::DynamicIndex;
        let index = Arc::clone(svc.index());
        let err = index
            .replica(0)
            .write()
            .unwrap()
            .insert(items[0].clone())
            .expect_err("direct mutation is fenced while the service runs");
        assert!(matches!(
            err,
            metric_space::index::IndexError::Unsupported(_)
        ));
        // Through the queue it works — and reaches BOTH lanes' replicas.
        let ack = svc
            .handle()
            .submit(Request::Insert {
                object: items[0].clone(),
            })
            .expect("admitted")
            .wait()
            .expect("answered");
        assert_eq!(ack.epoch, 1);
        svc.shutdown();
        for r in 0..2 {
            assert_eq!(index.replica(r).read().unwrap().epoch(), 1);
        }
        // Shutdown released the fence: the caller owns the index again.
        index
            .replica(0)
            .write()
            .unwrap()
            .insert(items[1].clone())
            .expect("fence released after shutdown");
    }

    #[test]
    fn cost_model_sizing_is_deterministic() {
        let cfg = ServiceConfig::default().with_sizing(BatchSizing::CostModel {
            radius_hint: 2.0,
            samples: 64,
            seed: 9,
        });
        let (_, _, a) = service(500, 2, cfg);
        let (_, _, b) = service(500, 2, cfg);
        assert_eq!(
            a.batch_target(),
            b.batch_target(),
            "seeded sizing is reproducible"
        );
        assert!(a.batch_target() >= 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn stopped_service_rejects_submission() {
        let (items, _, svc) = service(200, 1, ServiceConfig::default());
        let h = svc.handle();
        drop(svc); // Drop tears the service down like shutdown.
        assert_eq!(
            h.submit(Request::Knn {
                query: items[0].clone(),
                k: 1
            })
            .expect_err("stopped"),
            ServiceError::Stopped
        );
    }
}
