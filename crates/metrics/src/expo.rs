//! Export paths for a [`MetricsSnapshot`]: the Prometheus text
//! exposition format (version 0.0.4) and a JSON rendering, plus a small
//! exposition parser used by the conformance tests to prove the text
//! round-trips.
//!
//! Both renderers consume the snapshot's canonical order unchanged, so
//! output is byte-deterministic: two scrapes of the same state are
//! identical strings.

use crate::registry::{FamilySnapshot, MetricsSnapshot, SeriesValue};
use gts_trace::LatencyHistogram;
use std::fmt::Write as _;

/// Render a snapshot in the Prometheus text exposition format:
/// `# HELP` / `# TYPE` per family, one sample line per series, histogram
/// series expanded into cumulative `_bucket{le="…"}` lines (log₂ bucket
/// upper bounds, trimmed at the highest occupied bucket), `_sum`, and
/// `_count`. Label values are escaped per the spec (`\\`, `\"`, `\n`).
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for family in &snap.families {
        let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
        for series in &family.series {
            match &series.value {
                SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {v}",
                        family.name,
                        label_block(&series.labels, None)
                    );
                }
                SeriesValue::Histogram(h) => render_histogram(&mut out, family, series, h),
            }
        }
    }
    out
}

fn render_histogram(
    out: &mut String,
    family: &FamilySnapshot,
    series: &crate::registry::SeriesSnapshot,
    h: &LatencyHistogram,
) {
    let top = h
        .buckets()
        .iter()
        .rposition(|&n| n > 0)
        .map_or(0, |b| b + 1);
    let mut cumulative = 0u64;
    for (b, &n) in h.buckets().iter().enumerate().take(top) {
        cumulative += n;
        let le = LatencyHistogram::bucket_upper(b).to_string();
        let _ = writeln!(
            out,
            "{}_bucket{} {cumulative}",
            family.name,
            label_block(&series.labels, Some(&le))
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        family.name,
        label_block(&series.labels, Some("+Inf")),
        h.count()
    );
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        family.name,
        label_block(&series.labels, None),
        h.sum()
    );
    let _ = writeln!(
        out,
        "{}_count{} {}",
        family.name,
        label_block(&series.labels, None),
        h.count()
    );
}

/// `{k1="v1",k2="v2"}` (with `le` appended last when given), or the empty
/// string for an unlabelled series.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One parsed exposition sample.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Sample name (family name plus any `_bucket`/`_sum`/`_count`
    /// suffix).
    pub name: String,
    /// Label pairs in source order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse Prometheus text exposition back into samples. Understands
/// exactly the subset [`render_prometheus`] emits (plus arbitrary
/// comments), validating name and label syntax; used by the conformance
/// tests to prove the exposition round-trips.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", ln + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (name_end, has_labels) = match line.find(['{', ' ']) {
        Some(i) => (i, line.as_bytes()[i] == b'{'),
        None => return Err(format!("no value in {line:?}")),
    };
    let name = &line[..name_end];
    if name.is_empty()
        || !name.chars().enumerate().all(|(i, c)| {
            (c.is_ascii_alphabetic() || c == '_' || c == ':') || (i > 0 && c.is_ascii_digit())
        })
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let rest = if has_labels {
        let mut chars = line[name_end + 1..].char_indices().peekable();
        let body = &line[name_end + 1..];
        loop {
            // Label key up to '='.
            let start = match chars.peek() {
                Some(&(i, '}')) => {
                    chars.next();
                    break &body[i + 1..];
                }
                Some(&(i, _)) => i,
                None => return Err("unterminated label block".into()),
            };
            let mut eq = None;
            for (i, c) in chars.by_ref() {
                if c == '=' {
                    eq = Some(i);
                    break;
                }
            }
            let eq = eq.ok_or("label without '='")?;
            let key = &body[start..eq];
            if key.is_empty() {
                return Err("empty label key".into());
            }
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err("label value must be quoted".into()),
            }
            let mut value = String::new();
            let mut closed = false;
            while let Some((_, c)) = chars.next() {
                match c {
                    '"' => {
                        closed = true;
                        break;
                    }
                    '\\' => match chars.next() {
                        Some((_, 'n')) => value.push('\n'),
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    c => value.push(c),
                }
            }
            if !closed {
                return Err("unterminated label value".into());
            }
            labels.push((key.to_string(), value));
            if let Some(&(_, ',')) = chars.peek() {
                chars.next();
            }
        }
    } else {
        &line[name_end..]
    };
    let value_str = rest.trim();
    let value = if value_str == "+Inf" {
        f64::INFINITY
    } else {
        value_str
            .parse::<f64>()
            .map_err(|e| format!("bad value {value_str:?}: {e}"))?
    };
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Render a snapshot as a single JSON document:
/// `{"families":[{"name":…,"kind":…,"help":…,"series":[{"labels":{…},
/// "value":…}|{"labels":{…},"count":…,"sum":…,"min":…,"max":…,"p50":…,
/// "p95":…,"p99":…}]}]}`. Same canonical ordering as the text
/// exposition; parseable with `gts_trace::json`.
pub fn render_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"families\":[");
    for (fi, family) in snap.families.iter().enumerate() {
        if fi > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"kind\":{},\"help\":{},\"series\":[",
            json_str(&family.name),
            json_str(family.kind.as_str()),
            json_str(&family.help)
        );
        for (si, series) in family.series.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str("{\"labels\":{");
            for (li, (k, v)) in series.labels.iter().enumerate() {
                if li > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(k), json_str(v));
            }
            out.push('}');
            match &series.value {
                SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                SeriesValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99)
                    );
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new(true);
        let c = reg.counter(
            "gts_requests_total",
            "Requests by client",
            &[("client", "alice")],
        );
        c.add(41);
        let g = reg.gauge("gts_mem_peak_bytes", "Peak bytes", &[("device", "0")]);
        g.set_max(1 << 20);
        let h = reg.histogram("gts_wait_us", "Queue wait", &[]);
        for v in [0u64, 1, 3, 100, 900] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn exposition_has_help_type_and_values() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# HELP gts_requests_total Requests by client\n"));
        assert!(text.contains("# TYPE gts_requests_total counter\n"));
        assert!(text.contains("gts_requests_total{client=\"alice\"} 41\n"));
        assert!(text.contains("gts_mem_peak_bytes{device=\"0\"} 1048576\n"));
        assert!(text.contains("gts_wait_us_count 5\n"));
        assert!(text.contains("gts_wait_us_sum 1004\n"));
        assert!(text.contains("gts_wait_us_bucket{le=\"+Inf\"} 5\n"));
        // Zeros land in the le="0" bucket; cumulative counts are monotone.
        assert!(text.contains("gts_wait_us_bucket{le=\"0\"} 1\n"));
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let reg = sample_registry();
        let text = reg.render_prometheus();
        let samples = parse_prometheus(&text).expect("parses");
        let find = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} in {text}"))
        };
        assert_eq!(find("gts_requests_total").value, 41.0);
        assert_eq!(
            find("gts_requests_total").labels,
            vec![("client".to_string(), "alice".to_string())]
        );
        assert_eq!(find("gts_wait_us_count").value, 5.0);
        assert_eq!(find("gts_wait_us_sum").value, 1004.0);
        // Bucket cumulative counts are monotone non-decreasing in le.
        let buckets: Vec<&PromSample> = samples
            .iter()
            .filter(|s| s.name == "gts_wait_us_bucket")
            .collect();
        assert!(buckets.len() >= 2);
        assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
        assert_eq!(
            buckets.last().expect("buckets").labels,
            vec![("le".to_string(), "+Inf".to_string())]
        );
    }

    #[test]
    fn label_escaping_round_trips() {
        let reg = MetricsRegistry::new(true);
        let tricky = "a\\b\"c\nd";
        reg.counter("gts_esc_total", "escapes", &[("client", tricky)])
            .inc();
        let text = reg.render_prometheus();
        assert!(text.contains("client=\"a\\\\b\\\"c\\nd\""), "{text}");
        let samples = parse_prometheus(&text).expect("parses");
        assert_eq!(samples[0].labels[0].1, tricky, "unescapes to the original");
    }

    #[test]
    fn two_renders_of_the_same_state_are_byte_identical() {
        let reg = sample_registry();
        assert_eq!(reg.render_prometheus(), reg.render_prometheus());
        assert_eq!(reg.render_json(), reg.render_json());
    }

    #[test]
    fn json_rendering_parses_with_the_trace_json_parser() {
        let reg = sample_registry();
        let doc = gts_trace::json::parse(&reg.render_json()).expect("valid JSON");
        let families = doc
            .get("families")
            .and_then(gts_trace::json::Value::as_arr)
            .expect("families array");
        assert_eq!(families.len(), 3);
        let wait = families
            .iter()
            .find(|f| f.get("name").and_then(gts_trace::json::Value::as_str) == Some("gts_wait_us"))
            .expect("gts_wait_us family");
        let series = wait
            .get("series")
            .and_then(gts_trace::json::Value::as_arr)
            .expect("series");
        assert_eq!(
            series[0]
                .get("count")
                .and_then(gts_trace::json::Value::as_num),
            Some(5.0)
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("9bad_name 1").is_err());
        assert!(parse_prometheus("name{unterminated=\"x} 1").is_err());
        assert!(parse_prometheus("name{a=\"x\"} not_a_number").is_err());
        assert!(parse_prometheus("name{a=unquoted} 1").is_err());
    }
}
