//! `gts-metrics`: the lock-cheap typed metrics registry behind the
//! serving stack's aggregate observability.
//!
//! Where `gts-trace` answers *what happened to one request*, this crate
//! answers the aggregate questions a production service is run by: how
//! busy each device is, where queue time goes per client, and whether the
//! cost model's predictions track reality. The contract mirrors tracing:
//!
//! * **Observation is free of semantic cost** — metrics read clocks and
//!   counters, never advance them, so metrics on/off changes no answer,
//!   epoch, or simulated cycle count.
//! * **Disabled means one relaxed atomic load** per call site
//!   ([`Counter::add`], [`Histogram::record`], … all early-return), kept
//!   within the 2% overhead budget by `cargo bench -p gts-bench --bench
//!   metrics_overhead`.
//! * **Exposition is deterministic** — families sort by name, series by
//!   label set with `stage` labels in the trace pipeline's canonical
//!   [`gts_trace::STAGE_ORDER`], and values in the cycle domain reproduce
//!   exactly for a fixed seed.
//!
//! Two export paths: [`MetricsRegistry::render_prometheus`] (text
//! exposition 0.0.4, parse-back checked by [`expo::parse_prometheus`])
//! and [`MetricsRegistry::render_json`]. Histograms reuse
//! [`gts_trace::LatencyHistogram`], so scraped quantiles agree with the
//! trace summary and service stats views of the same samples.
#![warn(missing_docs)]

pub mod expo;
pub mod registry;

pub use expo::{parse_prometheus, render_json, render_prometheus, PromSample};
pub use registry::{
    Counter, FamilySnapshot, Gauge, Histogram, MetricKind, MetricsRegistry, MetricsSnapshot,
    SeriesSnapshot, SeriesValue,
};
