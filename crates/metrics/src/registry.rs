//! The typed metrics registry: named families of counters, gauges, and
//! log₂ histograms, cheap enough to leave in every hot path.
//!
//! Design points:
//!
//! * **Lock-cheap when on, near-free when off.** Every handle holds a
//!   clone of the registry's `enabled` flag; a disabled registry costs
//!   one relaxed atomic load per call site. Counters stride over sharded
//!   cache-padded atomics, histograms over sharded mutexes (one
//!   uncontended lock per record), both summed exactly at snapshot time
//!   — [`LatencyHistogram::merge`] is bucket-wise, so the sharding never
//!   changes a quantile.
//! * **Deterministic exposition.** [`MetricsRegistry::snapshot`] sorts
//!   families by name and series by label set, with the `stage` label
//!   ordered by [`gts_trace::stage_rank`] — the same canonical pipeline
//!   order `TraceSummary::to_table` uses — so two scrapes of the same
//!   state are byte-identical.
//! * **Handles are `Clone + Send + Sync`** and stay valid for the life of
//!   the registry; registration is idempotent (same name + labels returns
//!   the existing series).

use gts_trace::{stage_rank, LatencyHistogram};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shard count for counters and histograms: enough to keep a handful of
/// lanes off each other's cache lines without bloating snapshots.
const VALUE_SHARDS: usize = 8;

/// A cache-line-padded atomic so striped counter shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Monotonic thread-ordinal source for shard striding.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard stripe, assigned round-robin on first use.
    static MY_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % VALUE_SHARDS;
}

fn my_shard() -> usize {
    MY_SHARD.with(|s| *s)
}

/// What a metric family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// A settable `u64` (last-write or running-max semantics).
    Gauge,
    /// A [`LatencyHistogram`] of `u64` samples.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Default)]
struct CounterCore {
    shards: [PaddedU64; VALUE_SHARDS],
}

impl CounterCore {
    fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

#[derive(Default)]
struct HistogramCore {
    shards: [Mutex<LatencyHistogram>; VALUE_SHARDS],
}

impl HistogramCore {
    fn merged(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for shard in &self.shards {
            out.merge(&shard.lock().expect("histogram shard poisoned"));
        }
        out
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    core: Arc<CounterCore>,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. No-op while the registry is disabled.
    pub fn add(&self, n: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.core.shards[my_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.core.sum()
    }
}

/// A settable gauge handle.
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    core: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge to `v`. No-op while the registry is disabled.
    pub fn set(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.core.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below (high-water-mark
    /// semantics). No-op while the registry is disabled.
    pub fn set_max(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.core.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.core.load(Ordering::Relaxed)
    }
}

/// A histogram handle recording `u64` samples into sharded
/// [`LatencyHistogram`]s.
#[derive(Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Record one sample. No-op while the registry is disabled.
    pub fn record(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut shard = self.core.shards[my_shard()]
            .lock()
            .expect("histogram shard poisoned");
        shard.record(v);
    }

    /// Merge an already-aggregated histogram in (e.g. a per-lane
    /// histogram folded at shutdown). No-op while the registry is
    /// disabled.
    pub fn merge(&self, other: &LatencyHistogram) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut shard = self.core.shards[my_shard()]
            .lock()
            .expect("histogram shard poisoned");
        shard.merge(other);
    }

    /// Replace the histogram's contents with an externally aggregated
    /// histogram. Unlike [`Histogram::merge`] this is **idempotent** —
    /// the refresh path for cumulative sources re-read at scrape time
    /// (trace summaries, cost-audit calibration), where merging on every
    /// scrape would double-count. No-op while the registry is disabled.
    pub fn replace(&self, other: &LatencyHistogram) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        for (i, shard) in self.core.shards.iter().enumerate() {
            let mut s = shard.lock().expect("histogram shard poisoned");
            *s = if i == 0 {
                other.clone()
            } else {
                LatencyHistogram::default()
            };
        }
    }

    /// Exact merged view across all shards.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.core.merged()
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Series {
    labels: Vec<(String, String)>,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// Point-in-time value of one labelled series.
#[derive(Clone, Debug)]
pub enum SeriesValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Merged histogram (boxed: a histogram is an order of magnitude
    /// larger than the scalar variants).
    Histogram(Box<LatencyHistogram>),
}

/// Point-in-time snapshot of one labelled series.
#[derive(Clone, Debug)]
pub struct SeriesSnapshot {
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The series value at snapshot time.
    pub value: SeriesValue,
}

/// Point-in-time snapshot of one metric family.
#[derive(Clone, Debug)]
pub struct FamilySnapshot {
    /// Family name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// One-line help string.
    pub help: String,
    /// Counter / gauge / histogram.
    pub kind: MetricKind,
    /// All series, in canonical exposition order.
    pub series: Vec<SeriesSnapshot>,
}

/// A full registry snapshot in canonical order: families sorted by name,
/// series sorted by label set (with `stage` values in pipeline order).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All families, sorted by name.
    pub families: Vec<FamilySnapshot>,
}

/// The registry: a named, labelled set of counters, gauges and
/// histograms behind one `enabled` switch.
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// Create a registry, on or off. Handles minted from a disabled
    /// registry early-return on every mutation until
    /// [`MetricsRegistry::set_enabled`] flips it.
    pub fn new(enabled: bool) -> Self {
        MetricsRegistry {
            enabled: Arc::new(AtomicBool::new(enabled)),
            families: Mutex::new(Vec::new()),
        }
    }

    /// Is recording on?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off. Existing handles observe the change on
    /// their next call.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Register (or fetch) the counter `name{labels}`.
    ///
    /// # Panics
    /// On an invalid metric name, or if `name` was already registered
    /// with a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, MetricKind::Counter, labels, || {
            Handle::Counter(Counter {
                enabled: Arc::clone(&self.enabled),
                core: Arc::new(CounterCore::default()),
            })
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or fetch) the gauge `name{labels}`.
    ///
    /// # Panics
    /// On an invalid metric name, or if `name` was already registered
    /// with a different kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, MetricKind::Gauge, labels, || {
            Handle::Gauge(Gauge {
                enabled: Arc::clone(&self.enabled),
                core: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or fetch) the histogram `name{labels}`.
    ///
    /// # Panics
    /// On an invalid metric name, or if `name` was already registered
    /// with a different kind.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, MetricKind::Histogram, labels, || {
            Handle::Histogram(Histogram {
                enabled: Arc::clone(&self.enabled),
                core: Arc::new(HistogramCore::default()),
            })
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        mint: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(
            valid_name(name),
            "invalid metric name {name:?}: want [a-zA-Z_:][a-zA-Z0-9_:]*"
        );
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(valid_label_key(k), "invalid label key {k:?} on {name}");
                (k.to_string(), v.to_string())
            })
            .collect();
        labels.sort();
        let mut families = self.families.lock().expect("registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind,
                    kind,
                    "metric {name} already registered as a {}",
                    f.kind.as_str()
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            return series.handle.clone();
        }
        let handle = mint();
        family.series.push(Series {
            labels,
            handle: handle.clone(),
        });
        handle
    }

    /// A consistent point-in-time view of every family, in canonical
    /// exposition order (families by name; series by label set, with the
    /// `stage` label ordered by the trace pipeline's
    /// [`gts_trace::STAGE_ORDER`]). Both export formats render from this.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.families.lock().expect("registry poisoned");
        let mut out: Vec<FamilySnapshot> = families
            .iter()
            .map(|f| {
                let mut series: Vec<SeriesSnapshot> = f
                    .series
                    .iter()
                    .map(|s| SeriesSnapshot {
                        labels: s.labels.clone(),
                        value: match &s.handle {
                            Handle::Counter(c) => SeriesValue::Counter(c.value()),
                            Handle::Gauge(g) => SeriesValue::Gauge(g.value()),
                            Handle::Histogram(h) => SeriesValue::Histogram(Box::new(h.snapshot())),
                        },
                    })
                    .collect();
                series.sort_by_key(|s| series_key(&s.labels));
                FamilySnapshot {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind,
                    series,
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { families: out }
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format (see [`crate::expo::render_prometheus`]).
    pub fn render_prometheus(&self) -> String {
        crate::expo::render_prometheus(&self.snapshot())
    }

    /// Render the whole registry as JSON (see
    /// [`crate::expo::render_json`]).
    pub fn render_json(&self) -> String {
        crate::expo::render_json(&self.snapshot())
    }
}

/// Series ordering key: label-by-label, with `stage` values ranked by the
/// canonical pipeline order before falling back to lexicographic.
fn series_key(labels: &[(String, String)]) -> Vec<(String, usize, String)> {
    labels
        .iter()
        .map(|(k, v)| {
            let rank = if k == "stage" { stage_rank(v) } else { 0 };
            (k.clone(), rank, v.clone())
        })
        .collect()
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_key(key: &str) -> bool {
    let mut chars = key.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing_and_enables_live() {
        let reg = MetricsRegistry::new(false);
        let c = reg.counter("gts_test_total", "test", &[]);
        let g = reg.gauge("gts_test_gauge", "test", &[]);
        let h = reg.histogram("gts_test_hist", "test", &[]);
        c.add(5);
        g.set(9);
        g.set_max(11);
        h.record(100);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.snapshot().count(), 0);
        reg.set_enabled(true);
        c.add(5);
        g.set_max(11);
        h.record(100);
        assert_eq!(c.value(), 5);
        assert_eq!(g.value(), 11);
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn registration_is_idempotent_per_label_set() {
        let reg = MetricsRegistry::new(true);
        let a = reg.counter("gts_req_total", "requests", &[("client", "a")]);
        let a2 = reg.counter("gts_req_total", "requests", &[("client", "a")]);
        let b = reg.counter("gts_req_total", "requests", &[("client", "b")]);
        a.inc();
        a2.inc();
        b.inc();
        assert_eq!(a.value(), 2, "same labels share one series");
        assert_eq!(b.value(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.families.len(), 1);
        assert_eq!(snap.families[0].series.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new(true);
        let _ = reg.counter("gts_x", "x", &[]);
        let _ = reg.gauge("gts_x", "x", &[]);
    }

    #[test]
    fn sharded_counters_sum_exactly_across_threads() {
        let reg = Arc::new(MetricsRegistry::new(true));
        let c = reg.counter("gts_thread_total", "per-thread", &[]);
        let h = reg.histogram("gts_thread_hist", "per-thread", &[]);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let (c, h) = (c.clone(), h.clone());
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for th in handles {
            th.join().expect("thread");
        }
        assert_eq!(c.value(), 4000);
        let merged = h.snapshot();
        assert_eq!(merged.count(), 4000);
        assert_eq!(merged.min(), 0);
        assert_eq!(merged.max(), 3999);
    }

    #[test]
    fn snapshot_orders_families_by_name_and_stage_series_by_pipeline() {
        let reg = MetricsRegistry::new(true);
        let _ = reg.counter("gts_z_total", "z", &[]);
        let _ = reg.counter("gts_a_total", "a", &[]);
        for stage in ["kernel", "lane_batch", "shard_scatter"] {
            let _ = reg.histogram("gts_stage_cycles", "stage spans", &[("stage", stage)]);
        }
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["gts_a_total", "gts_stage_cycles", "gts_z_total"]);
        let stages: Vec<&str> = snap.families[1]
            .series
            .iter()
            .map(|s| s.labels[0].1.as_str())
            .collect();
        assert_eq!(
            stages,
            ["lane_batch", "shard_scatter", "kernel"],
            "stage series follow STAGE_ORDER, not lexicographic order"
        );
    }
}
