//! Property tests for [`LatencyHistogram`]: `merge` must be *exactly* the
//! histogram of the concatenated sample streams — it backs every
//! cross-lane and cross-shard aggregation in the service stats and the
//! metrics registry, so an off-by-one here silently skews every p99.

use gts_trace::LatencyHistogram;
use proptest::prelude::*;

fn record_all(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::default();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `a.merge(&b)` is bit-identical to recording `a ++ b` into one
    /// histogram — counts, sum, min/max, and every quantile.
    #[test]
    fn merge_equals_recording_the_concatenated_streams(
        xs in proptest::collection::vec(0u64..1 << 48, 0..64),
        ys in proptest::collection::vec(0u64..1 << 48, 0..64),
    ) {
        let mut merged = record_all(&xs);
        merged.merge(&record_all(&ys));
        let mut both = xs.clone();
        both.extend_from_slice(&ys);
        let direct = record_all(&both);
        prop_assert_eq!(&merged, &direct, "merge deviates from concatenation");
        for q in [0.0f64, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q), "q = {}", q);
        }
    }

    /// Merging in either order gives the same histogram (commutativity),
    /// and merging an empty histogram is the identity.
    #[test]
    fn merge_is_commutative_with_empty_identity(
        xs in proptest::collection::vec(0u64..1 << 48, 0..64),
        ys in proptest::collection::vec(0u64..1 << 48, 0..64),
    ) {
        let (a, b) = (record_all(&xs), record_all(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut with_empty = a.clone();
        with_empty.merge(&LatencyHistogram::default());
        prop_assert_eq!(&with_empty, &a);
    }

    /// Quantiles are monotone in `q` and pinned to min/max at the ends.
    #[test]
    fn quantiles_are_monotone_and_boundary_exact(
        xs in proptest::collection::vec(0u64..1 << 48, 1..128),
    ) {
        let h = record_all(&xs);
        prop_assert_eq!(h.quantile(0.0), *xs.iter().min().expect("nonempty"));
        prop_assert_eq!(h.quantile(1.0), *xs.iter().max().expect("nonempty"));
        let mut prev = 0u64;
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile not monotone at q = {}", q);
            prev = v;
        }
    }
}
