//! The log₂-bucket latency histogram shared by the service stats and the
//! trace summary. Lives here (the bottom of the crate stack) so both
//! `gts-core` and the tracing layer can reuse one implementation;
//! `gts_core::stats` re-exports it unchanged.

/// A fixed-size log₂ histogram of `u64` samples (latencies in cycles or
/// microseconds), used by the online query service to record per-request
/// queue waits and per-batch simulated spans without unbounded memory.
///
/// Bucket `b` covers values whose bit length is `b` — i.e. `[2^(b−1), 2^b)`
/// for `b ≥ 1`, with bucket 0 holding exact zeros. Merging histograms is a
/// plain bucket-wise sum, so per-worker histograms aggregate exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
    /// Smallest sample seen; `u64::MAX` sentinel while empty so `merge`
    /// stays a plain `min` without an emptiness branch.
    min: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample seen (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate of the `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation
    /// within the log₂ bucket holding the quantile rank: the rank's bucket
    /// `[2^(b−1), 2^b)` is assumed uniformly filled by its `n_b` samples, so
    /// the estimate is `2^(b−1) + 2^(b−1) · p / n_b` where `p` is the rank's
    /// position inside the bucket. Exact for samples that fill their bucket
    /// uniformly; never off by more than the bucket width (a factor of two)
    /// otherwise. Clamped to the observed maximum so outliers don't inflate
    /// the top bucket. The boundaries are exact, not interpolated:
    /// `q = 0.0` returns the observed minimum and `q = 1.0` the observed
    /// maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                if b == 0 {
                    return 0;
                }
                // Position of the rank inside this bucket, 1-based.
                let p = rank - seen;
                let lo = 1u128 << (b - 1);
                let est = lo + (lo * u128::from(p)) / u128::from(n);
                return (est.min(u128::from(self.max)) as u64).max(self.min);
            }
            seen += n;
        }
        self.max
    }

    /// The raw log₂ bucket counts. Bucket `b` holds samples of bit length
    /// `b`, i.e. values in `[2^(b−1), 2^b)` for `b ≥ 1` and exact zeros
    /// for `b = 0` — so every sample in buckets `0..=b` is `≤ 2^b − 1`,
    /// which is exactly the cumulative `le` series a Prometheus histogram
    /// exposition needs.
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Inclusive upper bound of bucket `b` (`2^b − 1`, saturating at
    /// `u64::MAX` for the top bucket): the largest value whose bit length
    /// is at most `b`.
    pub fn bucket_upper(b: usize) -> u64 {
        if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Bucket-wise sum with another histogram (exact aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_quantiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0);
        for v in [0u64, 1, 2, 3, 900, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1906);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1906.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 0, "lowest sample is an exact zero");
        // p99 rank lands on the last sample; the top-bucket interpolation is
        // clamped to the observed max.
        assert_eq!(h.quantile(0.99), 1000);
        // The interpolated median stays inside the middle samples' range.
        assert!(h.quantile(0.5) >= 2 && h.quantile(0.5) < 900);
    }

    #[test]
    fn interpolated_quantiles_track_exact_on_uniform_samples() {
        // 1..=1023 fills every log₂ bucket uniformly, which is exactly the
        // regime where within-bucket interpolation recovers the true
        // quantile: the estimate must land within ±2 of the exact order
        // statistic (rounding inside the bucket), far tighter than the
        // factor-of-two bucket bound. The k-th order statistic here is k.
        let mut h = LatencyHistogram::default();
        for v in 1..=1023u64 {
            h.record(v);
        }
        for q in [0.10f64, 0.25, 0.50, 0.75, 0.95, 0.999] {
            let exact = ((q * 1023.0).ceil() as u64).max(1);
            let est = h.quantile(q);
            assert!(
                est.abs_diff(exact) <= 2,
                "q={q}: interpolated {est} vs exact {exact}"
            );
        }
        assert_eq!(h.quantile(1.0), 1023, "p100 is the max");
    }

    #[test]
    fn quantile_interpolates_within_a_single_bucket() {
        // All samples in one bucket [64, 128): interpolation walks the
        // bucket linearly instead of reporting the upper bound for every q.
        let mut h = LatencyHistogram::default();
        for v in [64u64, 80, 96, 112] {
            h.record(v);
        }
        let q25 = h.quantile(0.25);
        let q75 = h.quantile(0.75);
        assert!(q25 < q75, "quantiles are monotone inside a bucket");
        assert_eq!(q25, 64 + 64 / 4, "rank 1 of 4: lo + width·1/4");
        assert_eq!(q75, 64 + 64 * 3 / 4, "rank 3 of 4: lo + width·3/4");
        assert_eq!(h.quantile(1.0), 112, "clamped to the observed max");
    }

    #[test]
    fn empty_histogram_quantiles_and_min_are_zero() {
        let h = LatencyHistogram::default();
        for q in [-1.0f64, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(h.quantile(q), 0, "q={q} on an empty histogram");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn quantile_boundaries_are_exact_order_statistics() {
        let mut h = LatencyHistogram::default();
        for v in [7u64, 100, 3_000, 9_999] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 7, "q=0 is the observed minimum");
        assert_eq!(h.quantile(1.0), 9_999, "q=1 is the observed maximum");
        // Out-of-range inputs clamp to the boundaries.
        assert_eq!(h.quantile(-0.5), 7);
        assert_eq!(h.quantile(1.5), 9_999);
        assert_eq!(h.min(), 7);
        // Interior quantiles never escape the observed [min, max] range.
        for q in [0.01f64, 0.25, 0.5, 0.75, 0.99] {
            let est = h.quantile(q);
            assert!((7..=9_999).contains(&est), "q={q}: {est}");
        }
    }

    #[test]
    fn histogram_merge_is_bucketwise_sum() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut all = LatencyHistogram::default();
        for v in [5u64, 17, 64] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 1_000_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all, "merge equals recording everything in one");
    }
}
