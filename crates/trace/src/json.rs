//! A minimal JSON reader used to validate exported Chrome traces inside
//! the test suite — no external viewer (or serde) needed. It parses the
//! full JSON grammar the exporter emits (objects, arrays, strings with
//! escapes, numbers, booleans, null) and nothing exotic beyond it.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys sorted (JSON objects are unordered).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key` when this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number when this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through untouched.
                let len = utf8_len(c);
                out.push_str(
                    std::str::from_utf8(&b[*pos..*pos + len])
                        .map_err(|_| format!("invalid utf8 at byte {pos}"))?,
                );
                *pos += len;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_str(b, pos)?;
        expect(b, pos, b':')?;
        out.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"[{"a": 1.5, "b": [true, null, "x\n\"y\""]}, -3]"#).expect("parses");
        let arr = v.as_arr().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("a").and_then(Value::as_num), Some(1.5));
        assert_eq!(
            arr[0].get("b").and_then(|b| b.as_arr()).map(|b| b.len()),
            Some(3)
        );
        assert_eq!(arr[1].as_num(), Some(-3.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["[1,", "{\"a\" 1}", "[1] x", "\"unterminated", "{1: 2}"] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }
}
