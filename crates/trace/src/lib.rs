//! # gts-trace
//!
//! End-to-end tracing for the GTS serving stack: a lock-cheap,
//! **deterministic** recorder that collects typed [`TraceEvent`]s from
//! every layer — admission ([`RequestId`]), microbatcher, executor lanes,
//! replicas, shards, descent levels, and simulated kernel launches — plus
//! three export paths:
//!
//! * [`TraceRecorder::to_chrome_json`] — Chrome/Perfetto `trace_event`
//!   JSON on the simulated-cycle timebase (lanes and devices as tracks);
//! * [`TraceRecorder::summary`] — a [`TraceSummary`] per-stage latency
//!   table built on [`LatencyHistogram`];
//! * the **flight recorder** — on a device fault, lane panic, or dead
//!   shard, the last N events are snapshotted into a [`FlightDump`] so a
//!   chaos-soak postmortem is self-contained.
//!
//! ## Determinism contract
//!
//! Events *observe* clocks, never advance them: recording an event reads
//! the simulated device clock that the traced operation already moved, so
//! answers, epochs, and simulated cycle counts are bit-identical with
//! tracing on or off. Host wall time is carried alongside
//! ([`TraceEvent::wall_us`]) but excluded from the
//! [determinism projection](TraceRecorder::determinism_projection), which
//! sorts events by a content key on the cycle timebase — for a fixed seed
//! and arrival sequence the projection reproduces exactly (provided the
//! ring capacity held every event; an overflowing ring drops oldest-first
//! per ring, which is reported via [`TraceRecorder::dropped`]).
//!
//! Context (which request/batch/lane/replica/shard an event belongs to)
//! rides a thread-local [`TraceCtx`] set by the layer that knows it;
//! thread-spawning layers re-plant the parent context in their workers.

#![warn(missing_docs)]

mod hist;
pub mod json;

pub use hist::LatencyHistogram;

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A per-request identity minted at admission (`SubmitHandle::submit`) and
/// carried through batching, lanes, replicas, and shards, so any event in
/// a trace links back to the client request that paid for it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The propagation context an event is recorded under: which batch, lane,
/// replica, and shard the current thread is working for. Layers fill in
/// the fields they own ([`TraceCtx::with_lane`] etc.) and plant the result
/// thread-locally with [`scoped_ctx`]; thread-spawning layers capture
/// [`current_ctx`] and re-plant it inside their workers (thread-locals do
/// not inherit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceCtx {
    /// The request this event serves, when the operation is per-request
    /// (most execution events serve a whole batch and leave this `None`;
    /// the `BatchMember` events recorded at batch start provide the
    /// request ↔ batch association instead).
    pub request: Option<RequestId>,
    /// Microbatcher flush sequence number of the batch being executed.
    pub batch: Option<u64>,
    /// Executor lane driving the work.
    pub lane: Option<u32>,
    /// Replica the work was routed to.
    pub replica: Option<u32>,
    /// Shard (within the replica) the work runs on.
    pub shard: Option<u32>,
}

impl TraceCtx {
    /// This context with the request set.
    pub fn with_request(mut self, r: RequestId) -> TraceCtx {
        self.request = Some(r);
        self
    }

    /// This context with the batch sequence number set.
    pub fn with_batch(mut self, b: u64) -> TraceCtx {
        self.batch = Some(b);
        self
    }

    /// This context with the lane set.
    pub fn with_lane(mut self, l: u32) -> TraceCtx {
        self.lane = Some(l);
        self
    }

    /// This context with the replica set.
    pub fn with_replica(mut self, r: u32) -> TraceCtx {
        self.replica = Some(r);
        self
    }

    /// This context with the shard set.
    pub fn with_shard(mut self, s: u32) -> TraceCtx {
        self.shard = Some(s);
        self
    }
}

thread_local! {
    static CTX: Cell<TraceCtx> = const { Cell::new(TraceCtx {
        request: None,
        batch: None,
        lane: None,
        replica: None,
        shard: None,
    }) };
}

/// The calling thread's current trace context (empty if none was planted).
pub fn current_ctx() -> TraceCtx {
    CTX.with(|c| c.get())
}

/// Plant `ctx` as the calling thread's context until the returned guard
/// drops, then restore the previous one. Nesting composes: inner scopes
/// shadow outer ones.
pub fn scoped_ctx(ctx: TraceCtx) -> CtxScope {
    let prev = CTX.with(|c| c.replace(ctx));
    CtxScope { prev }
}

/// Guard returned by [`scoped_ctx`]; restores the previous context on drop.
#[must_use = "dropping the scope immediately restores the previous context"]
pub struct CtxScope {
    prev: TraceCtx,
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CTX.with(|c| c.set(prev));
    }
}

/// Why a replica-layer retry happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RetryCause {
    /// An injected device fault killed the attempt.
    DeviceFault,
    /// A non-device panic (e.g. a user metric) killed the attempt.
    Panic,
}

/// What a trace event records. Span kinds carry a real `[begin, end]`
/// cycle interval; the rest are instants (`begin == end`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Instant, lane-side, once per batch before execution: the batch
    /// starts executing on its lane.
    BatchStart {
        /// Requests in the batch.
        size: u32,
        /// True for an update (write) batch.
        update: bool,
    },
    /// Instant, lane-side, once per request in a batch: request `request`
    /// rides the batch in [`TraceCtx::batch`] — the association the flight
    /// recorder uses to walk from a faulting kernel back to the requests
    /// that paid for it.
    BatchMember {
        /// The member request.
        request: RequestId,
    },
    /// Span: a lane executing one batch end-to-end (replica routing,
    /// scatter, merge), on the lane's preferred-replica critical path.
    LaneBatch {
        /// Requests in the batch.
        size: u32,
        /// True for an update (write) batch.
        update: bool,
    },
    /// Instant: the replica layer retried after a failed attempt.
    ReplicaRetry {
        /// What killed the attempt.
        cause: RetryCause,
    },
    /// Instant: the whole-replica fast path was unavailable and the batch
    /// fell to the degraded per-shard composition.
    Degraded,
    /// Span: one shard answering its slice of a scattered batch.
    ShardScatter,
    /// Instant: per-shard answers merged back into global ones.
    Merge {
        /// Per-query result lists merged.
        results: u64,
    },
    /// Span: one descent-engine level (expansion or leaf verification).
    Level {
        /// Tree level processed (root = 1; `height` = leaf verification).
        level: u32,
        /// Frontier entries alive at this level.
        frontier: u64,
        /// Cross-shard bound tightenings received during the level.
        tightened: u64,
        /// Leaf table entries verified with a real distance computation
        /// (non-zero only at the leaf level).
        verified: u64,
    },
    /// Span: one simulated kernel launch on a device.
    Kernel {
        /// Total scalar-op work units charged.
        work: u64,
        /// Critical-path span of the kernel.
        span: u64,
    },
    /// Instant: an armed device fault fired on this device.
    Fault {
        /// True when the fault quarantines the device.
        permanent: bool,
    },
    /// Instant: a batch failed typed because a shard lost every replica.
    ShardUnavailable {
        /// The dead shard.
        shard: u32,
    },
    /// Instant: a panic was caught at a lane boundary.
    LanePanic,
}

impl EventKind {
    /// Short stable name (Chrome track label and summary stage).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::BatchStart { .. } => "batch_start",
            EventKind::BatchMember { .. } => "batch_member",
            EventKind::LaneBatch { .. } => "lane_batch",
            EventKind::ReplicaRetry { .. } => "replica_retry",
            EventKind::Degraded => "degraded",
            EventKind::ShardScatter => "shard_scatter",
            EventKind::Merge { .. } => "merge",
            EventKind::Level { .. } => "level",
            EventKind::Kernel { .. } => "kernel",
            EventKind::Fault { .. } => "fault",
            EventKind::ShardUnavailable { .. } => "shard_unavailable",
            EventKind::LanePanic => "lane_panic",
        }
    }

    /// True for kinds that carry a real `[begin, end]` duration.
    pub fn is_span(&self) -> bool {
        matches!(
            self,
            EventKind::LaneBatch { .. }
                | EventKind::ShardScatter
                | EventKind::Level { .. }
                | EventKind::Kernel { .. }
        )
    }
}

/// The canonical stage order: every name [`EventKind::name`] can produce,
/// listed in the order a request travels the serving stack (admission →
/// lane → replica → shard → descent level → kernel), with the
/// failure-path instants trailing their layer. This single constant
/// orders both [`TraceSummary::to_table`] and the stage-labelled series
/// of the `gts-metrics` Prometheus/JSON exposition, so the two views of
/// the same pipeline always line up row for row.
pub const STAGE_ORDER: [&str; 12] = [
    "batch_start",
    "batch_member",
    "lane_batch",
    "replica_retry",
    "degraded",
    "shard_scatter",
    "merge",
    "level",
    "kernel",
    "fault",
    "shard_unavailable",
    "lane_panic",
];

/// Rank of `stage` in [`STAGE_ORDER`]. Unknown names sort after every
/// known stage (they still render — deterministically, alphabetically —
/// rather than disappearing).
pub fn stage_rank(stage: &str) -> usize {
    STAGE_ORDER
        .iter()
        .position(|s| *s == stage)
        .unwrap_or(STAGE_ORDER.len())
}

/// One recorded event: a kind, the context it happened under, its interval
/// on the simulated-cycle timebase, the device it ran on (if any), and the
/// host wall-clock stamp (observability only — excluded from the
/// determinism projection).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated device cycles when the operation began.
    pub begin_cycles: u64,
    /// Simulated device cycles when the operation ended (`== begin` for
    /// instants).
    pub end_cycles: u64,
    /// Device ordinal (pool index) for device-side events.
    pub device: Option<u32>,
    /// Propagation context the event was recorded under.
    pub ctx: TraceCtx,
    /// What happened.
    pub kind: EventKind,
    /// Host microseconds since the recorder was created. Wall time only —
    /// never part of determinism comparisons.
    pub wall_us: u64,
}

impl TraceEvent {
    /// An instant event at `at` cycles.
    pub fn instant(kind: EventKind, ctx: TraceCtx, device: Option<u32>, at: u64) -> TraceEvent {
        TraceEvent {
            begin_cycles: at,
            end_cycles: at,
            device,
            ctx,
            kind,
            wall_us: 0,
        }
    }

    /// A span event over `[begin, end]` cycles.
    pub fn span(
        kind: EventKind,
        ctx: TraceCtx,
        device: Option<u32>,
        begin: u64,
        end: u64,
    ) -> TraceEvent {
        TraceEvent {
            begin_cycles: begin,
            end_cycles: end,
            device,
            ctx,
            kind,
            wall_us: 0,
        }
    }

    /// Content sort key: everything except wall time. Two runs of the same
    /// seeded workload produce the same multiset of events with the same
    /// keys, so sorting by it yields identical streams.
    fn sort_key(&self) -> (u64, u64, Option<u32>, TraceCtx, EventKind) {
        (
            self.begin_cycles,
            self.end_cycles,
            self.device,
            self.ctx,
            self.kind.clone(),
        )
    }
}

/// Configuration of a [`TraceRecorder`], embedded `Copy`-cheap in the
/// service config.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Disabled tracing is a single relaxed atomic load on
    /// every would-be record site.
    pub enabled: bool,
    /// Events retained per ring shard (the recorder keeps
    /// [`NUM_RINGS`] rings, so total capacity is `NUM_RINGS *
    /// ring_capacity`). Oldest events in a full ring are dropped.
    pub ring_capacity: usize,
    /// Events snapshotted into each [`FlightDump`] (the "last N").
    pub flight_events: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: false,
            ring_capacity: 4096,
            flight_events: 256,
        }
    }
}

/// What triggered a flight-recorder dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DumpReason {
    /// An armed device fault fired.
    DeviceFault,
    /// A panic was caught at a lane boundary.
    LanePanic,
    /// A batch failed because a shard lost every replica.
    ShardUnavailable,
}

/// A point-of-failure snapshot: the last N events (canonical cycle order)
/// at the moment a fault/panic/dead-shard was observed.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightDump {
    /// Why the dump was taken.
    pub reason: DumpReason,
    /// Host microseconds since recorder creation when the dump was taken.
    pub wall_us: u64,
    /// The snapshotted events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// Ring shards in a recorder. Events are routed by the most specific
/// context available (device, else shard, else lane), so concurrent
/// writers from different devices or lanes rarely contend on one lock.
pub const NUM_RINGS: usize = 16;

/// Flight dumps retained before the oldest is discarded.
const MAX_DUMPS: usize = 32;

/// The sharded ring-buffer trace collector. One recorder serves one
/// service instance (never process-global: concurrent services in one
/// process each get their own). All methods take `&self`; recording is a
/// relaxed-load no-op when disabled.
#[derive(Debug)]
pub struct TraceRecorder {
    enabled: AtomicBool,
    rings: Vec<Mutex<VecDeque<TraceEvent>>>,
    ring_capacity: usize,
    flight_events: usize,
    dropped: AtomicU64,
    dumps: Mutex<Vec<FlightDump>>,
    epoch: Instant,
}

impl TraceRecorder {
    /// A recorder with the given configuration (enabled per the config).
    pub fn new(cfg: TraceConfig) -> Arc<TraceRecorder> {
        Arc::new(TraceRecorder {
            enabled: AtomicBool::new(cfg.enabled),
            rings: (0..NUM_RINGS)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            ring_capacity: cfg.ring_capacity.max(1),
            flight_events: cfg.flight_events.max(1),
            dropped: AtomicU64::new(0),
            dumps: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        })
    }

    /// Whether recording is currently on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Events dropped from full rings so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn ring_of(&self, ev: &TraceEvent) -> usize {
        let key = if let Some(d) = ev.device {
            d as usize
        } else if let Some(s) = ev.ctx.shard {
            NUM_RINGS / 2 + s as usize
        } else if let Some(l) = ev.ctx.lane {
            NUM_RINGS / 4 + l as usize
        } else {
            0
        };
        key % NUM_RINGS
    }

    /// Record one event, stamping its wall clock. No-op when disabled.
    pub fn record(&self, mut ev: TraceEvent) {
        if !self.enabled() {
            return;
        }
        ev.wall_us = self.epoch.elapsed().as_micros() as u64;
        let mut ring = self.rings[self.ring_of(&ev)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if ring.len() >= self.ring_capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// All currently-retained events in canonical order (content sort key
    /// on the cycle timebase — deterministic for a deterministic workload).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for ring in &self.rings {
            out.extend(
                ring.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter()
                    .cloned(),
            );
        }
        out.sort_by_key(|a| a.sort_key());
        out
    }

    /// The determinism projection: [`TraceRecorder::events`] with wall
    /// clocks zeroed. Two runs of the same seeded workload must produce
    /// equal projections — this is what the invariance tests compare.
    pub fn determinism_projection(&self) -> Vec<TraceEvent> {
        let mut evs = self.events();
        for e in &mut evs {
            e.wall_us = 0;
        }
        evs
    }

    /// Discard all retained events (dumps and drop counts are kept).
    pub fn clear(&self) {
        for ring in &self.rings {
            ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Snapshot the last N events into a [`FlightDump`]. Called by the
    /// fault paths (device fault, lane panic, dead shard); callable
    /// manually too. No-op when disabled.
    pub fn flight_dump(&self, reason: DumpReason) {
        if !self.enabled() {
            return;
        }
        let evs = self.events();
        let tail = evs.len().saturating_sub(self.flight_events);
        let dump = FlightDump {
            reason,
            wall_us: self.epoch.elapsed().as_micros() as u64,
            events: evs[tail..].to_vec(),
        };
        let mut dumps = self.dumps.lock().unwrap_or_else(|e| e.into_inner());
        if dumps.len() >= MAX_DUMPS {
            dumps.remove(0);
        }
        dumps.push(dump);
    }

    /// All flight dumps taken so far, oldest first.
    pub fn flight_dumps(&self) -> Vec<FlightDump> {
        self.dumps.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Per-stage latency table over the retained span events.
    pub fn summary(&self) -> TraceSummary {
        let mut stages: BTreeMap<&'static str, LatencyHistogram> = BTreeMap::new();
        let mut events = 0u64;
        for ev in self.events() {
            events += 1;
            if ev.kind.is_span() {
                stages
                    .entry(ev.kind.name())
                    .or_default()
                    .record(ev.end_cycles - ev.begin_cycles);
            }
        }
        TraceSummary { events, stages }
    }

    /// Export the retained events as Chrome `trace_event` JSON (the
    /// "JSON Array Format"): load the string in Perfetto / `chrome://tracing`
    /// to see lanes and devices as tracks on the simulated-cycle timebase
    /// (1 cycle rendered as 1 µs). Always valid JSON; shape checkable with
    /// [`validate_chrome_trace`].
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        // Track-naming metadata: pid 1 = the service (lanes as threads),
        // pid 2 = the devices.
        push_metadata(&mut out, 1, "process_name", "gts-service");
        out.push(',');
        push_metadata(&mut out, 2, "process_name", "gpu-sim devices");
        for ev in self.events() {
            out.push(',');
            push_event(&mut out, &ev);
        }
        out.push(']');
        out
    }
}

/// Chrome track of an event: `(pid, tid)`. Device-side events render under
/// the devices process keyed by device ordinal; everything else renders
/// under the service process keyed by lane.
fn track(ev: &TraceEvent) -> (u32, u32) {
    match ev.device {
        Some(d) => (2, d),
        None => (1, ev.ctx.lane.unwrap_or(0)),
    }
}

fn push_metadata(out: &mut String, pid: u32, name: &str, value: &str) {
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"{name}\",\"args\":{{\"name\":\"{value}\"}}}}"
    ));
}

fn push_event(out: &mut String, ev: &TraceEvent) {
    let (pid, tid) = track(ev);
    let name = ev.kind.name();
    let mut args = Vec::new();
    if let Some(r) = ev.ctx.request {
        args.push(("request", r.0));
    }
    if let Some(b) = ev.ctx.batch {
        args.push(("batch", b));
    }
    if let Some(l) = ev.ctx.lane {
        args.push(("lane", u64::from(l)));
    }
    if let Some(r) = ev.ctx.replica {
        args.push(("replica", u64::from(r)));
    }
    if let Some(s) = ev.ctx.shard {
        args.push(("shard", u64::from(s)));
    }
    args.push(("wall_us", ev.wall_us));
    match &ev.kind {
        EventKind::BatchStart { size, update } | EventKind::LaneBatch { size, update } => {
            args.push(("size", u64::from(*size)));
            args.push(("update", u64::from(*update)));
        }
        EventKind::BatchMember { request } => args.push(("member", request.0)),
        EventKind::ReplicaRetry { cause } => {
            args.push(("device_fault", u64::from(*cause == RetryCause::DeviceFault)));
        }
        EventKind::Merge { results } => args.push(("results", *results)),
        EventKind::Level {
            level,
            frontier,
            tightened,
            verified,
        } => {
            args.push(("level", u64::from(*level)));
            args.push(("frontier", *frontier));
            args.push(("tightened", *tightened));
            args.push(("verified", *verified));
        }
        EventKind::Kernel { work, span } => {
            args.push(("work", *work));
            args.push(("span", *span));
        }
        EventKind::Fault { permanent } => args.push(("permanent", u64::from(*permanent))),
        EventKind::ShardUnavailable { shard } => args.push(("dead_shard", u64::from(*shard))),
        EventKind::Degraded | EventKind::LanePanic | EventKind::ShardScatter => {}
    }
    let args_json = args
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect::<Vec<_>>()
        .join(",");
    if ev.kind.is_span() {
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{name}\",\"ts\":{},\"dur\":{},\"args\":{{{args_json}}}}}",
            ev.begin_cycles,
            ev.end_cycles - ev.begin_cycles,
        ));
    } else {
        out.push_str(&format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{name}\",\"ts\":{},\"s\":\"t\",\"args\":{{{args_json}}}}}",
            ev.begin_cycles,
        ));
    }
}

/// Shape-check an exported Chrome trace without an external viewer: valid
/// JSON, top-level array, every element an object carrying `ph`, `name`,
/// `pid`, `tid` (and `ts` + `dur` as the phase demands). Returns the
/// number of non-metadata events.
pub fn validate_chrome_trace(src: &str) -> Result<usize, String> {
    let doc = json::parse(src)?;
    let arr = doc.as_arr().ok_or("top level must be a JSON array")?;
    let mut events = 0usize;
    for (i, ev) in arr.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(json::Value::as_str)
            .ok_or(format!("event {i}: missing \"ph\""))?;
        ev.get("name")
            .and_then(json::Value::as_str)
            .ok_or(format!("event {i}: missing \"name\""))?;
        for key in ["pid", "tid"] {
            ev.get(key)
                .and_then(json::Value::as_num)
                .ok_or(format!("event {i}: missing numeric \"{key}\""))?;
        }
        match ph {
            "M" => {
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .ok_or(format!("event {i}: metadata without args.name"))?;
                continue;
            }
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(json::Value::as_num)
                    .ok_or(format!("event {i}: complete event without \"dur\""))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative duration"));
                }
            }
            "i" => {
                ev.get("s")
                    .and_then(json::Value::as_str)
                    .ok_or(format!("event {i}: instant without scope \"s\""))?;
            }
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
        ev.get("ts")
            .and_then(json::Value::as_num)
            .ok_or(format!("event {i}: missing numeric \"ts\""))?;
        events += 1;
    }
    Ok(events)
}

/// Per-stage latency breakdown over the span events of a trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Total retained events (spans and instants).
    pub events: u64,
    /// Stage name → histogram of span durations in simulated cycles.
    pub stages: BTreeMap<&'static str, LatencyHistogram>,
}

impl TraceSummary {
    /// Render the breakdown as an aligned text table (count, p50, p95,
    /// p99, max per stage). Rows follow the canonical [`STAGE_ORDER`]
    /// (pipeline order, not alphabetical) — the same order the
    /// `gts-metrics` exposition uses — so the table is deterministic and
    /// comparable across runs and against scrapes.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "stage            count      p50        p95        p99        max (cycles)\n",
        );
        let mut rows: Vec<(&&'static str, &LatencyHistogram)> = self.stages.iter().collect();
        rows.sort_by_key(|(stage, _)| (stage_rank(stage), **stage));
        for (stage, h) in rows {
            out.push_str(&format!(
                "{:<16} {:<10} {:<10} {:<10} {:<10} {}\n",
                stage,
                h.count(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, begin: u64, end: u64, device: Option<u32>) -> TraceEvent {
        TraceEvent::span(kind, current_ctx(), device, begin, end)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = TraceRecorder::new(TraceConfig::default());
        assert!(!rec.enabled());
        rec.record(ev(EventKind::Kernel { work: 1, span: 1 }, 0, 5, Some(0)));
        rec.flight_dump(DumpReason::DeviceFault);
        assert!(rec.events().is_empty());
        assert!(rec.flight_dumps().is_empty());
    }

    #[test]
    fn scoped_ctx_nests_and_restores() {
        assert_eq!(current_ctx(), TraceCtx::default());
        {
            let _outer = scoped_ctx(TraceCtx::default().with_lane(1).with_batch(7));
            assert_eq!(current_ctx().lane, Some(1));
            {
                let _inner = scoped_ctx(current_ctx().with_shard(3));
                assert_eq!(current_ctx().batch, Some(7));
                assert_eq!(current_ctx().shard, Some(3));
            }
            assert_eq!(current_ctx().shard, None, "inner scope popped");
            assert_eq!(current_ctx().lane, Some(1));
        }
        assert_eq!(current_ctx(), TraceCtx::default(), "outer scope popped");
    }

    #[test]
    fn events_sort_canonically_and_project_deterministically() {
        let cfg = TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        };
        let run = || {
            let rec = TraceRecorder::new(cfg);
            // Record out of order and from different "devices".
            rec.record(ev(EventKind::Kernel { work: 9, span: 3 }, 10, 14, Some(1)));
            rec.record(ev(EventKind::Kernel { work: 4, span: 2 }, 0, 3, Some(0)));
            rec.record(ev(EventKind::ShardScatter, 0, 14, Some(0)));
            rec.determinism_projection()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "projection reproduces across runs");
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|w| w[0].begin_cycles <= w[1].begin_cycles));
        assert!(a.iter().all(|e| e.wall_us == 0), "wall time projected out");
    }

    #[test]
    fn full_rings_drop_oldest_and_count_drops() {
        let rec = TraceRecorder::new(TraceConfig {
            enabled: true,
            ring_capacity: 4,
            flight_events: 2,
        });
        for i in 0..10u64 {
            rec.record(ev(
                EventKind::Kernel { work: i, span: 1 },
                i,
                i + 1,
                Some(0),
            ));
        }
        let evs = rec.events();
        assert_eq!(evs.len(), 4, "ring holds the last `ring_capacity` events");
        assert_eq!(rec.dropped(), 6);
        assert_eq!(evs[0].begin_cycles, 6, "oldest were dropped");
    }

    #[test]
    fn flight_dump_snapshots_the_tail() {
        let rec = TraceRecorder::new(TraceConfig {
            enabled: true,
            ring_capacity: 64,
            flight_events: 3,
        });
        for i in 0..8u64 {
            rec.record(ev(
                EventKind::Kernel { work: i, span: 1 },
                i,
                i + 1,
                Some(0),
            ));
        }
        rec.record(TraceEvent::instant(
            EventKind::Fault { permanent: false },
            current_ctx(),
            Some(0),
            8,
        ));
        rec.flight_dump(DumpReason::DeviceFault);
        let dumps = rec.flight_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, DumpReason::DeviceFault);
        assert_eq!(dumps[0].events.len(), 3, "exactly the last N");
        assert_eq!(
            dumps[0].events.last().expect("tail").kind,
            EventKind::Fault { permanent: false },
            "the triggering fault is the newest event"
        );
    }

    #[test]
    fn summary_buckets_spans_by_stage() {
        let rec = TraceRecorder::new(TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        });
        rec.record(ev(EventKind::Kernel { work: 1, span: 8 }, 0, 8, Some(0)));
        rec.record(ev(EventKind::Kernel { work: 1, span: 16 }, 8, 24, Some(0)));
        rec.record(ev(EventKind::ShardScatter, 0, 24, Some(0)));
        rec.record(TraceEvent::instant(
            EventKind::Merge { results: 4 },
            current_ctx(),
            None,
            24,
        ));
        let sum = rec.summary();
        assert_eq!(sum.events, 4);
        assert_eq!(sum.stages["kernel"].count(), 2);
        assert_eq!(sum.stages["kernel"].max(), 16);
        assert_eq!(sum.stages["shard_scatter"].count(), 1);
        assert!(!sum.stages.contains_key("merge"), "instants aren't spans");
        let table = sum.to_table();
        assert!(table.contains("kernel"), "table lists the stage: {table}");
    }

    #[test]
    fn stage_order_covers_every_event_kind_exactly_once() {
        let all = [
            EventKind::BatchStart {
                size: 1,
                update: false,
            },
            EventKind::BatchMember {
                request: RequestId(0),
            },
            EventKind::LaneBatch {
                size: 1,
                update: false,
            },
            EventKind::ReplicaRetry {
                cause: RetryCause::DeviceFault,
            },
            EventKind::Degraded,
            EventKind::ShardScatter,
            EventKind::Merge { results: 0 },
            EventKind::Level {
                level: 0,
                frontier: 0,
                tightened: 0,
                verified: 0,
            },
            EventKind::Kernel { work: 0, span: 0 },
            EventKind::Fault { permanent: false },
            EventKind::ShardUnavailable { shard: 0 },
            EventKind::LanePanic,
        ];
        assert_eq!(all.len(), STAGE_ORDER.len());
        for kind in &all {
            assert!(
                stage_rank(kind.name()) < STAGE_ORDER.len(),
                "{} missing from STAGE_ORDER",
                kind.name()
            );
        }
        let mut sorted = STAGE_ORDER.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), STAGE_ORDER.len(), "no duplicate stages");
        assert_eq!(stage_rank("no_such_stage"), STAGE_ORDER.len());
    }

    #[test]
    fn summary_table_rows_follow_the_canonical_stage_order() {
        let rec = TraceRecorder::new(TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        });
        // Recorded out of pipeline order on purpose; `kernel` would sort
        // before `lane_batch` and `shard_scatter` alphabetically.
        rec.record(ev(EventKind::Kernel { work: 1, span: 4 }, 0, 4, Some(0)));
        rec.record(ev(EventKind::ShardScatter, 0, 6, Some(0)));
        rec.record(ev(
            EventKind::LaneBatch {
                size: 2,
                update: false,
            },
            0,
            8,
            Some(0),
        ));
        let table = rec.summary().to_table();
        let pos = |stage: &str| table.find(stage).unwrap_or_else(|| panic!("{stage} row"));
        assert!(
            pos("lane_batch") < pos("shard_scatter") && pos("shard_scatter") < pos("kernel"),
            "rows follow STAGE_ORDER, not alphabetical order:\n{table}"
        );
    }

    #[test]
    fn chrome_export_validates_and_carries_tracks() {
        let rec = TraceRecorder::new(TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        });
        {
            let _ctx = scoped_ctx(
                TraceCtx::default()
                    .with_request(RequestId(7))
                    .with_batch(3)
                    .with_lane(1)
                    .with_replica(0)
                    .with_shard(2),
            );
            rec.record(ev(EventKind::Kernel { work: 10, span: 4 }, 5, 9, Some(2)));
            rec.record(TraceEvent::instant(
                EventKind::BatchMember {
                    request: RequestId(7),
                },
                current_ctx(),
                None,
                5,
            ));
        }
        let json_str = rec.to_chrome_json();
        let n = validate_chrome_trace(&json_str).expect("valid trace");
        assert_eq!(n, 2, "two non-metadata events");
        let doc = json::parse(&json_str).expect("parses");
        let arr = doc.as_arr().expect("array");
        let kernel = arr
            .iter()
            .find(|e| e.get("name").and_then(json::Value::as_str) == Some("kernel"))
            .expect("kernel event exported");
        assert_eq!(kernel.get("pid").and_then(json::Value::as_num), Some(2.0));
        assert_eq!(kernel.get("tid").and_then(json::Value::as_num), Some(2.0));
        assert_eq!(kernel.get("ts").and_then(json::Value::as_num), Some(5.0));
        assert_eq!(kernel.get("dur").and_then(json::Value::as_num), Some(4.0));
        assert_eq!(
            kernel
                .get("args")
                .and_then(|a| a.get("request"))
                .and_then(json::Value::as_num),
            Some(7.0)
        );
    }

    #[test]
    fn validator_rejects_wrong_shapes() {
        assert!(validate_chrome_trace("{}").is_err(), "not an array");
        assert!(
            validate_chrome_trace("[{\"name\":\"x\"}]").is_err(),
            "missing ph"
        );
        assert!(
            validate_chrome_trace("[{\"ph\":\"X\",\"name\":\"x\",\"pid\":1,\"tid\":0,\"ts\":1}]")
                .is_err(),
            "complete event without dur"
        );
    }
}
