//! Index snapshots: serialize a constructed GTS structure so it can be
//! persisted or shipped between processes without paying reconstruction.
//!
//! The snapshot contains the *index* (node list, table list, liveness,
//! cache ids, parameters) but **not** the raw objects — those belong to the
//! caller's object store and are re-attached on [`Gts::restore`](crate::index::Gts::restore), which
//! validates that the provided store is consistent with the snapshot
//! (object count, id ranges). The format is a versioned little-endian
//! binary layout with no external dependencies.

use crate::node::{Node, NodeList, TreeShape};
use crate::params::GtsParams;
use crate::table::{TableEntry, TableList};
use metric_space::index::IndexError;

/// Magic + version tag (bumped whenever the layout changes; `GTS2` added
/// the `use_arena` parameter byte).
const MAGIC: &[u8; 4] = b"GTS2";

/// Little-endian writer (shared with the sharded-index snapshot, which
/// embeds per-shard `encode` payloads in its own envelope).
pub(crate) struct W(pub(crate) Vec<u8>);

impl W {
    pub(crate) fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian reader with bounds checking.
pub(crate) struct R<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> R<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], IndexError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(IndexError::Unsupported("truncated snapshot"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, IndexError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, IndexError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, IndexError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, IndexError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Serializable view of the index internals (crate-private bridge).
pub(crate) struct SnapshotParts<'a> {
    pub params: &'a GtsParams,
    pub nodes: &'a NodeList,
    pub table: &'a TableList,
    pub live: &'a [bool],
    pub cache_ids: &'a [u32],
}

pub(crate) fn encode(parts: SnapshotParts<'_>) -> Vec<u8> {
    let mut w = W(Vec::with_capacity(
        64 + parts.nodes.len() * 40 + parts.table.len() * 16,
    ));
    w.0.extend_from_slice(MAGIC);
    // Parameters.
    w.u32(parts.params.node_capacity);
    w.u64(parts.params.seed);
    w.u64(parts.params.cache_capacity_bytes as u64);
    w.u8(u8::from(parts.params.two_sided_pruning));
    w.u8(u8::from(parts.params.fft_pivots));
    w.u8(u8::from(parts.params.query_grouping));
    w.u8(u8::from(parts.params.use_arena));
    // Tree shape + nodes.
    let shape = parts.nodes.shape();
    w.u32(shape.nc);
    w.u32(shape.h);
    w.u64(parts.nodes.len() as u64);
    for id in 1..=parts.nodes.len() {
        let n = parts.nodes.get(id);
        w.u32(n.pivot.map_or(0, |p| p + 1));
        w.f64(n.min_dis);
        w.f64(n.max_dis);
        w.f64(n.own_max_dis);
        w.u32(n.pos);
        w.u32(n.size);
    }
    // Table list.
    w.u64(parts.table.len() as u64);
    for e in parts.table.iter() {
        w.u32(e.obj);
        w.f64(e.dis);
        w.u8(u8::from(e.deleted));
    }
    // Liveness bitmap.
    w.u64(parts.live.len() as u64);
    let mut byte = 0u8;
    for (i, &l) in parts.live.iter().enumerate() {
        if l {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            w.u8(byte);
            byte = 0;
        }
    }
    if !parts.live.len().is_multiple_of(8) {
        w.u8(byte);
    }
    // Cache ids.
    w.u64(parts.cache_ids.len() as u64);
    for &id in parts.cache_ids {
        w.u32(id);
    }
    w.0
}

/// Decoded snapshot contents.
pub(crate) struct Decoded {
    pub params: GtsParams,
    pub nodes: NodeList,
    pub table: TableList,
    pub live: Vec<bool>,
    pub cache_ids: Vec<u32>,
}

pub(crate) fn decode(bytes: &[u8], object_count: usize) -> Result<Decoded, IndexError> {
    let mut r = R { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(IndexError::Unsupported("bad snapshot magic/version"));
    }
    let params = GtsParams {
        node_capacity: r.u32()?,
        seed: r.u64()?,
        cache_capacity_bytes: r.u64()? as usize,
        two_sided_pruning: r.u8()? != 0,
        fft_pivots: r.u8()? != 0,
        query_grouping: r.u8()? != 0,
        use_arena: r.u8()? != 0,
        // Execution-topology and kernel-strategy knobs are not single-index
        // state: a restored index uses the restoring machine's parallelism
        // and default kernel strategy, and the sharded envelope records its
        // own shard count.
        arena_layout: metric_space::ArenaLayout::Legacy,
        bounded_verification: false,
        host_threads: 0,
        bound_broadcast: false,
        shards: 1,
        replicas: 1,
    };
    if params.node_capacity < 2 {
        return Err(IndexError::Unsupported("corrupt snapshot: node capacity"));
    }
    let shape = TreeShape {
        nc: r.u32()?,
        h: r.u32()?,
    };
    let node_count = r.u64()? as usize;
    if shape.nc != params.node_capacity || node_count != shape.total_nodes() || shape.h == 0 {
        return Err(IndexError::Unsupported("corrupt snapshot: tree shape"));
    }
    let mut nodes = NodeList::new(shape);
    for id in 1..=node_count {
        let pivot_raw = r.u32()?;
        let node = Node {
            pivot: pivot_raw.checked_sub(1),
            min_dis: r.f64()?,
            max_dis: r.f64()?,
            own_max_dis: r.f64()?,
            pos: r.u32()?,
            size: r.u32()?,
        };
        if let Some(p) = node.pivot {
            if p as usize >= object_count {
                return Err(IndexError::Unsupported("corrupt snapshot: pivot id"));
            }
        }
        *nodes.get_mut(id) = node;
    }
    let table_len = r.u64()? as usize;
    if table_len > object_count {
        return Err(IndexError::Unsupported("corrupt snapshot: table length"));
    }
    let mut ids = Vec::with_capacity(table_len);
    let mut dis = Vec::with_capacity(table_len);
    let mut deleted = Vec::with_capacity(table_len);
    for _ in 0..table_len {
        let obj = r.u32()?;
        if obj as usize >= object_count {
            return Err(IndexError::Unsupported("corrupt snapshot: object id"));
        }
        ids.push(obj);
        dis.push(r.f64()?);
        deleted.push(r.u8()? != 0);
    }
    let table = TableList::from_columns(ids, dis, deleted);
    let live_len = r.u64()? as usize;
    if live_len != object_count {
        return Err(IndexError::Unsupported(
            "snapshot object count does not match the provided store",
        ));
    }
    let mut live = Vec::with_capacity(live_len);
    let bytes_needed = live_len.div_ceil(8);
    let bits = r.take(bytes_needed)?;
    for i in 0..live_len {
        live.push(bits[i / 8] & (1 << (i % 8)) != 0);
    }
    let cache_len = r.u64()? as usize;
    if cache_len > object_count {
        return Err(IndexError::Unsupported("corrupt snapshot: cache length"));
    }
    let mut cache_ids = Vec::with_capacity(cache_len);
    for _ in 0..cache_len {
        let id = r.u32()?;
        if id as usize >= object_count {
            return Err(IndexError::Unsupported("corrupt snapshot: cache id"));
        }
        cache_ids.push(id);
    }
    if !r.done() {
        return Err(IndexError::Unsupported("trailing bytes in snapshot"));
    }
    let _ = TableEntry::default();
    Ok(Decoded {
        params,
        nodes,
        table,
        live,
        cache_ids,
    })
}

// The public API lives on `Gts`: see [`crate::index::Gts::snapshot`] and
// [`crate::index::Gts::restore`].

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Gts;
    use gpu_sim::Device;
    use metric_space::index::{DynamicIndex, SimilarityIndex};
    use metric_space::{DatasetKind, Item, ItemMetric};

    fn build() -> (Vec<Item>, ItemMetric, Gts<Item, ItemMetric>) {
        let data = DatasetKind::Words.generate(400, 81);
        let dev = Device::rtx_2080_ti();
        let gts =
            Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).expect("build");
        (data.items, data.metric, gts)
    }

    #[test]
    fn roundtrip_preserves_answers() {
        let (items, metric, mut gts) = build();
        // Mutate a little so liveness + cache are non-trivial.
        gts.remove(7).expect("rm");
        gts.insert(Item::text("snapshotted")).expect("ins");
        let mut all_items = items.clone();
        all_items.push(Item::text("snapshotted"));

        let bytes = gts.snapshot();
        let dev2 = Device::rtx_2080_ti();
        let restored = Gts::restore(&dev2, all_items, metric, &bytes).expect("restore");

        let q = Item::text("snapshotted");
        let want = gts.range_query(&q, 2.0).expect("orig");
        let got = restored.range_query(&q, 2.0).expect("restored");
        assert_eq!(got, want);
        assert_eq!(restored.len(), gts.len());
        assert_eq!(restored.height(), gts.height());
        // Tombstoned object stays gone.
        assert!(!restored
            .range_query(&items[7], 0.0)
            .expect("q")
            .iter()
            .any(|n| n.id == 7));
    }

    #[test]
    fn restore_validates_store_size() {
        let (items, metric, gts) = build();
        let bytes = gts.snapshot();
        let dev = Device::rtx_2080_ti();
        let short = items[..100].to_vec();
        assert!(matches!(
            Gts::restore(&dev, short, metric, &bytes),
            Err(IndexError::Unsupported(_))
        ));
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        let (items, metric, gts) = build();
        let bytes = gts.snapshot();
        let dev = Device::rtx_2080_ti();
        // Truncation.
        assert!(Gts::restore(&dev, items.clone(), metric, &bytes[..bytes.len() / 2]).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Gts::restore(&dev, items.clone(), metric, &bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(Gts::restore(&dev, items, metric, &long).is_err());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let (_, _, gts) = build();
        assert_eq!(gts.snapshot(), gts.snapshot());
    }
}
