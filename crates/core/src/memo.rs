//! Flat open-addressing memo for per-batch `(query, pivot)` distances.
//!
//! The search hot path memoises every `d(query, pivot)` it computes so a
//! pivot re-encountered deeper in the tree (a singleton node re-selecting
//! its parent's pivot) is never evaluated twice within a batch. That memo
//! used to be a `std::collections::HashMap<(u32, u32), f64>` — SipHash over
//! a 8-byte key plus a heap-boxed bucket layout, probed once per frontier
//! entry per level. [`PairMemo`] replaces it with the classic kernel-side
//! layout: both ids packed into one `u64` key (`query << 32 | pivot`),
//! Fibonacci multiplicative hashing, and linear probing over two flat
//! arrays (keys, values) sized to a power of two. Lookups touch one cache
//! line in the common case and the table is reusable across batches via
//! [`PairMemo::clear`] (no deallocation).
//!
//! `BENCH_memo.json` (see `REPORT.md`) carries the micro-comparison
//! against the `HashMap` it replaced.

/// Sentinel for an empty slot. Corresponds to the pair
/// `(u32::MAX, u32::MAX)`, which cannot occur: query indices are bounded
/// by the batch size and pivot ids by the object-store length, both
/// strictly below `u32::MAX` (the store's ids are `u32` indices into a
/// `Vec`, so a full store would exceed addressable memory long before).
const EMPTY: u64 = u64::MAX;

/// Minimum table capacity (slots); small batches stay cache-resident.
const MIN_CAPACITY: usize = 64;

/// A flat open-addressing hash table from `(query, pivot)` id pairs to
/// distances.
///
/// Deterministic by construction — iteration order is never exposed, and
/// insert/lookup results depend only on the inserted set. The table grows
/// by doubling at ⅞ load so probe chains stay short; `f64` values are
/// stored verbatim (bit-exact, NaN-safe: presence is keyed on the slot
/// key, never on the value).
#[derive(Clone, Debug)]
pub struct PairMemo {
    /// Slot keys (`EMPTY` = vacant), length `mask + 1` (power of two).
    keys: Vec<u64>,
    /// Slot values, parallel to `keys`.
    vals: Vec<f64>,
    /// Capacity mask (`capacity - 1`).
    mask: usize,
    /// Occupied slots.
    len: usize,
}

impl Default for PairMemo {
    fn default() -> Self {
        PairMemo::with_capacity(MIN_CAPACITY)
    }
}

#[inline]
fn pack(query: u32, pivot: u32) -> u64 {
    (u64::from(query) << 32) | u64::from(pivot)
}

/// Fibonacci (multiplicative) hash: spreads consecutive packed ids across
/// the table; the shift keeps the high-quality top bits.
#[inline]
fn slot_of(key: u64, mask: usize) -> usize {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 32) as usize & mask
}

impl PairMemo {
    /// A memo with room for at least `capacity` slots (rounded up to a
    /// power of two, floored at an internal minimum).
    pub fn with_capacity(capacity: usize) -> PairMemo {
        let cap = capacity.next_power_of_two().max(MIN_CAPACITY);
        PairMemo {
            keys: vec![EMPTY; cap],
            vals: vec![0.0; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of memoised pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is memoised.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot capacity (always a power of two). [`PairMemo::clear`]
    /// preserves it — the property the cross-batch memo reuse on
    /// [`Gts`](crate::Gts) relies on.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// The memoised distance for `(query, pivot)`, if any.
    #[inline]
    pub fn get(&self, query: u32, pivot: u32) -> Option<f64> {
        let key = pack(query, pivot);
        debug_assert_ne!(key, EMPTY, "the sentinel pair cannot be queried");
        let mut slot = slot_of(key, self.mask);
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(self.vals[slot]);
            }
            if k == EMPTY {
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Memoise `d` for `(query, pivot)`; a repeated insert overwrites (the
    /// hot paths only ever re-insert the identical value).
    #[inline]
    pub fn insert(&mut self, query: u32, pivot: u32, d: f64) {
        if (self.len + 1) * 8 > (self.mask + 1) * 7 {
            self.grow();
        }
        let key = pack(query, pivot);
        debug_assert_ne!(key, EMPTY, "the sentinel pair cannot be inserted");
        let mut slot = slot_of(key, self.mask);
        loop {
            let k = self.keys[slot];
            if k == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = d;
                self.len += 1;
                return;
            }
            if k == key {
                self.vals[slot] = d;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Drop every entry, keeping the allocation (the per-batch reset).
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0.0; new_cap]);
        self.mask = new_cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY {
                continue;
            }
            let mut slot = slot_of(k, self.mask);
            while self.keys[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.keys[slot] = k;
            self.vals[slot] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut m = PairMemo::default();
        assert!(m.is_empty());
        assert_eq!(m.get(1, 2), None);
        m.insert(1, 2, 3.5);
        m.insert(2, 1, -0.0);
        assert_eq!(m.get(1, 2), Some(3.5));
        assert_eq!(m.get(2, 1).map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(m.get(2, 2), None, "asymmetric keys stay distinct");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut m = PairMemo::default();
        m.insert(7, 9, 1.0);
        m.insert(7, 9, 2.0);
        assert_eq!(m.get(7, 9), Some(2.0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_past_load_factor_and_agrees_with_hashmap() {
        let mut m = PairMemo::with_capacity(4);
        let mut reference = std::collections::HashMap::new();
        // Adversarial-ish key pattern: strided queries and clustered pivots.
        for i in 0..10_000u32 {
            let (q, p) = (i % 97, i.wrapping_mul(2_654_435_761) % 5_000);
            let d = f64::from(i) * 0.25;
            m.insert(q, p, d);
            reference.insert((q, p), d);
        }
        assert_eq!(m.len(), reference.len());
        for (&(q, p), &d) in &reference {
            assert_eq!(m.get(q, p), Some(d));
        }
        assert_eq!(m.get(96, 4_999), reference.get(&(96, 4_999)).copied());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = PairMemo::default();
        for i in 0..1000 {
            m.insert(i, i, 0.0);
        }
        let cap = m.mask + 1;
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.mask + 1, cap);
        assert_eq!(m.get(5, 5), None);
        m.insert(5, 5, 9.0);
        assert_eq!(m.get(5, 5), Some(9.0));
    }

    #[test]
    fn nan_values_are_present() {
        // Presence must be keyed on the slot, not the value: a NaN distance
        // (the root's dqp convention) must still be a hit.
        let mut m = PairMemo::default();
        m.insert(0, 0, f64::NAN);
        assert!(m.get(0, 0).expect("present").is_nan());
    }
}
