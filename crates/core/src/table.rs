//! The table list: leaf-level object-partitioning information (paper §4.2).
//!
//! Only the *final stage* is stored (Fig. 3): for every object, its id and
//! its distance to the pivot of its leaf's parent node, laid out so that each
//! leaf's objects are contiguous and sorted ascending by that distance.
//! Upper-level partitionings are recoverable by concatenating child ranges,
//! which is why storing one level suffices — the memory argument the paper
//! makes explicitly.

/// One table-list cell.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TableEntry {
    /// Object id (index into the dataset).
    pub obj: u32,
    /// Distance from the object to the pivot of its leaf's parent (after
    /// construction; during construction: to the pivot of the current
    /// level's node).
    pub dis: f64,
    /// Tombstone set by streaming deletions (§4.4): the object is skipped by
    /// verification until the next rebuild compacts it away.
    pub deleted: bool,
}

/// The flat table list.
#[derive(Clone, Debug, Default)]
pub struct TableList {
    entries: Vec<TableEntry>,
}

impl TableList {
    /// Initialise from the object ids to index (Alg. 1 lines 4–5); distances
    /// start at 0 and are filled by the first mapping pass.
    pub fn from_ids(ids: &[u32]) -> TableList {
        TableList {
            entries: ids
                .iter()
                .map(|&obj| TableEntry {
                    obj,
                    dis: 0.0,
                    deleted: false,
                })
                .collect(),
        }
    }

    /// Number of entries (live + tombstoned).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Immutable slice of all entries.
    pub fn entries(&self) -> &[TableEntry] {
        &self.entries
    }

    /// Mutable slice of all entries.
    pub fn entries_mut(&mut self) -> &mut [TableEntry] {
        &mut self.entries
    }

    /// Entry at `pos`.
    pub fn get(&self, pos: usize) -> &TableEntry {
        &self.entries[pos]
    }

    /// The sub-range `[pos, pos + len)` belonging to one node.
    pub fn range(&self, pos: u32, len: u32) -> &[TableEntry] {
        &self.entries[pos as usize..(pos + len) as usize]
    }

    /// Append the object ids of the sub-range `[pos, pos + len)` to `out` —
    /// the id-staging step of the batched distance kernels, which resolve
    /// these ids against the flat object arena.
    pub fn fill_ids(&self, pos: u32, len: u32, out: &mut Vec<u32>) {
        out.extend(self.range(pos, len).iter().map(|e| e.obj));
    }

    /// Tombstone every entry holding `obj`; returns how many were marked.
    /// (Duplicates — Fig. 10's identical objects — share the id only if the
    /// dataset assigned them the same id; each entry holds one id.)
    pub fn tombstone(&mut self, obj: u32) -> usize {
        let mut marked = 0;
        for e in &mut self.entries {
            if e.obj == obj && !e.deleted {
                e.deleted = true;
                marked += 1;
            }
        }
        marked
    }

    /// Live (non-tombstoned) object ids, in table order.
    pub fn live_ids(&self) -> Vec<u32> {
        self.entries
            .iter()
            .filter(|e| !e.deleted)
            .map(|e| e.obj)
            .collect()
    }

    /// Count of live entries.
    pub fn live_len(&self) -> usize {
        self.entries.iter().filter(|e| !e.deleted).count()
    }

    /// Bytes occupied (device-resident).
    pub fn bytes(&self) -> u64 {
        (self.entries.len() * std::mem::size_of::<TableEntry>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_and_ranges() {
        let t = TableList::from_ids(&[5, 3, 9, 1]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(2).obj, 9);
        let r = t.range(1, 2);
        assert_eq!(r[0].obj, 3);
        assert_eq!(r[1].obj, 9);
    }

    #[test]
    fn fill_ids_appends_range() {
        let t = TableList::from_ids(&[5, 3, 9, 1]);
        let mut out = vec![7u32];
        t.fill_ids(1, 2, &mut out);
        assert_eq!(out, vec![7, 3, 9], "appends without clearing");
    }

    #[test]
    fn tombstoning() {
        let mut t = TableList::from_ids(&[5, 3, 5]);
        assert_eq!(t.tombstone(5), 2);
        assert_eq!(t.tombstone(5), 0, "already tombstoned");
        assert_eq!(t.live_ids(), vec![3]);
        assert_eq!(t.live_len(), 1);
        assert_eq!(t.len(), 3, "tombstones keep their slots until rebuild");
    }

    #[test]
    fn bytes_scale_with_len() {
        let a = TableList::from_ids(&[1, 2]);
        let b = TableList::from_ids(&[1, 2, 3, 4]);
        assert_eq!(b.bytes(), 2 * a.bytes());
    }
}
