//! The table list: leaf-level object-partitioning information (paper §4.2).
//!
//! Only the *final stage* is stored (Fig. 3): for every object, its id and
//! its distance to the pivot of its leaf's parent node, laid out so that each
//! leaf's objects are contiguous and sorted ascending by that distance.
//! Upper-level partitionings are recoverable by concatenating child ranges,
//! which is why storing one level suffices — the memory argument the paper
//! makes explicitly.
//!
//! Stored **structure-of-arrays**: `obj`, `dis`, and `deleted` are separate
//! columns. The construction mapping pass rewrites the entire distance
//! column every level ([`TableList::dis_column_mut`]) without touching the
//! tombstone bytes, the id-staging step streams the contiguous id column
//! ([`TableList::fill_ids`]), and [`TableList::live_len`] is O(1) off a
//! maintained tombstone count. Row values are materialised on demand as
//! [`TableEntry`] — the columns never interleave in memory.

/// One table-list row, materialised by value from the columns.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TableEntry {
    /// Object id (index into the dataset).
    pub obj: u32,
    /// Distance from the object to the pivot of its leaf's parent (after
    /// construction; during construction: to the pivot of the current
    /// level's node).
    pub dis: f64,
    /// Tombstone set by streaming deletions (§4.4): the object is skipped by
    /// verification until the next rebuild compacts it away.
    pub deleted: bool,
}

/// The flat table list (structure-of-arrays).
#[derive(Clone, Debug, Default)]
pub struct TableList {
    obj: Vec<u32>,
    dis: Vec<f64>,
    deleted: Vec<bool>,
    /// Count of set tombstones, maintained by [`TableList::tombstone`].
    tombstones: usize,
}

impl TableList {
    /// Initialise from the object ids to index (Alg. 1 lines 4–5); distances
    /// start at 0 and are filled by the first mapping pass.
    pub fn from_ids(ids: &[u32]) -> TableList {
        TableList {
            obj: ids.to_vec(),
            dis: vec![0.0; ids.len()],
            deleted: vec![false; ids.len()],
            tombstones: 0,
        }
    }

    /// Reassemble from decoded columns (snapshot restore).
    pub fn from_columns(obj: Vec<u32>, dis: Vec<f64>, deleted: Vec<bool>) -> TableList {
        assert_eq!(obj.len(), dis.len());
        assert_eq!(obj.len(), deleted.len());
        let tombstones = deleted.iter().filter(|&&d| d).count();
        TableList {
            obj,
            dis,
            deleted,
            tombstones,
        }
    }

    /// Number of entries (live + tombstoned).
    pub fn len(&self) -> usize {
        self.obj.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.obj.is_empty()
    }

    /// Row at `pos`, by value.
    pub fn get(&self, pos: usize) -> TableEntry {
        TableEntry {
            obj: self.obj[pos],
            dis: self.dis[pos],
            deleted: self.deleted[pos],
        }
    }

    /// Rows of the sub-range `[pos, pos + len)` belonging to one node.
    pub fn range(&self, pos: u32, len: u32) -> impl Iterator<Item = TableEntry> + '_ {
        (pos as usize..(pos + len) as usize).map(|i| self.get(i))
    }

    /// All rows in table order.
    pub fn iter(&self) -> impl Iterator<Item = TableEntry> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The distance column (parallel to the id column).
    pub fn dis_column(&self) -> &[f64] {
        &self.dis
    }

    /// The object-id column.
    pub fn obj_column(&self) -> &[u32] {
        &self.obj
    }

    /// Mutable distance column — the construction mapping pass overwrites
    /// it wholesale every level without touching ids or tombstones.
    pub fn dis_column_mut(&mut self) -> &mut [f64] {
        &mut self.dis
    }

    /// Gather into sorted order: row `i` becomes the old row `src_of(i)`.
    /// `src_of` must be a permutation of `0..len`. Each column is gathered
    /// independently; the tombstone count is invariant under permutation.
    pub fn gather(&mut self, src_of: impl Fn(usize) -> usize) {
        let n = self.len();
        let old_obj = std::mem::take(&mut self.obj);
        let old_dis = std::mem::take(&mut self.dis);
        let old_del = std::mem::take(&mut self.deleted);
        self.obj = (0..n).map(|i| old_obj[src_of(i)]).collect();
        self.dis = (0..n).map(|i| old_dis[src_of(i)]).collect();
        self.deleted = (0..n).map(|i| old_del[src_of(i)]).collect();
    }

    /// Append the object ids of the sub-range `[pos, pos + len)` to `out` —
    /// the id-staging step of the batched distance kernels, which resolve
    /// these ids against the flat object arena. A contiguous column copy.
    pub fn fill_ids(&self, pos: u32, len: u32, out: &mut Vec<u32>) {
        out.extend_from_slice(&self.obj[pos as usize..(pos + len) as usize]);
    }

    /// Tombstone every entry holding `obj`; returns how many were marked.
    /// (Duplicates — Fig. 10's identical objects — share the id only if the
    /// dataset assigned them the same id; each entry holds one id.)
    pub fn tombstone(&mut self, obj: u32) -> usize {
        let mut marked = 0;
        for (o, del) in self.obj.iter().zip(self.deleted.iter_mut()) {
            if *o == obj && !*del {
                *del = true;
                marked += 1;
            }
        }
        self.tombstones += marked;
        marked
    }

    /// True when any entry is tombstoned — O(1) off the maintained count,
    /// so verification paths can skip per-row tombstone checks entirely on
    /// the (common) tombstone-free table.
    pub fn has_tombstones(&self) -> bool {
        self.tombstones > 0
    }

    /// Live (non-tombstoned) object ids, in table order.
    pub fn live_ids(&self) -> Vec<u32> {
        self.obj
            .iter()
            .zip(&self.deleted)
            .filter(|&(_, &del)| !del)
            .map(|(&o, _)| o)
            .collect()
    }

    /// Count of live entries — O(1).
    pub fn live_len(&self) -> usize {
        self.len() - self.tombstones
    }

    /// Bytes occupied (device-resident): the three packed columns
    /// (4 B id + 8 B distance + 1 B tombstone per entry).
    pub fn bytes(&self) -> u64 {
        (self.obj.len() * (4 + 8 + 1)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_and_ranges() {
        let t = TableList::from_ids(&[5, 3, 9, 1]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(2).obj, 9);
        let r: Vec<TableEntry> = t.range(1, 2).collect();
        assert_eq!(r[0].obj, 3);
        assert_eq!(r[1].obj, 9);
    }

    #[test]
    fn fill_ids_appends_range() {
        let t = TableList::from_ids(&[5, 3, 9, 1]);
        let mut out = vec![7u32];
        t.fill_ids(1, 2, &mut out);
        assert_eq!(out, vec![7, 3, 9], "appends without clearing");
    }

    #[test]
    fn tombstoning() {
        let mut t = TableList::from_ids(&[5, 3, 5]);
        assert!(!t.has_tombstones());
        assert_eq!(t.tombstone(5), 2);
        assert_eq!(t.tombstone(5), 0, "already tombstoned");
        assert!(t.has_tombstones());
        assert_eq!(t.live_ids(), vec![3]);
        assert_eq!(t.live_len(), 1);
        assert_eq!(t.len(), 3, "tombstones keep their slots until rebuild");
    }

    #[test]
    fn gather_permutes_all_columns() {
        let mut t = TableList::from_ids(&[10, 20, 30]);
        t.dis_column_mut().copy_from_slice(&[0.1, 0.2, 0.3]);
        t.tombstone(20);
        t.gather(|i| [2, 0, 1][i]);
        let rows: Vec<TableEntry> = t.iter().collect();
        assert_eq!(rows[0].obj, 30);
        assert_eq!(rows[1].obj, 10);
        assert_eq!(rows[2].obj, 20);
        assert_eq!(rows[0].dis, 0.3);
        assert!(rows[2].deleted && !rows[0].deleted && !rows[1].deleted);
        assert_eq!(t.live_len(), 2, "tombstone count invariant under gather");
    }

    #[test]
    fn column_round_trip() {
        let t = TableList::from_columns(vec![4, 5], vec![1.5, 2.5], vec![false, true]);
        assert_eq!(t.live_len(), 1);
        assert_eq!(
            t.get(1),
            TableEntry {
                obj: 5,
                dis: 2.5,
                deleted: true
            }
        );
    }

    #[test]
    fn bytes_scale_with_len() {
        let a = TableList::from_ids(&[1, 2]);
        let b = TableList::from_ids(&[1, 2, 3, 4]);
        assert_eq!(b.bytes(), 2 * a.bytes());
    }
}
