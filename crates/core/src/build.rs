//! Level-synchronous parallel construction (paper §4.3, Algorithms 1–3).
//!
//! The construction loop runs `Mapping` then `Partitioning` once per
//! internal level:
//!
//! * **Mapping** (Alg. 2): each node of the level selects a pivot (FFT; the
//!   root seeds from a random object, deeper nodes take the object farthest
//!   from the parent pivot, whose distance is already materialised in the
//!   table — one FFT step with zero extra distance calls), then one kernel
//!   computes every object's distance to its node's pivot.
//! * **Partitioning** (Alg. 3): distances are normalised to `[0, ½)`,
//!   encoded as `key = node_rank + dis/denom` so the integer part carries
//!   node membership, sorted by **one global device sort**, and each node is
//!   split evenly into `Nc` children (`avg = ⌊size/Nc⌋`, the last child
//!   takes the remainder).
//!
//! Differences from the paper's pseudocode, both documented in DESIGN.md:
//! the child start position uses `pos + j·avg` (the paper's `pos + j·Nc` is
//! a typo — it would overlap children), and the encoding denominator is
//! `2(max+1)` rather than `max+1` so the fractional part stays `< ½` and the
//! integer node rank is always exactly recoverable in f64. The sort payload
//! is the pre-sort position, so stored distances are *gathered*, never
//! re-derived from the encoded key — no precision loss.

use crate::dispatch::distance_block;
use crate::node::{Node, NodeList, TreeShape};
use crate::params::GtsParams;
use crate::table::TableList;
use gpu_sim::primitives::{reduce_max_f64, sort_pairs_by_key};
use gpu_sim::{Device, GpuError};
use metric_space::{BatchMetric, ObjectArena};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The constructed index structure plus counters.
pub(crate) struct Structure {
    pub nodes: NodeList,
    pub table: TableList,
    /// Distance evaluations spent building (tests assert the `O(n·h)` bound).
    pub build_distances: u64,
}

/// Reusable staging buffers for the construction kernels (one per
/// `construct` call, shared by every level).
#[derive(Default)]
struct BuildScratch {
    /// Object ids of one node segment, arena-kernel input.
    ids: Vec<u32>,
    /// Distance output per table position for the whole level.
    out: Vec<f64>,
}

/// Construct the GTS structure over `ids` (a subset of `objects`).
///
/// `arena`, when present, is the flat payload arena over the **full**
/// `objects` store (ids are arena ids); the mapping kernels resolve object
/// payloads against it instead of chasing per-object pointers.
///
/// Runs entirely "on device": every distance evaluation and data movement is
/// charged to `dev`'s clock; the returned host structures mirror what would
/// live in global memory (their residency is reserved by the caller).
pub(crate) fn construct<O, M>(
    dev: &Arc<Device>,
    objects: &[O],
    arena: Option<&ObjectArena>,
    ids: &[u32],
    metric: &M,
    params: &GtsParams,
) -> Result<Structure, GpuError>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    assert!(!ids.is_empty(), "construct requires at least one object");
    let nc = params.node_capacity;
    let shape = TreeShape::for_dataset(ids.len(), nc);
    let mut nodes = NodeList::new(shape);
    let mut table = TableList::from_ids(ids);
    let n = ids.len();
    let mut build_distances = 0u64;
    let mut scratch = BuildScratch::default();

    // Alg. 1 lines 2–5: initialise the root and the table list.
    *nodes.get_mut(1) = Node {
        pivot: None,
        min_dis: 0.0,
        max_dis: f64::INFINITY,
        pos: 0,
        size: n as u32,
        own_max_dis: 0.0,
    };
    dev.launch_charged(n as u64, 1); // parallel table init

    let mut rng = StdRng::seed_from_u64(params.seed);

    // Alg. 1 lines 6–10: one mapping + partitioning round per internal level.
    for level in 1..shape.h {
        let start = shape.level_start(level);
        let width = shape.level_width(level);
        mapping(
            dev,
            objects,
            arena,
            metric,
            params,
            &mut nodes,
            &mut table,
            start,
            width,
            level == 1,
            &mut rng,
            &mut build_distances,
            &mut scratch,
        );
        partitioning(dev, &shape, &mut nodes, &mut table, start, width);
    }

    Ok(Structure {
        nodes,
        table,
        build_distances,
    })
}

/// Alg. 2: pivot selection + distance computation for one level.
#[allow(clippy::too_many_arguments)]
fn mapping<O, M>(
    dev: &Arc<Device>,
    objects: &[O],
    arena: Option<&ObjectArena>,
    metric: &M,
    params: &GtsParams,
    nodes: &mut NodeList,
    table: &mut TableList,
    level_start: usize,
    level_width: usize,
    is_root_level: bool,
    rng: &mut StdRng,
    build_distances: &mut u64,
    scratch: &mut BuildScratch,
) where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    let n = table.len();

    // --- pivot selection -------------------------------------------------
    if is_root_level {
        // Root: FFT seeded by a random object — the pivot is the object
        // farthest from the seed (one batched distance kernel + a reduce).
        let seed_pos = rng.gen_range(0..n);
        let seed_obj = table.get(seed_pos).obj;
        let pivot = if params.fft_pivots {
            let BuildScratch { ids, out } = scratch;
            ids.clear();
            table.fill_ids(0, n as u32, ids);
            out.clear();
            out.resize(n, 0.0);
            let threads = params.effective_host_threads(dev.host_threads());
            dev.launch_batch(n, || {
                let (w, s) = distance_block(
                    dev,
                    threads,
                    metric,
                    objects,
                    arena,
                    &objects[seed_obj as usize],
                    ids,
                    out,
                );
                ((), w, s)
            });
            *build_distances += n as u64;
            let mut best = seed_pos;
            let mut best_d = -1.0;
            for (i, &d) in out.iter().enumerate() {
                if d > best_d {
                    best_d = d;
                    best = i;
                }
            }
            dev.launch_charged(n as u64, (64 - n.leading_zeros()) as u64);
            table.get(best).obj
        } else {
            seed_obj
        };
        nodes.get_mut(1).pivot = Some(pivot);
    } else {
        // Deeper levels: the table already holds each object's distance to
        // the parent pivot (computed by the previous mapping); the FFT step
        // is an argmax per node — a segmented reduce, zero extra distances.
        for rank in 0..level_width {
            let node_id = level_start + rank;
            let node = *nodes.get(node_id);
            if node.size == 0 {
                continue;
            }
            let pivot = if params.fft_pivots {
                let mut best = table.get(node.pos as usize);
                for e in table.range(node.pos, node.size) {
                    if e.dis > best.dis {
                        best = e;
                    }
                }
                best.obj
            } else {
                let off = rng.gen_range(0..node.size);
                table.get((node.pos + off) as usize).obj
            };
            nodes.get_mut(node_id).pivot = Some(pivot);
        }
        dev.launch_charged(n as u64, 32); // segmented argmax over the level
    }

    // --- distance computation ---------------------------------------------
    // One batched kernel over the entire table (grid = nodes, block = the
    // node's objects; pivots staged in shared memory per Alg. 2): each
    // node's segment is contiguous in the table, so the level runs as one
    // launch of per-node `distance_block` calls resolving object ids
    // against the arena — large segments fan out over host threads in
    // fixed-size chunks — charged once for the whole level.
    {
        let BuildScratch { ids, out } = scratch;
        out.clear();
        out.resize(n, 0.0);
        let threads = params.effective_host_threads(dev.host_threads());
        dev.launch_batch(n, || {
            let mut total = 0u64;
            let mut span = 0u64;
            for rank in 0..level_width {
                let node = *nodes.get(level_start + rank);
                if node.size == 0 {
                    continue;
                }
                let pivot = node.pivot.expect("internal node has a pivot");
                ids.clear();
                table.fill_ids(node.pos, node.size, ids);
                let seg = &mut out[node.pos as usize..(node.pos + node.size) as usize];
                let (w, s) = distance_block(
                    dev,
                    threads,
                    metric,
                    objects,
                    arena,
                    &objects[pivot as usize],
                    ids,
                    seg,
                );
                total += w;
                span = span.max(s);
            }
            ((), total, span)
        });
        *build_distances += n as u64;
        // SoA: the whole distance column streams in one copy; ids and
        // tombstones are untouched.
        table.dis_column_mut().copy_from_slice(out);
    }

    // Own-pivot radius per node (max distance to own pivot), needed by the
    // MkNNQ own-pivot prune; one more segmented reduce over stored values.
    for rank in 0..level_width {
        let node_id = level_start + rank;
        let node = *nodes.get(node_id);
        if node.size == 0 {
            continue;
        }
        let max = table
            .range(node.pos, node.size)
            .fold(0f64, |m, e| m.max(e.dis));
        nodes.get_mut(node_id).own_max_dis = max;
    }
    dev.launch_charged(n as u64, 32);
}

/// Alg. 3: distance encoding, global sort, even split into children.
fn partitioning(
    dev: &Arc<Device>,
    shape: &TreeShape,
    nodes: &mut NodeList,
    table: &mut TableList,
    level_start: usize,
    level_width: usize,
) {
    let n = table.len();
    let nc = shape.nc as usize;

    // Line 1–2: global max for normalisation, straight off the SoA
    // distance column — no gather.
    let max = reduce_max_f64(dev, table.dis_column()).max(0.0);
    // Denominator 2(max+1) keeps the fraction < 1/2: integer part exact.
    let denom = 2.0 * (max + 1.0);

    // Lines 3–6: encode `rank + dis/denom`. Payload = pre-sort position so
    // the table rows can be gathered afterwards without decoding error.
    let node_of_pos = node_rank_of_positions(nodes, level_start, level_width, n);
    let dis = table.dis_column();
    let mut pairs: Vec<(f64, u32)> = dev.launch_map(n, |i| {
        let key = f64::from(node_of_pos[i]) + dis[i] / denom;
        ((key, i as u32), 2u64)
    });

    // Line 7: one global device sort partitions every node simultaneously.
    sort_pairs_by_key(dev, &mut pairs);

    // Gather the table into sorted order (scatter kernel, linear work);
    // each SoA column is gathered independently.
    table.gather(|i| pairs[i].1 as usize);
    dev.launch_charged(n as u64, 1);

    // Lines 8–18: split each node evenly into Nc children.
    for rank in 0..level_width {
        let node_id = level_start + rank;
        let node = *nodes.get(node_id);
        let avg = node.size / shape.nc;
        for j in 0..nc {
            let child_id = shape.child(node_id, j);
            let size = if j + 1 < nc {
                avg
            } else {
                node.size - avg * (shape.nc - 1)
            };
            let pos = node.pos + avg * j as u32;
            let (min_dis, max_dis) = if size > 0 {
                (
                    table.get(pos as usize).dis,
                    table.get((pos + size - 1) as usize).dis,
                )
            } else {
                (f64::INFINITY, f64::NEG_INFINITY)
            };
            *nodes.get_mut(child_id) = Node {
                pivot: None,
                min_dis,
                max_dis,
                pos,
                size,
                own_max_dis: 0.0,
            };
        }
    }
    dev.launch_charged((level_width * nc) as u64, 4);
}

/// For every table position, the 0-based rank (within the level) of the node
/// owning it. Host-side mirror of the grid→block assignment.
fn node_rank_of_positions(
    nodes: &NodeList,
    level_start: usize,
    level_width: usize,
    n: usize,
) -> Vec<u32> {
    let mut out = vec![0u32; n];
    for rank in 0..level_width {
        let node = nodes.get(level_start + rank);
        for p in node.pos..node.pos + node.size {
            out[p as usize] = rank as u32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableEntry;
    use metric_space::{DatasetKind, ItemMetric, Metric};

    fn build_kind(
        kind: DatasetKind,
        n: usize,
        nc: u32,
    ) -> (Structure, Vec<metric_space::Item>, ItemMetric) {
        let data = kind.generate(n, 11);
        let dev = Device::rtx_2080_ti();
        let ids: Vec<u32> = (0..n as u32).collect();
        let params = GtsParams::default().with_node_capacity(nc);
        let arena = data.metric.build_arena(&data.items);
        let s = construct(
            &dev,
            &data.items,
            arena.as_ref(),
            &ids,
            &data.metric,
            &params,
        )
        .expect("build");
        (s, data.items, data.metric)
    }

    #[test]
    fn table_is_permutation_of_ids() {
        let (s, _, _) = build_kind(DatasetKind::TLoc, 500, 4);
        let mut ids: Vec<u32> = s.table.obj_column().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<u32>>());
    }

    #[test]
    fn leaves_partition_table_contiguously() {
        let (s, _, _) = build_kind(DatasetKind::Words, 300, 3);
        let shape = s.nodes.shape();
        let start = shape.level_start(shape.h);
        let width = shape.level_width(shape.h);
        let mut cursor = 0u32;
        for id in start..start + width {
            let n = s.nodes.get(id);
            assert_eq!(n.pos, cursor, "leaf {id} not contiguous");
            cursor += n.size;
        }
        assert_eq!(cursor as usize, 300, "leaves must cover the table");
    }

    #[test]
    fn every_level_partitions_all_objects() {
        let (s, _, _) = build_kind(DatasetKind::Color, 400, 5);
        let shape = s.nodes.shape();
        for level in 1..=shape.h {
            let total: u32 = (0..shape.level_width(level))
                .map(|r| s.nodes.get(shape.level_start(level) + r).size)
                .sum();
            assert_eq!(total, 400, "level {level}");
        }
    }

    #[test]
    fn children_cover_parent_range() {
        let (s, _, _) = build_kind(DatasetKind::Vector, 250, 4);
        let shape = s.nodes.shape();
        for level in 1..shape.h {
            for r in 0..shape.level_width(level) {
                let id = shape.level_start(level) + r;
                let parent = s.nodes.get(id);
                let total: u32 = (0..shape.nc as usize)
                    .map(|j| s.nodes.get(shape.child(id, j)).size)
                    .sum();
                assert_eq!(total, parent.size, "node {id}");
                let first = s.nodes.get(shape.child(id, 0));
                assert_eq!(first.pos, parent.pos, "node {id} first child pos");
            }
        }
    }

    #[test]
    fn rings_are_consistent_with_stored_distances() {
        let (s, items, metric) = build_kind(DatasetKind::TLoc, 600, 5);
        let shape = s.nodes.shape();
        // For each leaf: stored dis must equal d(object, parent pivot) and
        // lie within [min_dis, max_dis], sorted ascending.
        let start = shape.level_start(shape.h);
        let width = shape.level_width(shape.h);
        for id in start..start + width {
            let leaf = s.nodes.get(id);
            if leaf.size == 0 {
                continue;
            }
            let parent = s.nodes.get(shape.parent(id));
            let pivot = parent.pivot.expect("parent is internal") as usize;
            let range = s.table.range(leaf.pos, leaf.size);
            let mut prev = f64::NEG_INFINITY;
            for e in range {
                let real = metric.distance(&items[e.obj as usize], &items[pivot]);
                assert!((real - e.dis).abs() < 1e-9, "stored {} real {real}", e.dis);
                assert!(e.dis >= leaf.min_dis - 1e-9 && e.dis <= leaf.max_dis + 1e-9);
                assert!(e.dis >= prev - 1e-12, "not ascending");
                prev = e.dis;
            }
        }
    }

    #[test]
    fn internal_pivot_belongs_to_its_node() {
        let (s, _, _) = build_kind(DatasetKind::Words, 300, 4);
        let shape = s.nodes.shape();
        for level in 1..shape.h {
            for r in 0..shape.level_width(level) {
                let id = shape.level_start(level) + r;
                let node = s.nodes.get(id);
                if node.size == 0 {
                    continue;
                }
                let pivot = node.pivot.expect("internal");
                assert!(
                    s.table.range(node.pos, node.size).any(|e| e.obj == pivot),
                    "pivot {pivot} not inside node {id}"
                );
            }
        }
    }

    #[test]
    fn leaves_have_no_pivot() {
        let (s, _, _) = build_kind(DatasetKind::Dna, 120, 3);
        let shape = s.nodes.shape();
        let start = shape.level_start(shape.h);
        for id in start..start + shape.level_width(shape.h) {
            assert!(s.nodes.get(id).pivot.is_none());
        }
    }

    #[test]
    fn single_level_tree() {
        let data = DatasetKind::Words.generate(3, 5);
        let dev = Device::rtx_2080_ti();
        let s = construct(
            &dev,
            &data.items,
            None,
            &[0, 1, 2],
            &data.metric,
            &GtsParams::default(),
        )
        .expect("tiny build");
        assert_eq!(s.nodes.shape().h, 1);
        assert_eq!(s.nodes.get(1).size, 3);
        assert!(s.nodes.get(1).pivot.is_none(), "root-as-leaf has no pivot");
        assert_eq!(s.build_distances, 0, "no mapping pass runs");
    }

    #[test]
    fn build_distance_budget() {
        // Each of the h−1 mapping rounds computes n distances (+ n for the
        // root FFT seed pass).
        let (s, _, _) = build_kind(DatasetKind::TLoc, 1000, 10);
        let h = u64::from(s.nodes.shape().h);
        assert_eq!(s.build_distances, 1000 * h, "n·(h−1) mapping + n FFT");
    }

    #[test]
    fn construction_charges_device_time() {
        let data = DatasetKind::TLoc.generate(2000, 3);
        let dev = Device::rtx_2080_ti();
        let ids: Vec<u32> = (0..2000).collect();
        dev.reset_clock();
        let arena = data.metric.build_arena(&data.items);
        construct(
            &dev,
            &data.items,
            arena.as_ref(),
            &ids,
            &data.metric,
            &GtsParams::default(),
        )
        .expect("build");
        let s = dev.stats();
        assert!(s.kernels > 3, "multiple kernels launched");
        assert!(s.cycles > 0 && s.work > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = DatasetKind::Vector.generate(200, 3);
        let dev = Device::rtx_2080_ti();
        let ids: Vec<u32> = (0..200).collect();
        let p = GtsParams::default().with_seed(77);
        let arena = data.metric.build_arena(&data.items);
        let a = construct(&dev, &data.items, arena.as_ref(), &ids, &data.metric, &p).expect("a");
        let b = construct(&dev, &data.items, None, &ids, &data.metric, &p).expect("b");
        assert_eq!(
            a.table.iter().collect::<Vec<TableEntry>>(),
            b.table.iter().collect::<Vec<TableEntry>>(),
            "arena and per-pair construction agree bit-for-bit"
        );
    }

    #[test]
    fn subset_build_only_indexes_subset() {
        let data = DatasetKind::Words.generate(100, 3);
        let dev = Device::rtx_2080_ti();
        let ids: Vec<u32> = (0..100).step_by(2).map(|i| i as u32).collect();
        let arena = data.metric.build_arena(&data.items);
        let s = construct(
            &dev,
            &data.items,
            arena.as_ref(),
            &ids,
            &data.metric,
            &GtsParams::default(),
        )
        .expect("subset build");
        assert_eq!(s.table.len(), 50);
        assert!(s.table.obj_column().iter().all(|&o| o % 2 == 0));
    }
}
