//! Tunable parameters of the GTS index, including the ablation toggles
//! called out in DESIGN.md §2.

pub use metric_space::ArenaLayout;

/// Construction/search parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GtsParams {
    /// Node capacity `Nc`: children per internal node. The paper sweeps
    /// {10, 20, 40, 80, 160, 320} (Table 3) and settles on **20** via the
    /// §5.3 cost model and Fig. 6.
    pub node_capacity: u32,
    /// RNG seed for the random first pivot (FFT's seed; the paper notes the
    /// initial pivot barely matters, citing \[62\]).
    pub seed: u64,
    /// Streaming-update cache-table capacity in bytes (§4.4; Table 5 sweeps
    /// 0.01 KB – 10 KB and recommends ~5 KB).
    pub cache_capacity_bytes: usize,
    /// Ablation A1: use both ring bounds (`true`, default) or only the lower
    /// bound the paper's text states explicitly.
    pub two_sided_pruning: bool,
    /// Ablation A2: pick non-root pivots by an FFT step over the parent
    /// distances (`true`, default) or uniformly at random.
    pub fft_pivots: bool,
    /// Ablation A4: two-stage query grouping (`true`, default). With
    /// grouping off, an oversized batch aborts with `OutOfMemory` — the
    /// memory-deadlock behaviour of the naive strategy.
    pub query_grouping: bool,
    /// Resolve distance kernels against the flat object arena (`true`,
    /// default). With it off, the batched kernels fall back to per-pair
    /// object access — same answers, same simulated cycles, no flat-layout
    /// wall-clock speedup (the invariance tests compare the two paths).
    pub use_arena: bool,
    /// Memory layout of the flat object arena
    /// ([`ArenaLayout::Legacy`] packed `f32` rows, the default, or
    /// [`ArenaLayout::Aligned`] 32-byte-aligned zero-padded 8-lane block
    /// rows). Both layouts run the **same canonical lane-summation order**
    /// inside the L1/L2 kernels, so answers are bit-identical and simulated
    /// cycles are equal — the aligned layout is a pure wall-clock lever
    /// (autovectorised contiguous block rows) like `host_threads`, and like
    /// it is **not persisted** by snapshots: restored indexes come back
    /// `Legacy` and rebuild their arena from the restored objects. Metrics
    /// without a block kernel (edit distance, angular) silently degrade an
    /// aligned request to `Legacy` at arena-build time, so the knob is safe
    /// to set for any dataset. Ignored when `use_arena` is off.
    pub arena_layout: ArenaLayout,
    /// Leaf verification through the **early-abandoning bounded kernel**
    /// ([`BatchMetric::distance_batch_bounded`](metric_space::BatchMetric::distance_batch_bounded)):
    /// each survivor of the stored-distance filter is evaluated against its
    /// query's radius (MRQ) or current kNN bound (MkNNQ), so an edit
    /// distance can abandon via the Ukkonen band once it provably exceeds
    /// the bound — and is charged only the banded work. Answers are
    /// bit-identical to the default path (the bound kernels are exact
    /// whenever they report a distance, and the kNN bounds are tie-safe);
    /// **simulated cycles differ** (that is the point — the banded DP is
    /// cheaper), with abandoned evaluations counted in
    /// [`StatsSnapshot::leaf_abandoned`](crate::stats::StatsSnapshot::leaf_abandoned).
    /// Off by default so the cycle-invariance suites keep their baseline. A
    /// kernel-strategy knob like `host_threads`, so not persisted by
    /// snapshots.
    pub bounded_verification: bool,
    /// Host threads executing the batched distance kernels; `0` (default)
    /// means "auto" — use the device's configured
    /// [`host_threads`](gpu_sim::DeviceConfig::host_threads). Purely a
    /// wall-clock knob: id blocks are cut into fixed-size chunks before
    /// the thread count is consulted, so answers, tie-breaks, and
    /// simulated cycle counts are bit-identical for any value (the
    /// thread-invariance tests prove it). Not persisted by snapshots —
    /// restored indexes come back with `0 = auto`.
    pub host_threads: usize,
    /// Cross-shard kNN **bound broadcast** for
    /// [`ShardedGts::batch_knn`](crate::ShardedGts): drive every shard's
    /// descent engine in lockstep with a per-level barrier, take the
    /// element-wise minimum of the per-query kNN bounds across shards after
    /// each level, and inject it into every shard's next level — so each
    /// shard prunes against the *global* k-th-NN bound instead of only its
    /// local one. Answers stay bit-identical to the independent-descent
    /// path (the broadcast bound only moves toward the true global k-th
    /// distance, and all pruning is tie-safe); **simulated cycles differ**:
    /// pruning improves, but every level pays the barrier (devices idle up
    /// to the slowest shard, modeled by clock alignment) and the bound
    /// exchange transfers. Off by default so the single-descent cycle
    /// baselines stay put. An execution-topology knob like `shards`, so not
    /// persisted by snapshots. Ignored by a plain [`Gts`](crate::Gts) and
    /// by single-shard pools (there is nothing to broadcast).
    pub bound_broadcast: bool,
    /// Number of shards for [`ShardedGts`](crate::ShardedGts): the dataset
    /// is partitioned into this many per-device sub-indexes whose answers
    /// are merged exactly. `1` (default) is the paper's single-GPU setup; a
    /// plain [`Gts`](crate::Gts) ignores this knob entirely. Like
    /// `host_threads`, it describes execution topology, not single-index
    /// structure, so single-index snapshots do not persist it (the sharded
    /// snapshot envelope records its own shard count).
    pub shards: u32,
    /// Number of full index replicas for
    /// [`ReplicatedShards`](crate::replica::ReplicatedShards): each replica
    /// is a complete [`ShardedGts`](crate::ShardedGts) over its own
    /// `shards` devices, so a pool must supply `shards × replicas` devices.
    /// `1` (default) is the unreplicated setup; plain [`Gts`](crate::Gts)
    /// and [`ShardedGts`](crate::ShardedGts) ignore this knob. An
    /// execution-topology knob like `shards`, so not persisted by
    /// snapshots.
    pub replicas: u32,
}

impl Default for GtsParams {
    fn default() -> Self {
        GtsParams {
            node_capacity: 20,
            seed: 0x67_75,
            cache_capacity_bytes: 5 * 1024,
            two_sided_pruning: true,
            fft_pivots: true,
            query_grouping: true,
            use_arena: true,
            arena_layout: ArenaLayout::Legacy,
            bounded_verification: false,
            host_threads: 0,
            bound_broadcast: false,
            shards: 1,
            replicas: 1,
        }
    }
}

impl GtsParams {
    /// Builder-style node-capacity override.
    pub fn with_node_capacity(mut self, nc: u32) -> Self {
        assert!(nc >= 2);
        self.node_capacity = nc;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style cache-capacity override.
    pub fn with_cache_capacity(mut self, bytes: usize) -> Self {
        self.cache_capacity_bytes = bytes;
        self
    }

    /// Builder-style arena toggle (disable to run the per-pair fallback).
    pub fn with_use_arena(mut self, use_arena: bool) -> Self {
        self.use_arena = use_arena;
        self
    }

    /// Builder-style arena-layout override (request the SIMD-aligned block
    /// layout; metrics without a block kernel degrade it to `Legacy`).
    pub fn with_arena_layout(mut self, layout: ArenaLayout) -> Self {
        self.arena_layout = layout;
        self
    }

    /// Builder-style bounded-verification toggle (enable the
    /// early-abandoning banded leaf kernels).
    pub fn with_bounded_verification(mut self, bounded: bool) -> Self {
        self.bounded_verification = bounded;
        self
    }

    /// Builder-style host-thread override (`0` = auto, i.e. defer to the
    /// device configuration).
    pub fn with_host_threads(mut self, host_threads: usize) -> Self {
        self.host_threads = host_threads;
        self
    }

    /// Builder-style bound-broadcast toggle (enable the lockstep
    /// cross-shard kNN bound exchange; only multi-shard
    /// [`ShardedGts`](crate::ShardedGts) searches consult it).
    pub fn with_bound_broadcast(mut self, broadcast: bool) -> Self {
        self.bound_broadcast = broadcast;
        self
    }

    /// Builder-style shard-count override (≥ 1; only
    /// [`ShardedGts`](crate::ShardedGts) consults it).
    pub fn with_shards(mut self, shards: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Builder-style replica-count override (≥ 1; only
    /// [`ReplicatedShards`](crate::replica::ReplicatedShards) consults it).
    pub fn with_replicas(mut self, replicas: u32) -> Self {
        assert!(replicas >= 1, "need at least one replica");
        self.replicas = replicas;
        self
    }

    /// The thread count the batched kernels should actually use, given the
    /// device's configured auto value.
    pub fn effective_host_threads(&self, device_auto: usize) -> usize {
        if self.host_threads == 0 {
            device_auto.max(1)
        } else {
            self.host_threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = GtsParams::default();
        assert_eq!(p.node_capacity, 20, "paper's recommended Nc");
        assert_eq!(
            p.cache_capacity_bytes,
            5 * 1024,
            "paper's recommended cache"
        );
        assert!(p.two_sided_pruning && p.fft_pivots && p.query_grouping);
        assert!(p.use_arena, "flat arena kernels are the default");
        assert_eq!(
            p.arena_layout,
            ArenaLayout::Legacy,
            "legacy layout by default (aligned is opt-in)"
        );
        assert!(
            !p.bounded_verification,
            "bounded verification is opt-in (cycle baselines stay put)"
        );
        assert_eq!(p.host_threads, 0, "auto host threads by default");
        assert!(
            !p.bound_broadcast,
            "bound broadcast is opt-in (independent-descent cycle baselines stay put)"
        );
        assert_eq!(p.shards, 1, "single-device by default");
        assert_eq!(p.replicas, 1, "unreplicated by default");
    }

    #[test]
    fn host_thread_resolution() {
        let auto = GtsParams::default();
        assert_eq!(auto.effective_host_threads(8), 8);
        assert_eq!(auto.effective_host_threads(0), 1, "auto floors at 1");
        let pinned = GtsParams::default().with_host_threads(3);
        assert_eq!(pinned.effective_host_threads(8), 3);
    }

    #[test]
    fn builders() {
        let p = GtsParams::default()
            .with_node_capacity(40)
            .with_seed(9)
            .with_cache_capacity(100);
        assert_eq!(
            (p.node_capacity, p.seed, p.cache_capacity_bytes),
            (40, 9, 100)
        );
    }
}
