//! Multi-column similarity search (the Remark of paper §5.2).
//!
//! "Within the established PM-Tree framework, we can create a GTS index for
//! each column and address multi-column queries by progressively combining
//! the results of each queried attribute using Fagin's algorithm and the
//! pigeon-hole principle."
//!
//! A *row* has one object per column; the combined distance is the weighted
//! sum `D(a, b) = Σᵢ wᵢ·dᵢ(aᵢ, bᵢ)` (a metric whenever every `dᵢ` is).
//! Queries stay **exact**:
//!
//! * **MRQ** uses the pigeon-hole principle: `D(q, o) ≤ r` implies
//!   `wᵢ·dᵢ(qᵢ, oᵢ) ≤ r/m` for at least one of the `m` columns, so the union
//!   of per-column ranges at radius `r/(m·wᵢ)` is a complete candidate set,
//!   verified with full combined distances.
//! * **MkNNQ** runs Fagin's threshold algorithm: per-column kNN rounds with
//!   doubling depth supply candidates; the threshold
//!   `T = Σᵢ wᵢ·(depth-th column distance)` lower-bounds every unseen row,
//!   so once `k` seen rows have `D ≤ T`, the answer is final.

use crate::index::Gts;
use crate::params::GtsParams;
use gpu_sim::Device;
use metric_space::index::{sort_neighbors, IndexError, Neighbor, SimilarityIndex};
use metric_space::{BatchMetric, Footprint};
use std::collections::HashMap;
use std::sync::Arc;

/// A multi-column index: one GTS per attribute plus column weights.
pub struct MultiGts<O, M> {
    columns: Vec<Gts<O, M>>,
    weights: Vec<f64>,
    rows: usize,
}

impl<O, M> MultiGts<O, M>
where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O> + Clone,
{
    /// Build over column-major data: `columns[c][row]` is row `row`'s value
    /// in column `c`. All columns must have equal length; weights must be
    /// positive (use 1.0 for unweighted sums).
    pub fn build(
        dev: &Arc<Device>,
        columns: Vec<Vec<O>>,
        metrics: Vec<M>,
        weights: Vec<f64>,
        params: GtsParams,
    ) -> Result<Self, IndexError> {
        assert!(!columns.is_empty(), "need at least one column");
        assert_eq!(columns.len(), metrics.len(), "one metric per column");
        assert_eq!(columns.len(), weights.len(), "one weight per column");
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive and finite"
        );
        let rows = columns[0].len();
        assert!(columns.iter().all(|c| c.len() == rows), "ragged columns");
        let built: Result<Vec<_>, _> = columns
            .into_iter()
            .zip(metrics)
            .map(|(col, metric)| Gts::build(dev, col, metric, params))
            .collect();
        Ok(MultiGts {
            columns: built?,
            weights,
            rows,
        })
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Per-column index access (e.g. for stats).
    pub fn column(&self, c: usize) -> &Gts<O, M> {
        &self.columns[c]
    }

    /// Weighted combined distance of row `id` to the query row.
    fn combined_distance(&self, q: &[O], id: u32) -> f64 {
        self.columns
            .iter()
            .zip(&self.weights)
            .zip(q)
            .map(|((col, &w), qc)| w * col.distance_to_query(qc, id))
            .sum()
    }

    /// Exact multi-column range query: rows with `Σᵢ wᵢ·dᵢ ≤ r`.
    pub fn range_query(&self, q: &[O], r: f64) -> Result<Vec<Neighbor>, IndexError> {
        assert_eq!(q.len(), self.columns.len(), "query arity mismatch");
        let m = self.columns.len() as f64;
        // Pigeon-hole candidates: per-column MRQ at radius r/(m·wᵢ).
        let mut seen: HashMap<u32, ()> = HashMap::new();
        for ((col, &w), qc) in self.columns.iter().zip(&self.weights).zip(q) {
            for n in col.range_query(qc, r / (m * w))? {
                seen.insert(n.id, ());
            }
        }
        // Verify candidates with the full combined distance.
        let mut out: Vec<Neighbor> = seen
            .into_keys()
            .filter_map(|id| {
                let d = self.combined_distance(q, id);
                (d <= r).then_some(Neighbor::new(id, d))
            })
            .collect();
        sort_neighbors(&mut out);
        Ok(out)
    }

    /// Exact multi-column kNN via Fagin's threshold algorithm.
    pub fn knn_query(&self, q: &[O], k: usize) -> Result<Vec<Neighbor>, IndexError> {
        assert_eq!(q.len(), self.columns.len(), "query arity mismatch");
        if k == 0 || self.rows == 0 {
            return Ok(Vec::new());
        }
        let k = k.min(self.rows);
        let mut best: Vec<Neighbor> = Vec::new(); // ascending, capped at k
        let mut evaluated: HashMap<u32, f64> = HashMap::new();
        let mut depth = (4 * k).max(16);
        loop {
            // Sorted access: per-column kNN to the current depth.
            let mut threshold = 0.0;
            for ((col, &w), qc) in self.columns.iter().zip(&self.weights).zip(q) {
                let front = col.knn_query(qc, depth.min(self.rows))?;
                // Random access: complete every newly seen row.
                for n in &front {
                    if let std::collections::hash_map::Entry::Vacant(e) = evaluated.entry(n.id) {
                        let d = self.combined_distance(q, n.id);
                        e.insert(d);
                        let pos = best.partition_point(|x| (x.dist, x.id) < (d, n.id));
                        if pos < k {
                            best.insert(pos, Neighbor::new(n.id, d));
                            best.truncate(k);
                        }
                    }
                }
                // Fagin's threshold: no unseen row can beat Σ wᵢ·(depth-th).
                threshold += w * front.last().map_or(0.0, |n| n.dist);
            }
            let kth = if best.len() == k {
                best.last().map_or(f64::INFINITY, |n| n.dist)
            } else {
                f64::INFINITY
            };
            if kth <= threshold || depth >= self.rows {
                return Ok(best);
            }
            depth = (depth * 2).min(self.rows);
        }
    }

    /// Total index bytes across columns.
    pub fn memory_bytes(&self) -> u64 {
        self.columns.iter().map(SimilarityIndex::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric_space::{DatasetKind, Item, ItemMetric};

    /// A two-column table: a word attribute (edit distance) and a 2-d
    /// location attribute (L2), mirroring the paper's "diverse cancer omics"
    /// motivation of mixed-type rows.
    fn two_column_data(n: usize) -> (Vec<Vec<Item>>, Vec<ItemMetric>) {
        let words = DatasetKind::Words.generate(n, 61).items;
        let locs = DatasetKind::TLoc.generate(n, 62).items;
        (vec![words, locs], vec![ItemMetric::Edit, ItemMetric::L2])
    }

    fn brute_force(
        cols: &[Vec<Item>],
        metrics: &[ItemMetric],
        weights: &[f64],
        q: &[Item],
    ) -> Vec<Neighbor> {
        use metric_space::Metric as _;
        let n = cols[0].len();
        let mut v: Vec<Neighbor> = (0..n as u32)
            .map(|id| {
                let d = cols
                    .iter()
                    .zip(metrics)
                    .zip(weights)
                    .zip(q)
                    .map(|(((c, m), &w), qc)| w * m.distance(qc, &c[id as usize]))
                    .sum();
                Neighbor::new(id, d)
            })
            .collect();
        sort_neighbors(&mut v);
        v
    }

    #[test]
    fn multi_column_range_matches_bruteforce() {
        let (cols, metrics) = two_column_data(250);
        let weights = vec![1.0, 0.5];
        let dev = Device::rtx_2080_ti();
        let idx = MultiGts::build(
            &dev,
            cols.clone(),
            metrics.clone(),
            weights.clone(),
            GtsParams::default(),
        )
        .expect("build");
        let q = vec![cols[0][7].clone(), cols[1][7].clone()];
        let all = brute_force(&cols, &metrics, &weights, &q);
        for r in [all[5].dist, all[20].dist] {
            let got = idx.range_query(&q, r).expect("range");
            let want: Vec<Neighbor> = all.iter().copied().take_while(|n| n.dist <= r).collect();
            assert_eq!(got.len(), want.len(), "r={r}");
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multi_column_knn_matches_bruteforce() {
        let (cols, metrics) = two_column_data(200);
        let weights = vec![0.3, 1.0];
        let dev = Device::rtx_2080_ti();
        let idx = MultiGts::build(
            &dev,
            cols.clone(),
            metrics.clone(),
            weights.clone(),
            GtsParams::default(),
        )
        .expect("build");
        let q = vec![cols[0][99].clone(), cols[1][99].clone()];
        let all = brute_force(&cols, &metrics, &weights, &q);
        for k in [1usize, 5, 12] {
            let got = idx.knn_query(&q, k).expect("knn");
            assert_eq!(got.len(), k);
            for (g, w) in got.iter().zip(&all) {
                assert!(
                    (g.dist - w.dist).abs() < 1e-9,
                    "k={k}: {} vs {}",
                    g.dist,
                    w.dist
                );
            }
        }
    }

    #[test]
    fn knn_k_zero_and_oversized() {
        let (cols, metrics) = two_column_data(60);
        let dev = Device::rtx_2080_ti();
        let idx = MultiGts::build(
            &dev,
            cols.clone(),
            metrics,
            vec![1.0, 1.0],
            GtsParams::default(),
        )
        .expect("build");
        let q = vec![cols[0][0].clone(), cols[1][0].clone()];
        assert!(idx.knn_query(&q, 0).expect("k=0").is_empty());
        assert_eq!(idx.knn_query(&q, 500).expect("k>n").len(), 60);
        assert_eq!(idx.num_columns(), 2);
        assert_eq!(idx.len(), 60);
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        let dev = Device::rtx_2080_ti();
        let _ = MultiGts::build(
            &dev,
            vec![
                vec![Item::text("a"), Item::text("b")],
                vec![Item::vector(vec![0.0, 0.0])],
            ],
            vec![ItemMetric::Edit, ItemMetric::L2],
            vec![1.0, 1.0],
            GtsParams::default(),
        );
    }
}
