//! Multi-device sharded GTS: partition the table list across devices,
//! scatter batched queries, merge exactly.
//!
//! The paper's evaluation is single-GPU, but the architecture was built to
//! shard: the [`Device`](gpu_sim::Device) is `Arc`-shared with atomic
//! counters, and search is expressed as per-level batched kernels with no
//! cross-query state. [`ShardedGts`] exploits that the classic way
//! (data-parallel sharding with a host-side merge, as in billion-scale GPU
//! similarity search):
//!
//! * a deterministic [`Partitioner`] splits the object store into `S`
//!   shards — round-robin by default, so shards stay balanced under
//!   sequential id assignment;
//! * each shard is a complete [`Gts`] over its objects, pinned to its own
//!   device from a [`DevicePool`];
//! * a batched MRQ/MkNNQ is **scattered to every shard** (shards execute
//!   concurrently on real host threads — each drives its own device, so
//!   per-device simulated clocks stay deterministic) and the per-shard
//!   answers are **merged exactly** on the host:
//!   - range: concatenation + canonical `(distance, id)` sort;
//!   - kNN: a k-way merge of the per-shard top-`k` lists under the same
//!     `(distance, id)` tie-break the single-device search uses.
//!
//! **Exactness.** Every distance is computed against the same objects as
//! on one device, so per-shard answers are exact over their partition;
//! range answers union losslessly, and the global top-`k` is contained in
//! the union of per-shard top-`k`s. Tie-breaking stays bit-identical
//! because each shard's local ids ascend in global-id order (the
//! partitioner's `split` guarantee), making local `(dis, id)` order agree
//! with global `(dis, id)` order under remapping — `tests/shard_invariance.rs`
//! proves 1-, 2-, and 4-shard answers equal the single-device answers
//! bit-for-bit, ties included.
//!
//! **Updates** route through the partitioner to the owning shard's cache
//! table, so a cache overflow rebuilds only that shard — the other devices'
//! clocks never move. **Stats** aggregate by summing per-shard counters;
//! the pool reports the max per-device cycle count
//! ([`PoolStats::span_cycles`](gpu_sim::PoolStats::span_cycles)) — the
//! sharded critical path, since shards run concurrently. **Snapshots**
//! wrap every shard's [`Gts::snapshot`] in one envelope together with the
//! partition spec (shard count, strategy, object count — the assignment
//! itself is a pure function of these and is recomputed on
//! [`ShardedGts::restore`]).

use crate::engine::BoundExchange;
use crate::index::Gts;
use crate::params::GtsParams;
use crate::snapshot::{R, W};
use crate::stats::StatsSnapshot;
use gpu_sim::DevicePool;
use metric_space::index::{sort_neighbors, DynamicIndex, IndexError, Neighbor, SimilarityIndex};
use metric_space::{BatchMetric, Footprint, PartitionStrategy, Partitioner};

/// Magic + version tag of the sharded snapshot envelope. `GTSI` added the
/// update epoch to the envelope; `GTSH` snapshots (pre-epoch) are rejected.
const SHARD_MAGIC: &[u8; 4] = b"GTSI";

/// One serialized update, the unit the epoch counter advances by: applying
/// an `UpdateOp` to two identical indexes in the same order keeps them
/// identical (same snapshot bytes, same epoch) — the invariant replicated
/// serving relies on.
#[derive(Clone, Debug)]
pub enum UpdateOp<O> {
    /// Insert one object; it receives the next global id.
    Insert(O),
    /// Remove the object with this global id (a no-op — but still an
    /// epoch-advancing one — when the id is unknown or already removed).
    Remove(u32),
    /// Batched insertions + deletions applied together, rebuilding every
    /// affected shard once (paper §4.4).
    Batch {
        /// Objects to insert, assigned consecutive global ids.
        insertions: Vec<O>,
        /// Global ids to tombstone (unknown/dead ids are skipped).
        deletions: Vec<u32>,
    },
}

/// Receipt for one applied [`UpdateOp`]: deterministic across replicas, so
/// any replica's receipt can answer the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Applied {
    /// The epoch the index reached by applying this op (monotone; one op =
    /// one epoch).
    pub epoch: u64,
    /// Global ids assigned to the op's insertions, in insertion order.
    pub assigned: Vec<u32>,
    /// How many deletions flipped a live object to dead.
    pub removed: usize,
}

/// One shard: a complete [`Gts`] over a partition of the dataset, plus the
/// monotone local→global id mapping.
struct Shard<O, M> {
    gts: Gts<O, M>,
    /// `global_ids[local]` = global id; strictly ascending, so local
    /// `(dis, id)` tie-break order equals global order under remapping.
    global_ids: Vec<u32>,
}

impl<O, M> Shard<O, M> {
    /// Rewrite per-query answer lists from local to global ids. Monotone
    /// remapping preserves the canonical `(dis, id)` order.
    fn remap(&self, mut lists: Vec<Vec<Neighbor>>) -> Vec<Vec<Neighbor>> {
        for list in &mut lists {
            for n in list {
                n.id = self.global_ids[n.id as usize];
            }
        }
        lists
    }
}

/// A GTS index sharded over multiple devices.
///
/// Built from a [`DevicePool`] with one device per shard
/// ([`GtsParams::shards`] picks the shard count); behaves like a single
/// [`Gts`] — same query API, same exact answers, same streaming-update
/// semantics — while each shard's kernels run on its own simulated device.
///
/// ```
/// use gts_core::{Gts, GtsParams, ShardedGts};
/// use gpu_sim::{Device, DevicePool};
/// use metric_space::DatasetKind;
///
/// let data = DatasetKind::Words.generate(600, 42);
/// let params = GtsParams::default().with_shards(2);
/// let pool = DevicePool::rtx_2080_ti(2);
/// let sharded = ShardedGts::build(&pool, data.items.clone(), data.metric, params).unwrap();
///
/// // Answers are bit-identical to a single-device index.
/// let single = Gts::build(&Device::rtx_2080_ti(), data.items.clone(), data.metric,
///                         GtsParams::default()).unwrap();
/// let queries = vec![data.items[0].clone(), data.items[1].clone()];
/// assert_eq!(
///     sharded.batch_knn(&queries, 5).unwrap(),
///     single.batch_knn(&queries, 5).unwrap(),
/// );
/// ```
pub struct ShardedGts<O, M> {
    pool: DevicePool,
    partitioner: Partitioner,
    shards: Vec<Shard<O, M>>,
    /// Total objects ever inserted (the global id counter).
    global_len: usize,
    /// Monotone update epoch: advanced by exactly one per applied
    /// [`UpdateOp`]; persisted by snapshots and resumed on restore.
    epoch: u64,
    /// Receipt staged by [`ShardedGts::apply`] before its device phase;
    /// consumed on success or by [`ShardedGts::repair`] after a fault.
    pending: Option<Applied>,
    /// While fenced (a running service owns this index), the
    /// [`DynamicIndex`] mutation surface is rejected — out-of-band updates
    /// would race the service's serialized apply order.
    fenced: bool,
}

impl<O, M> ShardedGts<O, M> {
    /// The update epoch: how many [`UpdateOp`]s this index has applied
    /// (including via the [`DynamicIndex`] surface). Two replicas that
    /// applied the same ops in the same order report the same epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reject out-of-band [`DynamicIndex`] mutation until
    /// [`ShardedGts::release_fence`]; a running query service fences every
    /// index it serves so all updates flow through its admission queue in
    /// one serialized order.
    pub fn fence(&mut self) {
        self.fenced = true;
    }

    /// Allow direct [`DynamicIndex`] mutation again (service shut down).
    pub fn release_fence(&mut self) {
        self.fenced = false;
    }

    /// Whether the [`DynamicIndex`] mutation surface is currently fenced.
    pub fn is_fenced(&self) -> bool {
        self.fenced
    }

    fn ensure_unfenced(&self) -> Result<(), IndexError> {
        if self.fenced {
            return Err(IndexError::Unsupported(
                "index is fenced by a running query service; submit updates \
                 through the service instead of mutating the index directly",
            ));
        }
        Ok(())
    }
}

/// Map `f` over owned work items, one scoped host thread per item (inline
/// when there is at most one), joining in item order — the spawn/join
/// shape shared by the sharded build and the query scatter (and by the
/// degraded path of [`ReplicatedShards`](crate::replica::ReplicatedShards)).
/// Determinism: each item drives only its own device, and results are
/// collected in item order.
pub(crate) fn scoped_map<I: Send, T: Send>(
    items: Vec<I>,
    f: impl Fn(usize, I) -> T + Sync,
) -> Vec<T> {
    if items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, it)| f(i, it))
            .collect();
    }
    // Trace contexts are thread-local: replant the caller's context inside
    // every scatter thread so events recorded there keep the request/batch
    // association (a no-op context plants a no-op).
    let ctx = gts_trace::current_ctx();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .into_iter()
            .enumerate()
            .map(|(i, it)| {
                scope.spawn(move || {
                    let _scope = gts_trace::scoped_ctx(ctx);
                    f(i, it)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise with the original payload so typed panics (e.g.
                // an injected `DeviceFault`) stay downcastable after
                // crossing the scatter threads.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Run one shard's slice of a scatter under a shard-tagged trace context,
/// recording a [`ShardScatter`](gts_trace::EventKind::ShardScatter) span
/// over the shard device's clock. Free when no tracer is attached; never
/// advances the clock either way.
fn traced_shard<O, M, T>(s: usize, shard: &Shard<O, M>, f: impl FnOnce() -> T) -> T
where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O>,
{
    let mut ctx = gts_trace::current_ctx();
    ctx.shard = Some(s as u32);
    let _scope = gts_trace::scoped_ctx(ctx);
    let dev = shard.gts.device();
    let trace = dev.tracer();
    let begin = trace.as_ref().map(|_| dev.cycles());
    let out = f();
    if let Some((rec, dev_id)) = trace {
        rec.record(gts_trace::TraceEvent::span(
            gts_trace::EventKind::ShardScatter,
            gts_trace::current_ctx(),
            Some(dev_id),
            begin.expect("snapshotted alongside the tracer"),
            dev.cycles(),
        ));
    }
    out
}

/// Auto host-thread budget for one shard: shards scatter onto their own
/// host threads, so the device's auto thread count is divided by the shard
/// count — otherwise S shards × T chunk workers oversubscribe the host
/// S-fold. Wall-clock only (answers and simulated cycles are
/// thread-invariant); shared by build and restore so a snapshot round-trip
/// keeps per-shard budgets identical, including on heterogeneous pools.
fn divided_auto_threads(dev: &gpu_sim::Device, shards: usize) -> usize {
    (dev.host_threads().max(1) / shards).max(1)
}

/// Merge per-shard top-`k` lists (each in canonical ascending `(dis, id)`
/// order) into the global top-`k`, preserving the single-device tie-break.
/// Crate-visible so [`ReplicatedShards`](crate::replica::ReplicatedShards)
/// can merge per-shard answers it gathered from *different* replicas.
pub(crate) fn kway_merge(lists: &[Vec<Neighbor>], k: usize) -> Vec<Neighbor> {
    let mut heads = vec![0usize; lists.len()];
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let mut best: Option<(usize, (f64, u32))> = None;
        for (s, list) in lists.iter().enumerate() {
            if let Some(n) = list.get(heads[s]) {
                let key = (n.dist, n.id);
                if best.is_none_or(|(_, b)| key < b) {
                    best = Some((s, key));
                }
            }
        }
        let Some((s, _)) = best else { break };
        out.push(lists[s][heads[s]]);
        heads[s] += 1;
    }
    out
}

impl<O, M> ShardedGts<O, M>
where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O> + Clone,
{
    /// Build a sharded index: `params.shards` shards, round-robin
    /// partitioning, shard `s` pinned to `pool.get(s)`.
    ///
    /// The pool must supply at least one device per shard, and every shard
    /// must receive at least one object — `n ≥ shards` guarantees this
    /// under round-robin; under [`PartitionStrategy::Hash`] small datasets
    /// can still leave a shard empty, which is rejected with a dedicated
    /// error ([`IndexError::EmptyIndex`] is reserved for an actually-empty
    /// dataset).
    pub fn build(
        pool: &DevicePool,
        objects: Vec<O>,
        metric: M,
        params: GtsParams,
    ) -> Result<Self, IndexError> {
        Self::build_with_strategy(pool, objects, metric, params, PartitionStrategy::RoundRobin)
    }

    /// [`ShardedGts::build`] with an explicit partitioning strategy.
    pub fn build_with_strategy(
        pool: &DevicePool,
        objects: Vec<O>,
        metric: M,
        params: GtsParams,
        strategy: PartitionStrategy,
    ) -> Result<Self, IndexError> {
        let shards = params.shards as usize;
        assert!(
            pool.len() >= shards,
            "pool must supply one device per shard ({} < {shards})",
            pool.len()
        );
        if objects.is_empty() {
            return Err(IndexError::EmptyIndex);
        }
        let partitioner = Partitioner::new(params.shards, strategy);
        let assignment = partitioner.split(objects.len());
        if assignment.iter().any(Vec::is_empty) {
            return Err(IndexError::Unsupported(
                "partitioning produced an empty shard (use fewer shards, more \
                 objects, or round-robin partitioning)",
            ));
        }
        // Carve the per-shard object stores (ids ascend within each shard).
        let stores: Vec<Vec<O>> = assignment
            .iter()
            .map(|ids| ids.iter().map(|&g| objects[g as usize].clone()).collect())
            .collect();
        let global_len = objects.len();
        drop(objects);
        // Build every shard concurrently, one host thread per device.
        let built: Vec<Result<Gts<O, M>, IndexError>> = scoped_map(stores, |s, store| {
            let mut shard_params = params;
            if params.host_threads == 0 {
                shard_params.host_threads = divided_auto_threads(pool.get(s), shards);
            }
            Gts::build(pool.get(s), store, metric.clone(), shard_params)
        });
        let mut shard_vec = Vec::with_capacity(shards);
        for (gts, global_ids) in built.into_iter().zip(assignment) {
            shard_vec.push(Shard {
                gts: gts?,
                global_ids,
            });
        }
        Ok(ShardedGts {
            pool: DevicePool::from_devices(pool.devices()[..shards].to_vec()),
            partitioner,
            shards: shard_vec,
            global_len,
            epoch: 0,
            pending: None,
            fenced: false,
        })
    }

    /// Run `f` on every shard concurrently (one host thread per shard),
    /// collecting results in shard order — the scatter half of
    /// scatter/merge. Each shard drives only its own device, so per-device
    /// counters stay deterministic regardless of interleaving.
    fn scatter<T: Send>(&self, f: impl Fn(&Shard<O, M>) -> T + Sync) -> Vec<T> {
        scoped_map(self.shards.iter().collect(), |s, shard| {
            traced_shard(s, shard, || f(shard))
        })
    }

    /// Record a `Merge` instant (per-shard answers folded into global ones)
    /// against the first traced device, stamped at the post-scatter critical
    /// path — the max shard clock, i.e. when the merge could begin.
    fn trace_merge(&self, results: u64) {
        let Some((rec, dev_id)) = self.shards.iter().find_map(|sh| sh.gts.device().tracer()) else {
            return;
        };
        let at = self
            .shards
            .iter()
            .map(|sh| sh.gts.device().cycles())
            .max()
            .unwrap_or(0);
        rec.record(gts_trace::TraceEvent::instant(
            gts_trace::EventKind::Merge { results },
            gts_trace::current_ctx(),
            Some(dev_id),
            at,
        ));
    }

    /// Batched metric range query: every query runs on every shard;
    /// per-shard answers (already exact over their partition) are
    /// concatenated and canonically sorted — the exact union.
    pub fn batch_range(
        &self,
        queries: &[O],
        radii: &[f64],
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        assert_eq!(queries.len(), radii.len());
        let per_shard = self.scatter(|sh| sh.gts.batch_range(queries, radii).map(|r| sh.remap(r)));
        let mut merged: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        for lists in per_shard {
            for (m, mut list) in merged.iter_mut().zip(lists?) {
                m.append(&mut list);
            }
        }
        for m in &mut merged {
            sort_neighbors(m);
        }
        self.trace_merge(merged.len() as u64);
        Ok(merged)
    }

    /// Batched metric kNN query: every shard returns its local top-`k`;
    /// the global top-`k` is a k-way merge under the `(distance, id)`
    /// tie-break — bit-identical to the single-device answer.
    ///
    /// With [`GtsParams::bound_broadcast`] on (and more than one shard),
    /// the shards descend in **lockstep** instead of independently: after
    /// every tree level a barrier takes the element-wise minimum of the
    /// per-query kNN bounds across shards and injects it into every shard's
    /// next level, so each shard prunes against the *global* k-th-NN bound.
    /// Answers are bit-identical either way — the broadcast bound only
    /// moves toward the true global k-th distance, and the tie-safe
    /// closed-ball pruning keeps every canonical answer alive — but the
    /// broadcast path verifies strictly fewer leaves on workloads where
    /// shards see different data densities, at the cost of per-level
    /// barriers (each device's clock aligns to the slowest shard per level;
    /// see [`Device::advance_clock_to`](gpu_sim::Device::advance_clock_to))
    /// and the bound-exchange transfers.
    pub fn batch_knn(&self, queries: &[O], k: usize) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        if self.broadcast_active(queries.len(), k) {
            let exchange = BoundExchange::new(self.shards.len(), queries.len());
            let per_shard = scoped_map(self.shards.iter().collect(), |s, sh| {
                traced_shard(s, sh, || {
                    sh.gts
                        .batch_knn_lockstep(queries, k, &exchange)
                        .map(|r| sh.remap(r))
                })
            });
            let merged = Self::merge_knn(per_shard, queries.len(), k);
            if merged.is_ok() {
                self.trace_merge(queries.len() as u64);
            }
            return merged;
        }
        let per_shard = self.scatter(|sh| sh.gts.batch_knn(queries, k).map(|r| sh.remap(r)));
        let merged = Self::merge_knn(per_shard, queries.len(), k);
        if merged.is_ok() {
            self.trace_merge(queries.len() as u64);
        }
        merged
    }

    /// Approximate batched MkNNQ ([`Gts::batch_knn_approx`]), scattered to
    /// every shard and merged by the same k-way `(distance, id)` merge as
    /// the exact search. Each shard applies the `beam` to **its own**
    /// per-level frontier, so a small beam explores up to `S·beam` nodes
    /// per level in total and N-shard recall can differ from 1-shard recall
    /// — but a beam wide enough to make the per-shard search exact (e.g.
    /// `beam ≥ Nc^(h−1)`) makes the merged answer bit-identical to the
    /// exact single-device search, ties included
    /// (`tests/shard_invariance.rs`).
    pub fn batch_knn_approx(
        &self,
        queries: &[O],
        k: usize,
        beam: usize,
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        let per_shard = self.scatter(|sh| {
            sh.gts
                .batch_knn_approx(queries, k, beam)
                .map(|r| sh.remap(r))
        });
        Self::merge_knn(per_shard, queries.len(), k)
    }

    /// Whether this batch takes the lockstep broadcast path: opted in via
    /// [`GtsParams::bound_broadcast`], more than one shard (a single shard
    /// has nobody to exchange bounds with), and a non-trivial batch.
    fn broadcast_active(&self, queries: usize, k: usize) -> bool {
        self.shards.len() > 1 && queries > 0 && k > 0 && self.shards[0].gts.params().bound_broadcast
    }

    /// Merge per-shard top-`k` lists (already remapped to global ids) into
    /// per-query global top-`k` answers — the shared merge half of the
    /// exact, approximate, and broadcast kNN paths.
    fn merge_knn(
        per_shard: Vec<Result<Vec<Vec<Neighbor>>, IndexError>>,
        queries: usize,
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        let mut shard_lists: Vec<Vec<Vec<Neighbor>>> = Vec::with_capacity(per_shard.len());
        for lists in per_shard {
            shard_lists.push(lists?);
        }
        Ok((0..queries)
            .map(|q| {
                let lists: Vec<Vec<Neighbor>> = shard_lists
                    .iter_mut()
                    .map(|per_q| std::mem::take(&mut per_q[q]))
                    .collect();
                kway_merge(&lists, k)
            })
            .collect())
    }

    /// Range query against **one shard only**, answers remapped to global
    /// ids (exact over that shard's partition). Building block for the
    /// degraded path of [`ReplicatedShards`](crate::replica::ReplicatedShards),
    /// which re-assembles a full answer from surviving shard copies spread
    /// across replicas; runs on the calling thread so panics (injected
    /// device faults, metric bugs) surface directly to the caller.
    pub(crate) fn shard_range(
        &self,
        s: usize,
        queries: &[O],
        radii: &[f64],
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        let sh = &self.shards[s];
        traced_shard(s, sh, || {
            sh.gts.batch_range(queries, radii).map(|r| sh.remap(r))
        })
    }

    /// kNN against **one shard only**, remapped to global ids; the shard's
    /// local top-`k` (see [`ShardedGts::shard_range`] for the role).
    pub(crate) fn shard_knn(
        &self,
        s: usize,
        queries: &[O],
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        let sh = &self.shards[s];
        traced_shard(s, sh, || sh.gts.batch_knn(queries, k).map(|r| sh.remap(r)))
    }

    /// Toggle the cross-shard kNN bound broadcast on every shard (see
    /// [`GtsParams::bound_broadcast`]); affects subsequent searches only.
    /// Broadcast is an execution-topology knob and is therefore not
    /// persisted by snapshots — restored indexes come back with it off and
    /// can be re-armed here.
    pub fn set_bound_broadcast(&mut self, broadcast: bool) {
        for s in &mut self.shards {
            s.gts.set_bound_broadcast(broadcast);
        }
    }

    // -- accessors ------------------------------------------------------------

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard index `s` (e.g. for per-shard stats).
    pub fn shard(&self, s: usize) -> &Gts<O, M> {
        &self.shards[s].gts
    }

    /// The device pool backing the shards (its
    /// [`aggregate`](DevicePool::aggregate) sums per-device counters and
    /// reports the sharded critical path `span_cycles`).
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The id→shard assignment.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Aggregate search counters: per-shard snapshots summed
    /// ([`StatsSnapshot::combine`]; `max_frontier` maxes, as shard
    /// frontiers occupy different devices).
    pub fn stats(&self) -> StatsSnapshot {
        self.shards
            .iter()
            .map(|s| s.gts.stats())
            .fold(StatsSnapshot::default(), StatsSnapshot::combine)
    }

    /// Search counters of shard `s` alone.
    pub fn shard_stats(&self, s: usize) -> StatsSnapshot {
        self.shards[s].gts.stats()
    }

    /// Reset every shard's search counters.
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.gts.reset_stats();
        }
    }

    /// The sharded critical path: the slowest device's simulated cycle
    /// count (shards execute concurrently, so elapsed simulated time is
    /// the max, not the sum).
    pub fn span_cycles(&self) -> u64 {
        self.pool.aggregate().span_cycles
    }

    /// Size one query batch against the **global** two-stage memory budget:
    /// the largest batch the §5.3 cost model expects *every* shard to run
    /// without query grouping.
    ///
    /// A batched query scatters to all shards, so the batch must fit the
    /// least-headroom device — each shard's capacity is therefore evaluated
    /// against [`DevicePool::free_bytes_min`] (the pool-wide free-memory
    /// view) rather than the shard's own free bytes, and the answer is the
    /// minimum across shards (shard trees differ in height and survivor
    /// profile). This closes the gap the per-shard two-stage strategy
    /// leaves open: in-search grouping still sizes groups off each shard's
    /// own memory as a safety net, but the admission-side scheduler plans
    /// batches the whole pool can take in one descent.
    ///
    /// The per-shard cost models are fitted by seeded sampling
    /// ([`Gts::cost_model`] with `samples`, `seed`), so the returned size
    /// is deterministic for a given index state — the property the
    /// `gts-service` microbatcher relies on for reproducible batch
    /// formation. Fitting charges the sampling kernels to each shard's
    /// device clock.
    pub fn max_batch_queries(&self, radius: f64, samples: usize, seed: u64) -> usize {
        let free = self.pool.free_bytes_min();
        self.shards
            .iter()
            .map(|sh| {
                let model = sh.gts.cost_model(samples, seed);
                sh.gts.max_batch_queries_with_free(free, &model, radius)
            })
            .min()
            .expect("a sharded index holds at least one shard")
            .max(1)
    }

    /// Folded cost-model audit across shards: counters sum, calibration
    /// histograms merge, peak bytes max, and the predicted batch is the
    /// cross-shard minimum
    /// ([`CostAuditSnapshot::combine`](crate::audit::CostAuditSnapshot::combine))
    /// — exactly the batch [`ShardedGts::max_batch_queries`] admits.
    pub fn cost_audit(&self) -> crate::audit::CostAuditSnapshot {
        self.shards
            .iter()
            .map(|s| s.gts.cost_audit())
            .fold(crate::audit::CostAuditSnapshot::default(), |a, b| {
                a.combine(b)
            })
    }

    /// Enable or disable the cost-model audit on every shard.
    pub fn set_cost_audit_enabled(&self, on: bool) {
        for s in &self.shards {
            s.gts.set_cost_audit_enabled(on);
        }
    }

    /// Serialize the whole sharded index into one envelope: the partition
    /// spec (shard count, strategy, global object count — the per-shard id
    /// assignment is a pure function of these) followed by every shard's
    /// [`Gts::snapshot`]; see [`ShardedGts::restore`].
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = W(Vec::new());
        w.0.extend_from_slice(SHARD_MAGIC);
        w.u32(self.partitioner.shards());
        w.u8(self.partitioner.strategy().tag());
        w.u64(self.global_len as u64);
        w.u64(self.epoch);
        for shard in &self.shards {
            let inner = shard.gts.snapshot();
            w.u64(inner.len() as u64);
            w.0.extend_from_slice(&inner);
        }
        w.0
    }

    /// Rebuild a sharded index from a [`ShardedGts::snapshot`] and the
    /// caller's **global** object store (every object ever inserted, in
    /// global-id order). The partition assignment is recomputed from the
    /// envelope's `(strategy, global_len)`; each shard's inner snapshot is
    /// validated by [`Gts::restore`] against the carved store.
    pub fn restore(
        pool: &DevicePool,
        objects: Vec<O>,
        metric: M,
        bytes: &[u8],
    ) -> Result<Self, IndexError> {
        let mut r = R { buf: bytes, pos: 0 };
        if r.take(4)? != SHARD_MAGIC {
            return Err(IndexError::Unsupported("bad sharded snapshot magic"));
        }
        let shards = r.u32()?;
        if shards < 1 {
            return Err(IndexError::Unsupported("corrupt sharded snapshot: shards"));
        }
        let strategy = PartitionStrategy::from_tag(r.u8()?)
            .ok_or(IndexError::Unsupported("unknown partition strategy"))?;
        let global_len = r.u64()? as usize;
        let epoch = r.u64()?;
        if global_len != objects.len() {
            return Err(IndexError::Unsupported(
                "sharded snapshot object count does not match the provided store",
            ));
        }
        assert!(
            pool.len() >= shards as usize,
            "pool must supply one device per shard ({} < {shards})",
            pool.len()
        );
        let shards = shards as usize;
        let partitioner = Partitioner::new(shards as u32, strategy);
        // Slice every shard's inner snapshot out of the envelope first,
        // then restore all shards concurrently (same `scoped_map` shape as
        // the build; restore does device transfers and validation per
        // shard, so it parallelises the same way).
        let mut parts: Vec<(Vec<u32>, &[u8])> = Vec::with_capacity(shards);
        for global_ids in partitioner.split(global_len) {
            let inner_len = r.u64()? as usize;
            parts.push((global_ids, r.take(inner_len)?));
        }
        if !r.done() {
            return Err(IndexError::Unsupported(
                "trailing bytes in sharded snapshot",
            ));
        }
        let restored: Vec<Result<Shard<O, M>, IndexError>> =
            scoped_map(parts, |s, (global_ids, inner)| {
                let store: Vec<O> = global_ids
                    .iter()
                    .map(|&g| objects[g as usize].clone())
                    .collect();
                let mut gts = Gts::restore(pool.get(s), store, metric.clone(), inner)?;
                // Same auto thread-budget division as the build path.
                gts.set_host_threads(divided_auto_threads(pool.get(s), shards));
                Ok(Shard { gts, global_ids })
            });
        let mut shard_vec = Vec::with_capacity(shards);
        for shard in restored {
            shard_vec.push(shard?);
        }
        Ok(ShardedGts {
            pool: DevicePool::from_devices(pool.devices()[..shards].to_vec()),
            partitioner,
            shards: shard_vec,
            global_len,
            // Restore resumes the update epoch, so a restored index keeps
            // stamping responses exactly where the snapshotted one left off.
            epoch,
            pending: None,
            fenced: false,
        })
    }

    // -- serialized updates -------------------------------------------------

    /// Apply one [`UpdateOp`], advancing the epoch by exactly one. This is
    /// the serialization point of streaming updates: two identical indexes
    /// applying the same ops in the same order stay bit-identical (same
    /// answers, same snapshot, same epoch), which is what lets replicas and
    /// a single-device oracle agree.
    ///
    /// Crash consistency: all host mutations (object stores, id mappings,
    /// tombstones, the staged [`Applied`] receipt) complete before any
    /// device kernel can fire an injected fault. A fault therefore leaves
    /// the host state complete but the epoch un-advanced and possibly a
    /// shard structure stale — exactly what [`ShardedGts::repair`] finishes.
    ///
    /// A typed `Err` (e.g. device OOM during a rebuild) still advances the
    /// epoch: such errors are deterministic given identical replicas, so
    /// counting the op keeps replica epochs converged.
    pub fn apply(&mut self, op: &UpdateOp<O>) -> Result<Applied, IndexError> {
        let mut result: Result<(), IndexError> = Ok(());
        match op {
            UpdateOp::Insert(obj) => {
                let gid = self.global_len as u32;
                let s = self.partitioner.shard_of(gid) as usize;
                let shard = &mut self.shards[s];
                // Record the mapping before the fallible insert (same
                // reasoning as the DynamicIndex path): the inner store
                // grows before its only fault point, the overflow rebuild.
                shard.global_ids.push(gid);
                self.global_len += 1;
                self.pending = Some(Applied {
                    epoch: self.epoch + 1,
                    assigned: vec![gid],
                    removed: 0,
                });
                result = shard.gts.insert(obj.clone()).map(|_| ());
            }
            UpdateOp::Remove(id) => {
                if (*id as usize) < self.global_len {
                    let s = self.partitioner.shard_of(*id) as usize;
                    let shard = &mut self.shards[s];
                    let local = shard
                        .global_ids
                        .binary_search(id)
                        .expect("every assigned id is present in its shard");
                    // The receipt is staged from the pre-remove live state,
                    // before the tombstone scan kernel can fault.
                    self.pending = Some(Applied {
                        epoch: self.epoch + 1,
                        assigned: Vec::new(),
                        removed: usize::from(shard.gts.is_live(local as u32)),
                    });
                    result = shard.gts.remove(local as u32).map(|_| ());
                } else {
                    self.pending = Some(Applied {
                        epoch: self.epoch + 1,
                        assigned: Vec::new(),
                        removed: 0,
                    });
                }
            }
            UpdateOp::Batch {
                insertions,
                deletions,
            } => {
                let s = self.shards.len();
                let mut per_ins: Vec<Vec<O>> = (0..s).map(|_| Vec::new()).collect();
                let mut per_del: Vec<Vec<u32>> = (0..s).map(|_| Vec::new()).collect();
                let mut assigned = Vec::with_capacity(insertions.len());
                for obj in insertions {
                    let gid = self.global_len as u32;
                    let shard = self.partitioner.shard_of(gid) as usize;
                    per_ins[shard].push(obj.clone());
                    self.shards[shard].global_ids.push(gid);
                    self.global_len += 1;
                    assigned.push(gid);
                }
                for &d in deletions {
                    if (d as usize) < self.global_len {
                        let shard = self.partitioner.shard_of(d) as usize;
                        let local = self.shards[shard]
                            .global_ids
                            .binary_search(&d)
                            .expect("every assigned id is present in its shard");
                        per_del[shard].push(local as u32);
                    }
                }
                // Stage every shard's host mutations first (infallible, no
                // device work), then rebuild the affected shards. A panic
                // mid-rebuild leaves all host stores complete; repair just
                // re-runs the deterministic rebuilds.
                let mut removed = 0usize;
                let mut affected = vec![false; s];
                for (i, (ins, del)) in per_ins.into_iter().zip(&per_del).enumerate() {
                    if !ins.is_empty() || !del.is_empty() {
                        removed += self.shards[i].gts.stage_update(ins, del);
                        affected[i] = true;
                    }
                }
                self.pending = Some(Applied {
                    epoch: self.epoch + 1,
                    assigned,
                    removed,
                });
                let mut first_err = None;
                for (i, shard) in self.shards.iter_mut().enumerate() {
                    if affected[i] {
                        if let Err(e) = shard.gts.rebuild() {
                            first_err.get_or_insert(e);
                        }
                    }
                }
                if let Some(e) = first_err {
                    result = Err(e);
                }
            }
        }
        self.epoch += 1;
        let applied = self.pending.take().expect("receipt staged above");
        result.map(|_| applied)
    }

    /// Finish an [`ShardedGts::apply`] that panicked mid-device-phase (an
    /// injected [`DeviceFault`](gpu_sim::fault::DeviceFault) during a
    /// rebuild or tombstone scan). The host state is already complete —
    /// `apply` stages every host mutation before its first kernel — so
    /// repair only re-runs the structural work the op still deterministically
    /// requires, advances the epoch, and returns the staged receipt:
    ///
    /// * `Insert` — rebuild the owning shard iff its cache still exceeds
    ///   capacity (the §4.4 overflow condition persists across a faulted
    ///   rebuild, and is the same condition an un-faulted replica evaluated,
    ///   so both rebuild exactly once and converge bit-identically);
    /// * `Remove` — nothing structural (the tombstone precedes the scan
    ///   kernel);
    /// * `Batch` — rebuild every affected shard (a shard that already
    ///   rebuilt before the fault rebuilds again; reconstruction is a pure
    ///   function of the object store, so the result is identical).
    ///
    /// Errors with [`IndexError::Unsupported`] when no failed apply is
    /// pending.
    pub fn repair(&mut self, op: &UpdateOp<O>) -> Result<Applied, IndexError> {
        // Peek (don't consume) the receipt: a repair that faults again must
        // leave it staged for the next repair attempt.
        if self.pending.is_none() {
            return Err(IndexError::Unsupported(
                "no faulted update is pending repair",
            ));
        }
        let mut result: Result<(), IndexError> = Ok(());
        match op {
            UpdateOp::Insert(_) => {
                let gid = (self.global_len - 1) as u32;
                let s = self.partitioner.shard_of(gid) as usize;
                let gts = &mut self.shards[s].gts;
                if gts.cache_bytes() > gts.cache_capacity() {
                    result = gts.rebuild();
                }
            }
            UpdateOp::Remove(_) => {}
            UpdateOp::Batch {
                insertions,
                deletions,
            } => {
                let mut affected = vec![false; self.shards.len()];
                let first_gid = self.global_len - insertions.len();
                for gid in first_gid..self.global_len {
                    affected[self.partitioner.shard_of(gid as u32) as usize] = true;
                }
                for &d in deletions {
                    if (d as usize) < self.global_len {
                        affected[self.partitioner.shard_of(d) as usize] = true;
                    }
                }
                let mut first_err = None;
                for (i, shard) in self.shards.iter_mut().enumerate() {
                    if affected[i] {
                        if let Err(e) = shard.gts.rebuild() {
                            first_err.get_or_insert(e);
                        }
                    }
                }
                if let Some(e) = first_err {
                    result = Err(e);
                }
            }
        }
        self.epoch += 1;
        let pending = self.pending.take().expect("checked above");
        result.map(|_| pending)
    }
}

impl<O, M> SimilarityIndex<O> for ShardedGts<O, M>
where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O> + Clone,
{
    fn name(&self) -> &'static str {
        "GTS-sharded"
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.gts.len()).sum()
    }

    fn range_query(&self, q: &O, r: f64) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_range(std::slice::from_ref(q), &[r])?
            .pop()
            .expect("one answer per query"))
    }

    fn knn_query(&self, q: &O, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_knn(std::slice::from_ref(q), k)?
            .pop()
            .expect("one answer per query"))
    }

    fn batch_range(&self, queries: &[O], radii: &[f64]) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        ShardedGts::batch_range(self, queries, radii)
    }

    fn batch_knn(&self, queries: &[O], k: usize) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        ShardedGts::batch_knn(self, queries, k)
    }

    fn memory_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.gts.memory_bytes()).sum()
    }
}

impl<O, M> DynamicIndex<O> for ShardedGts<O, M>
where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O> + Clone,
{
    /// Streaming insert: the partitioner routes the new global id to its
    /// owning shard's cache table. A cache overflow rebuilds **only that
    /// shard** — the other devices' clocks never move. Delegates to
    /// [`ShardedGts::apply`], so direct inserts advance the epoch too;
    /// rejected while the index is [fenced](ShardedGts::fence).
    fn insert(&mut self, obj: O) -> Result<u32, IndexError> {
        self.ensure_unfenced()?;
        let applied = self.apply(&UpdateOp::Insert(obj))?;
        Ok(applied.assigned[0])
    }

    /// Streaming delete, routed to the owning shard; epoch-advancing even
    /// when the id is unknown (a no-op still serializes), and rejected
    /// while fenced.
    fn remove(&mut self, id: u32) -> Result<bool, IndexError> {
        self.ensure_unfenced()?;
        Ok(self.apply(&UpdateOp::Remove(id))?.removed > 0)
    }

    /// Batch update: changes are routed per shard; **only shards that
    /// received changes reconstruct**, the rest are untouched. Rejected
    /// while fenced.
    fn batch_update(&mut self, insertions: Vec<O>, deletions: &[u32]) -> Result<(), IndexError> {
        self.ensure_unfenced()?;
        self.apply(&UpdateOp::Batch {
            insertions,
            deletions: deletions.to_vec(),
        })
        .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;
    use metric_space::{DatasetKind, Item, ItemMetric};

    fn data(n: usize) -> (Vec<Item>, ItemMetric) {
        let d = DatasetKind::Words.generate(n, 33);
        (d.items, d.metric)
    }

    fn sharded(n: usize, s: u32) -> (Vec<Item>, ItemMetric, ShardedGts<Item, ItemMetric>) {
        let (items, metric) = data(n);
        let pool = DevicePool::rtx_2080_ti(s as usize);
        let idx = ShardedGts::build(
            &pool,
            items.clone(),
            metric,
            GtsParams::default().with_shards(s),
        )
        .expect("build");
        (items, metric, idx)
    }

    #[test]
    fn kway_merge_respects_tie_break() {
        let lists = vec![
            vec![Neighbor::new(5, 1.0), Neighbor::new(9, 2.0)],
            vec![Neighbor::new(2, 1.0), Neighbor::new(3, 1.0)],
        ];
        let merged = kway_merge(&lists, 3);
        let ids: Vec<u32> = merged.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![2, 3, 5], "ties at d=1.0 break by ascending id");
    }

    #[test]
    fn kway_merge_short_lists() {
        let lists = vec![vec![Neighbor::new(1, 0.5)], Vec::new()];
        assert_eq!(kway_merge(&lists, 10).len(), 1);
        assert!(kway_merge(&[], 5).is_empty());
    }

    #[test]
    fn sharded_matches_single_device() {
        let (items, metric, idx) = sharded(400, 3);
        let single = Gts::build(
            &Device::rtx_2080_ti(),
            items.clone(),
            metric,
            GtsParams::default(),
        )
        .expect("build");
        let queries: Vec<Item> = (0..10).map(|i| items[i * 17].clone()).collect();
        let radii = vec![2.0; queries.len()];
        assert_eq!(
            idx.batch_range(&queries, &radii).expect("mrq"),
            single.batch_range(&queries, &radii).expect("mrq"),
        );
        assert_eq!(
            idx.batch_knn(&queries, 7).expect("knn"),
            single.batch_knn(&queries, 7).expect("knn"),
        );
        assert_eq!(idx.len(), 400);
        assert_eq!(idx.num_shards(), 3);
    }

    #[test]
    fn insert_routes_to_owning_shard_only() {
        let (_, _, mut idx) = sharded(90, 3);
        let before: Vec<u64> = (0..3).map(|s| idx.pool().get(s).cycles()).collect();
        let gid = idx.insert(Item::text("routed")).expect("insert");
        assert_eq!(gid, 90);
        let owner = idx.partitioner().shard_of(gid) as usize;
        for (s, &b) in before.iter().enumerate() {
            let moved = idx.pool().get(s).cycles() != b;
            assert_eq!(moved, s == owner, "only the owning shard's clock moves");
        }
        // The insertion is findable (through the owning shard's cache).
        let hits = idx.range_query(&Item::text("routed"), 0.0).expect("q");
        assert!(hits.iter().any(|n| n.id == gid));
        // And removable by its global id.
        assert!(idx.remove(gid).expect("rm"));
        assert!(!idx.remove(gid).expect("rm twice"));
        assert!(
            !idx.remove(9_999).expect("unknown"),
            "absent id is Ok(false)"
        );
    }

    #[test]
    fn batch_update_rebuilds_only_affected_shards() {
        let (_, _, mut idx) = sharded(120, 4);
        // Delete ids owned by shard 1 only (round-robin: id % 4 == 1).
        let before: Vec<u64> = (0..4).map(|s| idx.pool().get(s).cycles()).collect();
        idx.batch_update(Vec::new(), &[1, 5, 9]).expect("update");
        for (s, &b) in before.iter().enumerate() {
            let moved = idx.pool().get(s).cycles() != b;
            assert_eq!(moved, s == 1, "only shard 1 reconstructs");
        }
        assert_eq!(idx.len(), 117);
    }

    #[test]
    fn snapshot_roundtrip() {
        let (items, metric, mut idx) = sharded(200, 2);
        idx.remove(7).expect("rm");
        let gid = idx.insert(Item::text("snap")).expect("ins");
        let mut store = items.clone();
        store.push(Item::text("snap"));

        let bytes = idx.snapshot();
        let pool = DevicePool::rtx_2080_ti(2);
        let restored = ShardedGts::restore(&pool, store, metric, &bytes).expect("restore");
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.num_shards(), 2);
        let q = Item::text("snap");
        assert_eq!(
            restored.range_query(&q, 1.0).expect("q"),
            idx.range_query(&q, 1.0).expect("q"),
        );
        assert!(restored
            .range_query(&q, 0.0)
            .expect("q")
            .iter()
            .any(|n| n.id == gid));
        assert!(!restored
            .range_query(&items[7], 0.0)
            .expect("q")
            .iter()
            .any(|n| n.id == 7));
    }

    #[test]
    fn corrupt_sharded_snapshots_rejected() {
        let (items, metric, idx) = sharded(100, 2);
        let bytes = idx.snapshot();
        let pool = DevicePool::rtx_2080_ti(2);
        // Truncation.
        assert!(
            ShardedGts::restore(&pool, items.clone(), metric, &bytes[..bytes.len() / 2]).is_err()
        );
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ShardedGts::restore(&pool, items.clone(), metric, &bad).is_err());
        // Store mismatch.
        assert!(ShardedGts::restore(&pool, items[..50].to_vec(), metric, &bytes).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(ShardedGts::restore(&pool, items, metric, &long).is_err());
    }

    #[test]
    fn empty_shard_rejected() {
        let (items, metric) = data(3);
        let pool = DevicePool::rtx_2080_ti(4);
        let err = ShardedGts::build(&pool, items, metric, GtsParams::default().with_shards(4));
        assert!(
            matches!(err, Err(IndexError::Unsupported(msg)) if msg.contains("empty shard")),
            "an empty shard gets a dedicated error, not EmptyIndex"
        );
        let err = ShardedGts::build(
            &pool,
            Vec::<Item>::new(),
            ItemMetric::Edit,
            GtsParams::default().with_shards(4),
        );
        assert!(
            matches!(err, Err(IndexError::EmptyIndex)),
            "EmptyIndex is reserved for an actually-empty dataset"
        );
    }

    #[test]
    fn global_batch_sizing_is_deterministic_and_pool_bound() {
        let (_, _, idx) = sharded(300, 2);
        let a = idx.max_batch_queries(2.0, 64, 7);
        let b = idx.max_batch_queries(2.0, 64, 7);
        assert_eq!(a, b, "seeded fitting makes the size trigger reproducible");
        assert!(a >= 1);
        // The global plan uses the pool-wide minimum free memory, so it can
        // never exceed what any single shard would plan for itself against
        // that same budget.
        let free = idx.pool().free_bytes_min();
        for s in 0..idx.num_shards() {
            let shard = idx.shard(s);
            let model = shard.cost_model(64, 7);
            assert!(a <= shard.max_batch_queries_with_free(free, &model, 2.0));
        }
    }

    /// A metric that panics when it touches the poisoned query string —
    /// standing in for any misbehaving user metric (NaNs, assertions).
    #[derive(Clone, Copy)]
    struct PanicOnBoom;

    impl metric_space::Metric<Item> for PanicOnBoom {
        fn distance(&self, a: &Item, b: &Item) -> f64 {
            let (Some(a), Some(b)) = (a.as_text(), b.as_text()) else {
                panic!("text metric")
            };
            assert!(a != "boom" && b != "boom", "boom");
            (a.len() as f64 - b.len() as f64).abs()
        }
        fn work(&self, _: &Item, _: &Item) -> u64 {
            1
        }
        fn name(&self) -> &'static str {
            "panic-on-boom"
        }
    }
    impl metric_space::BatchMetric<Item> for PanicOnBoom {}

    /// A panic inside one shard's lockstep descent (user metric blowing up
    /// mid-kernel) must propagate out of `batch_knn` like it does on the
    /// independent-descent path — not strand the sibling shards at the
    /// bound-exchange barrier forever.
    #[test]
    fn broadcast_panic_in_one_shard_propagates_instead_of_deadlocking() {
        let items: Vec<Item> = (0..120).map(|i| Item::text("x".repeat(i % 30))).collect();
        let pool = DevicePool::rtx_2080_ti(2);
        let idx = ShardedGts::build(
            &pool,
            items,
            PanicOnBoom,
            GtsParams::default()
                .with_shards(2)
                .with_bound_broadcast(true),
        )
        .expect("build never sees the poisoned query");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            idx.batch_knn(&[Item::text("boom")], 3)
        }));
        assert!(caught.is_err(), "the metric panic must surface");
    }

    #[test]
    fn aggregate_stats_sum_across_shards() {
        let (items, _, idx) = sharded(300, 2);
        let queries: Vec<Item> = items[..8].to_vec();
        idx.batch_knn(&queries, 3).expect("knn");
        let total = idx.stats();
        let summed = idx.shard_stats(0).combine(idx.shard_stats(1));
        assert_eq!(total, summed);
        assert!(total.distance_computations > 0);
        assert!(idx.span_cycles() > 0);
        assert!(idx.span_cycles() <= idx.pool().aggregate().cycles_total);
        idx.reset_stats();
        assert_eq!(idx.stats(), StatsSnapshot::default());
    }
}
