//! # gts-core
//!
//! The paper's primary contribution: **GTS, a GPU-based tree index for fast
//! similarity search in general metric spaces** (SIGMOD 2024,
//! arXiv:2404.00966), built on the [`gpu_sim`] device model.
//!
//! ## Structure (paper §4.2, Fig. 3)
//! A balanced pivot-based tree is stored in two flat, contiguous device
//! structures:
//! * the **node list** — all tree nodes, linearly linked, ids following the
//!   full `Nc`-ary numbering `child_j(i) = (i−1)·Nc + j + 1` (Eq. 1), so an
//!   entire level occupies one contiguous id range;
//! * the **table list** — the leaf-level object partitioning: for every
//!   object, its id and its distance to the pivot of its leaf's parent,
//!   sorted so each node's objects are contiguous and ascending.
//!
//! ## Construction (paper §4.3, Alg. 1–3)
//! Level-synchronous and fully parallel: one *mapping* kernel selects pivots
//! (FFT) and computes all object→pivot distances of a level at once; one
//! *partitioning* pass encodes `dis' = node_rank + dis/(max+1)`, runs a
//! single **global sort**, and splits every node into `Nc` children — no
//! per-node serial work anywhere.
//!
//! ## Search (paper §5, Alg. 4–5)
//! Batched MRQ and MkNNQ traverse the tree top-down, level-synchronously,
//! pruning with the triangle-inequality lemmas. The **two-stage strategy**
//! bounds intermediate-result memory by `size_GPU / ((h − layer + 1)·Nc)`;
//! when a batch would exceed it, queries are split into groups processed
//! sequentially — memory deadlocks (which kill GPU-Tree at 512 queries in
//! Fig. 9) cannot occur.
//!
//! ## Updates (paper §4.4)
//! Streaming inserts land in an LSM-style **cache table** searched by brute
//! force alongside the index; deletions are tombstoned in the table list.
//! When the cache exceeds its size bound — or on explicit batch updates —
//! the whole index is rebuilt with the parallel constructor (`O(log³ n)`
//! simulated time).
//!
//! ## Sharding (beyond the paper)
//! [`ShardedGts`] partitions the dataset across multiple devices with a
//! deterministic [`Partitioner`](metric_space::Partitioner), scatters
//! batched queries to every shard concurrently, and merges the per-shard
//! answers exactly — bit-identical to the single-device index, ties
//! included. Updates route to the owning shard, so an overflow rebuilds
//! one shard while the other devices' clocks never move.
//!
//! Search itself is expressed as a resumable **descent engine** (`engine`,
//! crate-internal): an explicit per-batch state machine that pauses between
//! levels. With [`GtsParams::bound_broadcast`] on, a multi-shard MkNNQ
//! drives every shard's engine in lockstep with a per-level barrier,
//! broadcasting the element-wise minimum of the per-query kNN bounds across
//! shards after each level — each shard then prunes against the *global*
//! k-th-NN bound instead of only its local one, with answers provably
//! unchanged (tie-safe closed-ball pruning) and the barrier modeled in span
//! accounting.

#![warn(missing_docs)]
pub mod audit;
pub mod build;
pub mod cost;
mod dispatch;
pub(crate) mod engine;
pub mod index;
pub mod memo;
pub mod multi;
pub mod node;
pub mod params;
pub mod replica;
pub mod search;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod update;

pub use audit::{AuditPlan, CostAudit, CostAuditSnapshot};
pub use cost::CostModel;
pub use index::Gts;
pub use memo::PairMemo;
pub use multi::MultiGts;
pub use params::GtsParams;
pub use replica::{ReplicaError, ReplicatedShards};
pub use shard::{Applied, ShardedGts, UpdateOp};
pub use stats::{LatencyHistogram, ReplicaStats, SearchStats, StatsSnapshot};
