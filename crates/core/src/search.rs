//! Concurrent similarity search (paper §5, Algorithms 4 and 5).
//!
//! Both query kinds traverse the tree **top-down and level-synchronously**:
//! the frontier is a flat list of `(node, query)` pairs, and each level is
//! one uniform kernel over the whole frontier — never a per-query traversal,
//! which is what starves GPU-Tree-style designs.
//!
//! Since the descent-engine refactor, the level loop itself lives in
//! `crate::engine` as an explicit, resumable state machine
//! (`DescentEngine`): this module keeps the
//! shared substrate — the frontier representation, the reusable
//! `SearchScratch`, the borrowed `SearchCtx`, the per-layer memory bound,
//! the batched `verify_block` kernel wrapper, and the `TopK` pool — plus
//! the thin batch drivers (`batch_range`, `batch_knn`,
//! `batch_knn_impl`) that start an engine and drain it. The drivers are
//! **bit- and cycle-identical** to the pre-engine monolithic loops (asserted
//! against a checked-in pre-refactor fingerprint in
//! `tests/shard_invariance.rs`); what the engine adds is the ability to
//! *pause between levels* — the seam the sharded lockstep bound broadcast
//! drives.
//!
//! **Batched distance kernels.** Every distance evaluation in the hot path
//! goes through [`BatchMetric::distance_batch`]: frontier entries are
//! resolved against the flat [`ObjectArena`]
//! (contiguous payloads, no per-object pointer chasing) and each level
//! launches **one** batched kernel via [`Device::launch_batch`], charged
//! once per batch with the same work–span accounting as the per-pair path.
//! Inside a launch, large id blocks are fanned out over real host threads
//! by the dispatch layer (`crate::dispatch`): fixed-size chunks, per-chunk
//! work-span combined by sum/max, so the thread count
//! ([`GtsParams::host_threads`]) changes wall-clock only — never answers,
//! tie-breaks, or simulated cycles. A per-batch `(query, pivot)`
//! **distance memo** (a flat open-addressing [`PairMemo`]) short-circuits
//! repeated evaluations of the same pair (e.g. a singleton child
//! re-selecting its parent's pivot), and all level-loop buffers live in a
//! `SearchScratch` reused across levels — the steady-state loop performs
//! no `Vec` allocation.
//!
//! The **two-stage memory strategy** bounds the frontier at layer `i` to
//! `size_GPU / ((h − i + 1)·Nc)` entries; a batch exceeding the bound is
//! split into query groups processed sequentially (never splitting a single
//! query's frontier), so intermediate results can always be materialised —
//! the memory-deadlock-freedom claim of Challenge II.
//!
//! Pruning: internal children are pruned by the ring test of Lemma 5.1/5.2
//! against the parent pivot; MkNNQ additionally uses the own-pivot prune
//! (`d(q, pivot) − own_max > bound`) after the per-level bound update, which
//! mirrors Alg. 5 lines 11–16 (the bound update runs through the same
//! encode-and-global-sort machinery as construction). All MkNNQ prunes are
//! **tie-safe**: they fire only when a candidate would be *strictly* worse
//! than the current bound (the closed-ball form of the lemmas, with the
//! bound as the radius), so every object tied with the k-th distance is
//! verified and the final pool is the **canonical** k smallest `(dis, id)`
//! pairs — the property that lets the sharded index merge per-shard top-k
//! lists bit-identically, and that keeps the cross-shard broadcast bound
//! exact (see `crate::engine`). Leaf verification
//! first applies the stored-distance filter (the table's `dis` column *is*
//! `d(o, parent pivot)`, so the filter costs zero distance evaluations),
//! then computes real distances for survivors only — one batched kernel per
//! wave.

use crate::dispatch::distance_block;
use crate::engine::DescentEngine;
use crate::memo::PairMemo;
use crate::node::TreeShape;
use crate::params::GtsParams;
use crate::stats::SearchStats;
use crate::table::TableList;
use gpu_sim::{Device, GpuError};
use metric_space::index::Neighbor;
use metric_space::{BatchMetric, ObjectArena};
use std::cell::RefCell;
use std::sync::Arc;

/// One intermediate-result element `E = {N, q, ...}` of the paper's `Q_Res`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Frontier {
    /// Node id to be searched.
    pub node: u32,
    /// Query index within the batch.
    pub query: u32,
    /// Distance from the query to the node's **parent's** pivot (`NaN` at
    /// the root, where no parent exists).
    pub dqp: f64,
}

/// Device-resident layout of a frontier element (memory accounting only).
#[derive(Clone, Copy, Default)]
pub(crate) struct RawEntry {
    _node: u32,
    _query: u32,
    _dqp: f64,
}

/// Device bytes one frontier entry occupies — the unit the two-stage memory
/// bound and the cost-model batch sizing are denominated in.
pub(crate) const FRONTIER_ENTRY_BYTES: usize = std::mem::size_of::<RawEntry>();

/// The paper's per-layer intermediate-result bound, in frontier entries:
/// `size_limit = size_GPU / ((h − layer + 1)·Nc)` with `size_GPU` the free
/// device bytes. Shared by the search loops (which split into query groups
/// past it) and by [`CostModel::max_batch_queries`](crate::CostModel), so
/// the admission-side batch planner and the in-search grouping agree on the
/// budget.
pub(crate) fn layer_size_limit(free_bytes: u64, h: u32, level: u32, nc: u32) -> usize {
    let denom = (h - level + 1) as usize * nc as usize * FRONTIER_ENTRY_BYTES;
    (free_bytes as usize / denom.max(1)).max(1)
}

/// Reusable host-side buffers for the level-synchronous loops.
///
/// One instance serves a whole batched query: frontier buffers ping-pong
/// between levels through a small pool (also feeding query-group descent),
/// and every kernel-staging vector (`dq`, survivor ids, kernel outputs,
/// encode pairs, verification waves) is cleared and refilled instead of
/// reallocated. The level loop itself allocates nothing after warm-up.
#[derive(Default)]
pub(crate) struct SearchScratch {
    /// Pool of frontier buffers (current/next/per-group), recycled.
    frontier_pool: Vec<Vec<Frontier>>,
    /// `d(query, node pivot)` per frontier entry of the current level.
    pub(crate) dq: Vec<f64>,
    /// Frontier indices whose pivot distance missed the memo.
    pub(crate) pending: Vec<u32>,
    /// Object-id staging for the batched kernels.
    pub(crate) kernel_ids: Vec<u32>,
    /// Distance output staging for the batched kernels.
    pub(crate) kernel_out: Vec<f64>,
    /// Per-pair bound staging for the bounded verification kernels.
    pub(crate) kernel_bounds: Vec<f64>,
    /// `Option<f64>` output staging for the bounded verification kernels.
    pub(crate) kernel_opt: Vec<Option<f64>>,
    /// Ring gap per next-level entry (MkNNQ beam ranking).
    pub(crate) gaps: Vec<f64>,
    /// Encoded `(key, entry)` pairs for the MkNNQ bound update.
    pub(crate) pairs: Vec<(f64, u32)>,
    /// Per-block ranking indices for beam truncation.
    pub(crate) ranked: Vec<u32>,
    /// Entry ordering for leaf verification waves.
    pub(crate) order: Vec<u32>,
    /// Entries of the current verification wave.
    pub(crate) wave: Vec<Frontier>,
    /// `(entry index, table position)` verification tasks.
    pub(crate) tasks: Vec<(u32, u32)>,
    /// Per-query kNN bound snapshot for one wave.
    pub(crate) bounds: Vec<f64>,
}

impl SearchScratch {
    pub(crate) fn take_frontier(&mut self) -> Vec<Frontier> {
        self.frontier_pool.pop().unwrap_or_default()
    }

    pub(crate) fn put_frontier(&mut self, mut buf: Vec<Frontier>) {
        buf.clear();
        self.frontier_pool.push(buf);
    }
}

/// Borrowed view of everything a search needs.
pub(crate) struct SearchCtx<'a, O, M> {
    pub dev: &'a Arc<Device>,
    pub objects: &'a [O],
    pub metric: &'a M,
    pub params: &'a GtsParams,
    pub nodes: &'a crate::node::NodeList,
    pub table: &'a TableList,
    /// Flat payload arena over `objects`, when the metric supports one
    /// (`None` falls back to per-pair object access inside the kernels).
    pub arena: Option<&'a ObjectArena>,
    /// Liveness per object id: tombstoned ids must neither appear in
    /// answers nor tighten kNN bounds (their pivot distances are still
    /// valid for *ring pruning*, which concerns the tree geometry).
    pub live: &'a [bool],
    pub stats: &'a SearchStats,
    /// Cost-model audit sink: the engine reports per-level frontier sizes
    /// and intermediate-buffer bytes here so the §5.3 batch-sizing
    /// prediction can be held against reality. Purely observational; the
    /// disabled path is one relaxed load per level.
    pub audit: &'a crate::audit::CostAudit,
    /// Host threads for the batched kernels (resolved from
    /// [`GtsParams::effective_host_threads`]); wall-clock only — the
    /// dispatch layer cuts fixed-size chunks so results and cycle counts
    /// never depend on it.
    pub threads: usize,
    /// Per-batch `(query, pivot)` distance memo: ring-prune tests on
    /// siblings share the parent-pivot distance via [`Frontier::dqp`], and
    /// this memo extends the same guarantee to pivots re-encountered across
    /// levels (a singleton node re-selects its parent's pivot) — those
    /// pairs are never recomputed within a batch. A flat open-addressing
    /// table ([`PairMemo`]), probed once per frontier entry per level.
    pub memo: RefCell<PairMemo>,
}

impl<'a, O, M> SearchCtx<'a, O, M>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    pub(crate) fn shape(&self) -> TreeShape {
        self.nodes.shape()
    }

    /// The paper's per-layer intermediate-result bound:
    /// `size_limit = size_GPU / ((h − layer + 1)·Nc)`, in frontier entries.
    pub(crate) fn size_limit(&self, level: u32) -> usize {
        let shape = self.shape();
        layer_size_limit(self.dev.free_bytes(), shape.h, level, shape.nc)
    }

    /// Split a frontier into query groups each within `limit` entries
    /// (frontiers are always query-contiguous). A single query whose
    /// frontier alone exceeds the limit forms its own group.
    pub(crate) fn split_groups(entries: Vec<Frontier>, limit: usize) -> Vec<Vec<Frontier>> {
        let mut groups: Vec<Vec<Frontier>> = Vec::new();
        let mut cur: Vec<Frontier> = Vec::new();
        let mut i = 0usize;
        while i < entries.len() {
            // extent of this query's block
            let q = entries[i].query;
            let mut j = i;
            while j < entries.len() && entries[j].query == q {
                j += 1;
            }
            let block = j - i;
            if !cur.is_empty() && cur.len() + block > limit {
                groups.push(std::mem::take(&mut cur));
            }
            cur.extend_from_slice(&entries[i..j]);
            i = j;
        }
        if !cur.is_empty() {
            groups.push(cur);
        }
        groups
    }

    pub(crate) fn multiple_queries(entries: &[Frontier]) -> bool {
        entries
            .first()
            .map(|f| f.query)
            .zip(entries.last().map(|f| f.query))
            .is_some_and(|(a, b)| a != b)
    }

    /// Compute `d(query, node.pivot)` for every frontier entry into
    /// `scratch.dq`: memo lookups first, then **one batched kernel** over
    /// the missing pairs (entries are query-contiguous, so the kernel runs
    /// arena-resolved id blocks per query).
    pub(crate) fn pivot_distances(
        &self,
        queries: &[O],
        entries: &[Frontier],
        scratch: &mut SearchScratch,
    ) {
        let SearchScratch {
            dq,
            pending,
            kernel_ids,
            kernel_out,
            ..
        } = scratch;
        dq.clear();
        dq.resize(entries.len(), 0.0);
        pending.clear();
        let mut memo = self.memo.borrow_mut();
        for (i, e) in entries.iter().enumerate() {
            let pivot = self
                .nodes
                .get(e.node as usize)
                .pivot
                .expect("expanded node is internal");
            match memo.get(e.query, pivot) {
                Some(d) => dq[i] = d,
                None => pending.push(i as u32),
            }
        }
        let n = pending.len();
        self.dev.launch_batch(n, || {
            let mut total = 0u64;
            let mut span = 0u64;
            let mut i = 0usize;
            while i < n {
                let q = entries[pending[i] as usize].query;
                let mut j = i;
                while j < n && entries[pending[j] as usize].query == q {
                    j += 1;
                }
                kernel_ids.clear();
                kernel_ids.extend(pending[i..j].iter().map(|&pi| {
                    self.nodes
                        .get(entries[pi as usize].node as usize)
                        .pivot
                        .expect("expanded node is internal")
                }));
                kernel_out.clear();
                kernel_out.resize(j - i, 0.0);
                let (w, s) = distance_block(
                    self.dev.as_ref(),
                    self.threads,
                    self.metric,
                    self.objects,
                    self.arena,
                    &queries[q as usize],
                    kernel_ids,
                    kernel_out,
                );
                total += w;
                span = span.max(s);
                for (k, &pi) in pending[i..j].iter().enumerate() {
                    dq[pi as usize] = kernel_out[k];
                    memo.insert(q, kernel_ids[k], kernel_out[k]);
                }
                i = j;
            }
            ((), total, span)
        });
        self.stats.add(&self.stats.distance_computations, n as u64);
    }

    /// Flatten leaf entries into per-object verification tasks
    /// (`(entry index, table position)`, the thread granularity of the
    /// verification kernel) into `scratch.tasks`.
    pub(crate) fn fill_leaf_tasks(&self, entries: &[Frontier], tasks: &mut Vec<(u32, u32)>) {
        tasks.clear();
        for (i, e) in entries.iter().enumerate() {
            let node = self.nodes.get(e.node as usize);
            for pos in node.pos..node.pos + node.size {
                tasks.push((i as u32, pos));
            }
        }
    }
}

/// Per-verified-object overhead on top of the raw distance work (bound
/// compare + result write), matching the historical per-pair accounting.
pub(crate) const VERIFY_EXTRA_WORK: u64 = 3;

/// Run one query block's leaf-verification kernel — exact or
/// early-abandoning, per [`GtsParams::bounded_verification`] — feeding
/// every computed `(object, distance)` pair to `sink` and returning the
/// block's `(work, span, abandoned)`.
///
/// Under the bounded kernel only pairs with `d ≤ bound` reach the sink
/// (abandoned evaluations are counted, not sunk); under the exact kernel
/// every pair does. The caller's sink applies its own acceptance rule
/// (range: `d ≤ r`; kNN: [`TopK::insert`]), so the two kernels feed it
/// equivalent *accepted* sets whenever `bound` upper-bounds acceptance —
/// the shared body is what keeps the MRQ and MkNNQ paths provably
/// identical in staging and accounting.
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_block<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    query: &O,
    bound: f64,
    kernel_ids: &[u32],
    kernel_out: &mut Vec<f64>,
    kernel_bounds: &mut Vec<f64>,
    kernel_opt: &mut Vec<Option<f64>>,
    mut sink: impl FnMut(u32, f64),
) -> (u64, u64, u64)
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    if ctx.params.bounded_verification {
        kernel_bounds.clear();
        kernel_bounds.resize(kernel_ids.len(), bound);
        kernel_opt.clear();
        kernel_opt.resize(kernel_ids.len(), None);
        let (w, s) = crate::dispatch::distance_block_bounded(
            ctx.dev.as_ref(),
            ctx.threads,
            ctx.metric,
            ctx.objects,
            ctx.arena,
            query,
            kernel_ids,
            kernel_bounds,
            kernel_opt,
        );
        let mut abandoned = 0u64;
        for (&obj, d) in kernel_ids.iter().zip(kernel_opt.iter()) {
            match d {
                Some(d) => sink(obj, *d),
                None => abandoned += 1,
            }
        }
        (w, s, abandoned)
    } else {
        kernel_out.clear();
        kernel_out.resize(kernel_ids.len(), 0.0);
        let (w, s) = distance_block(
            ctx.dev.as_ref(),
            ctx.threads,
            ctx.metric,
            ctx.objects,
            ctx.arena,
            query,
            kernel_ids,
            kernel_out,
        );
        for (&obj, &d) in kernel_ids.iter().zip(kernel_out.iter()) {
            sink(obj, d);
        }
        (w, s, 0)
    }
}

// ---------------------------------------------------------------------------
// Metric kNN pool (Algorithm 5's per-query state)
// ---------------------------------------------------------------------------

/// Running best-k pool of one query; the bound `d(q, k_cur)` of Lemma 5.2.
#[derive(Clone, Debug)]
pub(crate) struct TopK {
    k: usize,
    items: Vec<Neighbor>, // ascending (dist, id), length ≤ k, unique ids
}

impl TopK {
    pub(crate) fn new(k: usize) -> TopK {
        TopK {
            k,
            items: Vec::with_capacity(k.min(1024)),
        }
    }

    /// Insert a candidate, keeping the k best distinct object ids.
    pub(crate) fn insert(&mut self, n: Neighbor) {
        if self.k == 0 || self.items.iter().any(|x| x.id == n.id) {
            return;
        }
        let pos = self
            .items
            .partition_point(|x| (x.dist, x.id) < (n.dist, n.id));
        if pos >= self.k {
            return;
        }
        self.items.insert(pos, n);
        self.items.truncate(self.k);
    }

    /// Current k-th-NN distance bound (∞ until k candidates are known).
    pub(crate) fn bound(&self) -> f64 {
        if self.items.len() == self.k {
            self.items.last().map_or(f64::INFINITY, |n| n.dist)
        } else {
            f64::INFINITY
        }
    }

    /// Final answers, canonical order.
    pub(crate) fn into_sorted(self) -> Vec<Neighbor> {
        self.items
    }
}

// ---------------------------------------------------------------------------
// Batch drivers (thin wrappers over the descent engine)
// ---------------------------------------------------------------------------

/// Batched MRQ (Algorithm 4): `answers[i] = MRQ(queries[i], radii[i])` in
/// canonical order — start a range engine, drain it, collect.
pub(crate) fn batch_range<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    radii: &[f64],
) -> Result<Vec<Vec<Neighbor>>, GpuError>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    assert_eq!(queries.len(), radii.len());
    let mut engine = DescentEngine::start_range(ctx, queries, radii);
    engine.finish_leaves()?;
    Ok(engine.into_results())
}

/// Batched MkNNQ (Algorithm 5): the `k` nearest objects per query,
/// canonical order.
pub(crate) fn batch_knn<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    k: usize,
) -> Result<Vec<Vec<Neighbor>>, GpuError>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    batch_knn_impl(ctx, queries, k, None)
}

/// Approximate batched MkNNQ (the paper's future-work direction, §7): at
/// each level every query keeps only its `beam` most promising frontier
/// entries (smallest ring gap to the query coordinate). `beam = None` is
/// the exact search. Smaller beams trade recall for throughput.
pub(crate) fn batch_knn_impl<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    k: usize,
    beam: Option<usize>,
) -> Result<Vec<Vec<Neighbor>>, GpuError>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    let mut engine = DescentEngine::start_knn(ctx, queries, k, beam);
    engine.finish_leaves()?;
    Ok(engine.into_results())
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric_space::Metric;

    #[test]
    fn topk_keeps_k_best_unique() {
        let mut t = TopK::new(2);
        assert_eq!(t.bound(), f64::INFINITY);
        t.insert(Neighbor::new(1, 5.0));
        assert_eq!(t.bound(), f64::INFINITY, "not full yet");
        t.insert(Neighbor::new(2, 3.0));
        assert_eq!(t.bound(), 5.0);
        t.insert(Neighbor::new(2, 3.0)); // duplicate id ignored
        assert_eq!(t.bound(), 5.0);
        t.insert(Neighbor::new(3, 1.0));
        assert_eq!(t.bound(), 3.0);
        let out = t.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].id, out[1].id), (3, 2));
    }

    #[test]
    fn topk_zero_k() {
        let mut t = TopK::new(0);
        t.insert(Neighbor::new(1, 1.0));
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn split_groups_respects_query_blocks() {
        let mk = |q: u32| Frontier {
            node: 1,
            query: q,
            dqp: 0.0,
        };
        let entries = vec![mk(0), mk(0), mk(1), mk(1), mk(1), mk(2)];
        let groups = SearchCtx::<(), DummyMetric>::split_groups(entries, 3);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 3);
        assert_eq!(groups[2].len(), 1);
        for g in &groups {
            let q0 = g[0].query;
            let qn = g.last().expect("non-empty").query;
            assert!(g.windows(2).all(|w| w[0].query <= w[1].query));
            let _ = (q0, qn);
        }
    }

    #[test]
    fn split_groups_oversized_single_query() {
        let mk = |q: u32| Frontier {
            node: 1,
            query: q,
            dqp: 0.0,
        };
        let entries = vec![mk(5); 10];
        let groups = SearchCtx::<(), DummyMetric>::split_groups(entries, 3);
        assert_eq!(groups.len(), 1, "one query cannot be split");
        assert_eq!(groups[0].len(), 10);
    }

    #[test]
    fn scratch_pool_recycles_buffers() {
        let mut s = SearchScratch::default();
        let mut a = s.take_frontier();
        a.push(Frontier {
            node: 1,
            query: 0,
            dqp: 0.0,
        });
        a.reserve(100);
        let cap = a.capacity();
        s.put_frontier(a);
        let b = s.take_frontier();
        assert!(b.is_empty(), "recycled buffer is cleared");
        assert_eq!(b.capacity(), cap, "recycled buffer keeps its capacity");
    }

    struct DummyMetric;
    impl Metric<()> for DummyMetric {
        fn distance(&self, _: &(), _: &()) -> f64 {
            0.0
        }
        fn work(&self, _: &(), _: &()) -> u64 {
            1
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
    }
    impl BatchMetric<()> for DummyMetric {}
}
