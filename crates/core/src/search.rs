//! Concurrent similarity search (paper §5, Algorithms 4 and 5).
//!
//! Both query kinds traverse the tree **top-down and level-synchronously**:
//! the frontier is a flat list of `(node, query)` pairs, and each level is
//! one uniform kernel over the whole frontier — never a per-query traversal,
//! which is what starves GPU-Tree-style designs.
//!
//! The **two-stage memory strategy** bounds the frontier at layer `i` to
//! `size_GPU / ((h − i + 1)·Nc)` entries; a batch exceeding the bound is
//! split into query groups processed sequentially (never splitting a single
//! query's frontier), so intermediate results can always be materialised —
//! the memory-deadlock-freedom claim of Challenge II.
//!
//! Pruning: internal children are pruned by the ring test of Lemma 5.1/5.2
//! against the parent pivot; MkNNQ additionally uses the own-pivot prune
//! (`d(q, pivot) − own_max ≥ bound`) after the per-level bound update, which
//! mirrors Alg. 5 lines 11–16 (the bound update runs through the same
//! encode-and-global-sort machinery as construction). Leaf verification
//! first applies the stored-distance filter (the table's `dis` column *is*
//! `d(o, parent pivot)`, so the filter costs zero distance evaluations),
//! then computes real distances for survivors only.

use crate::node::TreeShape;
use crate::params::GtsParams;
use crate::stats::SearchStats;
use crate::table::TableList;
use gpu_sim::primitives::{reduce_max_f64, sort_pairs_by_key};
use gpu_sim::{Device, GpuError};
use metric_space::index::{sort_neighbors, Neighbor};
use metric_space::lemmas::{prune_node_knn, prune_node_range};
use metric_space::Metric;
use std::sync::Arc;

/// One intermediate-result element `E = {N, q, ...}` of the paper's `Q_Res`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Frontier {
    /// Node id to be searched.
    pub node: u32,
    /// Query index within the batch.
    pub query: u32,
    /// Distance from the query to the node's **parent's** pivot (`NaN` at
    /// the root, where no parent exists).
    pub dqp: f64,
}

/// Device-resident layout of a frontier element (memory accounting only).
#[derive(Clone, Copy, Default)]
struct RawEntry {
    _node: u32,
    _query: u32,
    _dqp: f64,
}

/// Borrowed view of everything a search needs.
pub(crate) struct SearchCtx<'a, O, M> {
    pub dev: &'a Arc<Device>,
    pub objects: &'a [O],
    pub metric: &'a M,
    pub params: &'a GtsParams,
    pub nodes: &'a crate::node::NodeList,
    pub table: &'a TableList,
    /// Liveness per object id: tombstoned ids must neither appear in
    /// answers nor tighten kNN bounds (their pivot distances are still
    /// valid for *ring pruning*, which concerns the tree geometry).
    pub live: &'a [bool],
    pub stats: &'a SearchStats,
}

impl<'a, O, M> SearchCtx<'a, O, M>
where
    O: Send + Sync,
    M: Metric<O>,
{
    fn shape(&self) -> TreeShape {
        self.nodes.shape()
    }

    /// The paper's per-layer intermediate-result bound:
    /// `size_limit = size_GPU / ((h − layer + 1)·Nc)`, in frontier entries.
    fn size_limit(&self, level: u32) -> usize {
        let shape = self.shape();
        let free = self.dev.free_bytes() as usize;
        let denom =
            (shape.h - level + 1) as usize * shape.nc as usize * std::mem::size_of::<RawEntry>();
        (free / denom.max(1)).max(1)
    }

    /// Split a frontier into query groups each within `limit` entries
    /// (frontiers are always query-contiguous). A single query whose
    /// frontier alone exceeds the limit forms its own group.
    fn split_groups(entries: Vec<Frontier>, limit: usize) -> Vec<Vec<Frontier>> {
        let mut groups: Vec<Vec<Frontier>> = Vec::new();
        let mut cur: Vec<Frontier> = Vec::new();
        let mut i = 0usize;
        while i < entries.len() {
            // extent of this query's block
            let q = entries[i].query;
            let mut j = i;
            while j < entries.len() && entries[j].query == q {
                j += 1;
            }
            let block = j - i;
            if !cur.is_empty() && cur.len() + block > limit {
                groups.push(std::mem::take(&mut cur));
            }
            cur.extend_from_slice(&entries[i..j]);
            i = j;
        }
        if !cur.is_empty() {
            groups.push(cur);
        }
        groups
    }

    fn multiple_queries(entries: &[Frontier]) -> bool {
        entries
            .first()
            .map(|f| f.query)
            .zip(entries.last().map(|f| f.query))
            .is_some_and(|(a, b)| a != b)
    }

    /// Compute `d(query, node.pivot)` for every frontier entry (one kernel).
    fn pivot_distances(&self, queries: &[O], entries: &[Frontier]) -> Vec<f64> {
        let out = self.dev.launch_map(entries.len(), |i| {
            let e = entries[i];
            let pivot = self
                .nodes
                .get(e.node as usize)
                .pivot
                .expect("expanded node is internal");
            let q = &queries[e.query as usize];
            let o = &self.objects[pivot as usize];
            (self.metric.distance(q, o), self.metric.work(q, o))
        });
        self.stats
            .add(&self.stats.distance_computations, entries.len() as u64);
        out
    }

    /// Flatten leaf entries into per-object verification tasks
    /// (`(entry index, table position)`), the thread granularity of the
    /// verification kernel.
    fn leaf_tasks(&self, entries: &[Frontier]) -> Vec<(u32, u32)> {
        let mut tasks = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            let node = self.nodes.get(e.node as usize);
            for pos in node.pos..node.pos + node.size {
                tasks.push((i as u32, pos));
            }
        }
        tasks
    }
}

// ---------------------------------------------------------------------------
// Metric range query (Algorithm 4)
// ---------------------------------------------------------------------------

/// Batched MRQ: `answers[i] = MRQ(queries[i], radii[i])` in canonical order.
pub(crate) fn batch_range<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    radii: &[f64],
) -> Result<Vec<Vec<Neighbor>>, GpuError>
where
    O: Send + Sync,
    M: Metric<O>,
{
    assert_eq!(queries.len(), radii.len());
    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
    if ctx.table.is_empty() || queries.is_empty() {
        return Ok(results);
    }
    let entries: Vec<Frontier> = (0..queries.len() as u32)
        .map(|q| Frontier {
            node: 1,
            query: q,
            dqp: f64::NAN,
        })
        .collect();
    range_level(ctx, queries, radii, entries, 1, &mut results)?;
    for r in &mut results {
        sort_neighbors(r);
    }
    Ok(results)
}

fn range_level<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    radii: &[f64],
    entries: Vec<Frontier>,
    level: u32,
    results: &mut Vec<Vec<Neighbor>>,
) -> Result<(), GpuError>
where
    O: Send + Sync,
    M: Metric<O>,
{
    if entries.is_empty() {
        return Ok(());
    }
    let shape = ctx.shape();
    ctx.stats.max(&ctx.stats.max_frontier, entries.len() as u64);

    // Two-stage strategy: form query groups when the frontier would overrun
    // the per-layer memory bound.
    if ctx.params.query_grouping
        && entries.len() > ctx.size_limit(level)
        && SearchCtx::<O, M>::multiple_queries(&entries)
    {
        let groups = SearchCtx::<O, M>::split_groups(entries, ctx.size_limit(level));
        ctx.stats.add(&ctx.stats.groups_formed, groups.len() as u64);
        for g in groups {
            range_level(ctx, queries, radii, g, level, results)?;
        }
        return Ok(());
    }

    if level == shape.h {
        verify_range(ctx, queries, radii, &entries, results);
        return Ok(());
    }

    // Next-level intermediate buffer, sized |E|·Nc like the paper's Q'_Res.
    // With grouping on, the size-limit check above guarantees this fits;
    // with it off this is exactly where the naive strategy deadlocks.
    let _next_buf = ctx.dev.alloc::<RawEntry>(
        entries.len() * shape.nc as usize,
        "MRQ intermediate results",
    )?;

    // Expansion kernel: d(q, pivot) per entry, then the Lemma 5.1 ring test
    // for each of the Nc children.
    let dq = ctx.pivot_distances(queries, &entries);
    let mut next: Vec<Frontier> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let r = radii[e.query as usize];
        for j in 0..shape.nc as usize {
            let cid = shape.child(e.node as usize, j);
            let child = ctx.nodes.get(cid);
            if child.is_empty() {
                continue;
            }
            let upper = if ctx.params.two_sided_pruning {
                child.max_dis
            } else {
                f64::INFINITY
            };
            if prune_node_range(child.min_dis, upper, dq[i], r) {
                ctx.stats.add(&ctx.stats.nodes_pruned, 1);
            } else {
                ctx.stats.add(&ctx.stats.nodes_expanded, 1);
                next.push(Frontier {
                    node: cid as u32,
                    query: e.query,
                    dqp: dq[i],
                });
            }
        }
    }
    ctx.dev
        .launch_charged((entries.len() * shape.nc as usize) as u64 * 4, 8);

    range_level(ctx, queries, radii, next, level + 1, results)
}

fn verify_range<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    radii: &[f64],
    entries: &[Frontier],
    results: &mut [Vec<Neighbor>],
) where
    O: Send + Sync,
    M: Metric<O>,
{
    let tasks = ctx.leaf_tasks(entries);
    if tasks.is_empty() {
        return;
    }
    let outcomes: Vec<(Option<Neighbor>, bool)> = ctx.dev.launch_map(tasks.len(), |t| {
        let (ei, pos) = tasks[t];
        let e = entries[ei as usize];
        let te = ctx.table.get(pos as usize);
        if te.deleted {
            return ((None, false), 1);
        }
        let r = radii[e.query as usize];
        // Lemma 5.1 filter against the parent pivot: zero distance calls.
        if !e.dqp.is_nan() && (te.dis - e.dqp).abs() > r {
            return ((None, false), 3);
        }
        let q = &queries[e.query as usize];
        let o = &ctx.objects[te.obj as usize];
        let d = ctx.metric.distance(q, o);
        let hit = (d <= r).then_some(Neighbor::new(te.obj, d));
        ((hit, true), self_work(ctx.metric, q, o))
    });
    let mut verified = 0u64;
    for (t, (hit, computed)) in outcomes.into_iter().enumerate() {
        if computed {
            verified += 1;
        }
        if let Some(n) = hit {
            let q = entries[tasks[t].0 as usize].query as usize;
            results[q].push(n);
        }
    }
    ctx.stats.add(&ctx.stats.leaf_verified, verified);
    ctx.stats
        .add(&ctx.stats.distance_computations, verified);
    ctx.stats
        .add(&ctx.stats.leaf_filtered, tasks.len() as u64 - verified);
}

#[inline]
fn self_work<O, M: Metric<O>>(metric: &M, q: &O, o: &O) -> u64
where
    O: ?Sized,
{
    metric.work(q, o) + 3
}

// ---------------------------------------------------------------------------
// Metric kNN query (Algorithm 5)
// ---------------------------------------------------------------------------

/// Running best-k pool of one query; the bound `d(q, k_cur)` of Lemma 5.2.
#[derive(Clone, Debug)]
pub(crate) struct TopK {
    k: usize,
    items: Vec<Neighbor>, // ascending (dist, id), length ≤ k, unique ids
}

impl TopK {
    pub(crate) fn new(k: usize) -> TopK {
        TopK {
            k,
            items: Vec::with_capacity(k.min(1024)),
        }
    }

    /// Insert a candidate, keeping the k best distinct object ids.
    pub(crate) fn insert(&mut self, n: Neighbor) {
        if self.k == 0 || self.items.iter().any(|x| x.id == n.id) {
            return;
        }
        let pos = self
            .items
            .partition_point(|x| (x.dist, x.id) < (n.dist, n.id));
        if pos >= self.k {
            return;
        }
        self.items.insert(pos, n);
        self.items.truncate(self.k);
    }

    /// Current k-th-NN distance bound (∞ until k candidates are known).
    pub(crate) fn bound(&self) -> f64 {
        if self.items.len() == self.k {
            self.items.last().map_or(f64::INFINITY, |n| n.dist)
        } else {
            f64::INFINITY
        }
    }

    /// Final answers, canonical order.
    pub(crate) fn into_sorted(self) -> Vec<Neighbor> {
        self.items
    }
}

/// Batched MkNNQ: the `k` nearest objects per query, canonical order.
pub(crate) fn batch_knn<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    k: usize,
) -> Result<Vec<Vec<Neighbor>>, GpuError>
where
    O: Send + Sync,
    M: Metric<O>,
{
    batch_knn_impl(ctx, queries, k, None)
}

/// Approximate batched MkNNQ (the paper's future-work direction, §7): at
/// each level every query keeps only its `beam` most promising frontier
/// entries (smallest ring gap to the query coordinate). `beam = None` is
/// the exact search. Smaller beams trade recall for throughput.
pub(crate) fn batch_knn_impl<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    k: usize,
    beam: Option<usize>,
) -> Result<Vec<Vec<Neighbor>>, GpuError>
where
    O: Send + Sync,
    M: Metric<O>,
{
    let mut pools: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(k)).collect();
    if ctx.table.is_empty() || queries.is_empty() || k == 0 {
        return Ok(pools.into_iter().map(TopK::into_sorted).collect());
    }
    let entries: Vec<Frontier> = (0..queries.len() as u32)
        .map(|q| Frontier {
            node: 1,
            query: q,
            dqp: f64::NAN,
        })
        .collect();
    knn_level(ctx, queries, entries, 1, &mut pools, beam)?;
    Ok(pools.into_iter().map(TopK::into_sorted).collect())
}

/// Per-query beam truncation: keep the `beam` entries whose ring is closest
/// to the query's mapped coordinate. Entries are query-contiguous.
fn truncate_beam<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    entries: Vec<(Frontier, f64)>,
    beam: usize,
) -> Vec<Frontier>
where
    O: Send + Sync,
    M: Metric<O>,
{
    let mut out = Vec::with_capacity(entries.len());
    let mut i = 0usize;
    while i < entries.len() {
        let q = entries[i].0.query;
        let mut j = i;
        while j < entries.len() && entries[j].0.query == q {
            j += 1;
        }
        let block = &entries[i..j];
        if block.len() <= beam {
            out.extend(block.iter().map(|&(f, _)| f));
        } else {
            let mut ranked: Vec<&(Frontier, f64)> = block.iter().collect();
            ranked.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite gap")
                    .then(a.0.node.cmp(&b.0.node))
            });
            out.extend(ranked[..beam].iter().map(|e| e.0));
        }
        i = j;
    }
    ctx.dev.launch_charged(entries.len() as u64 * 4, 16);
    out
}

fn knn_level<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    entries: Vec<Frontier>,
    level: u32,
    pools: &mut Vec<TopK>,
    beam: Option<usize>,
) -> Result<(), GpuError>
where
    O: Send + Sync,
    M: Metric<O>,
{
    if entries.is_empty() {
        return Ok(());
    }
    let shape = ctx.shape();
    ctx.stats.max(&ctx.stats.max_frontier, entries.len() as u64);

    // Group queries exactly as Algorithm 4 does (Alg. 5 line 4). Groups run
    // sequentially and *share* the pools, so later groups inherit tightened
    // bounds — a free bonus of sequential group processing.
    if ctx.params.query_grouping
        && entries.len() > ctx.size_limit(level)
        && SearchCtx::<O, M>::multiple_queries(&entries)
    {
        let groups = SearchCtx::<O, M>::split_groups(entries, ctx.size_limit(level));
        ctx.stats.add(&ctx.stats.groups_formed, groups.len() as u64);
        for g in groups {
            knn_level(ctx, queries, g, level, pools, beam)?;
        }
        return Ok(());
    }

    if level == shape.h {
        verify_knn(ctx, queries, &entries, pools);
        return Ok(());
    }

    let _next_buf = ctx.dev.alloc::<RawEntry>(
        entries.len() * shape.nc as usize,
        "MkNNQ intermediate results",
    )?;

    // Alg. 5 lines 7–10: pivot distances for the frontier. Pivots are real
    // objects, so each distance is also a kNN candidate.
    let dq = ctx.pivot_distances(queries, &entries);

    // Alg. 5 lines 11–12: the per-query k-th bound is located by encoding
    // `query_rank + dis/denom` and running the same global device sort as
    // construction; walking the sorted runs inserts candidates in ascending
    // order per query.
    let maxd = reduce_max_f64(ctx.dev, &dq).max(0.0);
    let denom = 2.0 * (maxd + 1.0);
    let mut pairs: Vec<(f64, u32)> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| (f64::from(e.query) + dq[i] / denom, i as u32))
        .collect();
    ctx.dev.launch_charged(pairs.len() as u64 * 2, 2);
    sort_pairs_by_key(ctx.dev, &mut pairs);
    for &(_, i) in &pairs {
        let e = entries[i as usize];
        let pivot = ctx
            .nodes
            .get(e.node as usize)
            .pivot
            .expect("internal node");
        // A tombstoned pivot's distance must not become a candidate (it is
        // no longer an answer) nor a bound (it could over-tighten pruning
        // against live objects).
        if ctx.live[pivot as usize] {
            pools[e.query as usize].insert(Neighbor::new(pivot, dq[i as usize]));
        }
    }

    // Alg. 5 lines 13–17: prune with the updated bounds — the own-pivot
    // test on the expanded node, then the parent-pivot ring test per child.
    let mut next: Vec<(Frontier, f64)> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let node = ctx.nodes.get(e.node as usize);
        let bound = pools[e.query as usize].bound();
        if dq[i] - node.own_max_dis >= bound {
            ctx.stats
                .add(&ctx.stats.nodes_pruned, u64::from(shape.nc));
            continue;
        }
        for j in 0..shape.nc as usize {
            let cid = shape.child(e.node as usize, j);
            let child = ctx.nodes.get(cid);
            if child.is_empty() {
                continue;
            }
            let upper = if ctx.params.two_sided_pruning {
                child.max_dis
            } else {
                f64::INFINITY
            };
            if prune_node_knn(child.min_dis, upper, dq[i], bound) {
                ctx.stats.add(&ctx.stats.nodes_pruned, 1);
            } else {
                ctx.stats.add(&ctx.stats.nodes_expanded, 1);
                let gap = if dq[i] < child.min_dis {
                    child.min_dis - dq[i]
                } else if dq[i] > child.max_dis {
                    dq[i] - child.max_dis
                } else {
                    0.0
                };
                next.push((
                    Frontier {
                        node: cid as u32,
                        query: e.query,
                        dqp: dq[i],
                    },
                    gap,
                ));
            }
        }
    }
    ctx.dev
        .launch_charged((entries.len() * shape.nc as usize) as u64 * 4, 8);

    let next: Vec<Frontier> = match beam {
        Some(b) => truncate_beam(ctx, next, b.max(1)),
        None => next.into_iter().map(|(f, _)| f).collect(),
    };
    knn_level(ctx, queries, next, level + 1, pools, beam)
}

/// Leaf verification runs in `KNN_WAVES` sequential kernel waves, each
/// query's leaves ordered by ring proximity to its mapped coordinate.
/// Within a wave the bound is snapshotted (parallel threads cannot observe
/// each other); between waves the pools — and hence the Lemma 5.2 bound —
/// tighten, implementing the paper's "progressively narrowed distance
/// boundary". Any snapshot bound is an upper bound on the true k-th
/// distance, so every wave's filter is exact.
const KNN_WAVES: usize = 4;

fn verify_knn<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    entries: &[Frontier],
    pools: &mut [TopK],
) where
    O: Send + Sync,
    M: Metric<O>,
{
    if entries.is_empty() {
        return;
    }
    // Order each query's leaves closest-ring-first so the first wave almost
    // certainly contains the true neighbours.
    let mut order: Vec<u32> = (0..entries.len() as u32).collect();
    let gap = |e: &Frontier| {
        let node = ctx.nodes.get(e.node as usize);
        if e.dqp.is_nan() {
            0.0
        } else if e.dqp < node.min_dis {
            node.min_dis - e.dqp
        } else if e.dqp > node.max_dis {
            e.dqp - node.max_dis
        } else {
            0.0
        }
    };
    order.sort_by(|&a, &b| {
        let (ea, eb) = (&entries[a as usize], &entries[b as usize]);
        ea.query
            .cmp(&eb.query)
            .then(gap(ea).partial_cmp(&gap(eb)).expect("finite gap"))
            .then(ea.node.cmp(&eb.node))
    });
    ctx.dev.launch_charged(entries.len() as u64 * 4, 32);

    // Round-robin the ordered entries into waves: wave 0 gets each query's
    // closest leaves.
    for wave in 0..KNN_WAVES {
        let wave_entries: Vec<Frontier> = order
            .iter()
            .enumerate()
            .filter(|(i, _)| i % KNN_WAVES == wave)
            .map(|(_, &idx)| entries[idx as usize])
            .collect();
        let tasks = ctx.leaf_tasks(&wave_entries);
        if tasks.is_empty() {
            continue;
        }
        let bounds: Vec<f64> = pools.iter().map(TopK::bound).collect();
        let outcomes: Vec<(Option<Neighbor>, bool)> = ctx.dev.launch_map(tasks.len(), |t| {
            let (ei, pos) = tasks[t];
            let e = wave_entries[ei as usize];
            let te = ctx.table.get(pos as usize);
            if te.deleted {
                return ((None, false), 1);
            }
            // Lemma 5.2 filter against the parent pivot (strict ≥).
            if !e.dqp.is_nan() && (te.dis - e.dqp).abs() >= bounds[e.query as usize] {
                return ((None, false), 3);
            }
            let q = &queries[e.query as usize];
            let o = &ctx.objects[te.obj as usize];
            let d = ctx.metric.distance(q, o);
            ((Some(Neighbor::new(te.obj, d)), true), self_work(ctx.metric, q, o))
        });
        let mut verified = 0u64;
        for (t, (cand, computed)) in outcomes.into_iter().enumerate() {
            if computed {
                verified += 1;
            }
            if let Some(n) = cand {
                let q = wave_entries[tasks[t].0 as usize].query as usize;
                pools[q].insert(n);
            }
        }
        ctx.stats.add(&ctx.stats.leaf_verified, verified);
        ctx.stats.add(&ctx.stats.distance_computations, verified);
        ctx.stats
            .add(&ctx.stats.leaf_filtered, tasks.len() as u64 - verified);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_k_best_unique() {
        let mut t = TopK::new(2);
        assert_eq!(t.bound(), f64::INFINITY);
        t.insert(Neighbor::new(1, 5.0));
        assert_eq!(t.bound(), f64::INFINITY, "not full yet");
        t.insert(Neighbor::new(2, 3.0));
        assert_eq!(t.bound(), 5.0);
        t.insert(Neighbor::new(2, 3.0)); // duplicate id ignored
        assert_eq!(t.bound(), 5.0);
        t.insert(Neighbor::new(3, 1.0));
        assert_eq!(t.bound(), 3.0);
        let out = t.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].id, out[1].id), (3, 2));
    }

    #[test]
    fn topk_zero_k() {
        let mut t = TopK::new(0);
        t.insert(Neighbor::new(1, 1.0));
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn split_groups_respects_query_blocks() {
        let mk = |q: u32| Frontier {
            node: 1,
            query: q,
            dqp: 0.0,
        };
        let entries = vec![mk(0), mk(0), mk(1), mk(1), mk(1), mk(2)];
        let groups = SearchCtx::<(), DummyMetric>::split_groups(entries, 3);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 3);
        assert_eq!(groups[2].len(), 1);
        for g in &groups {
            let q0 = g[0].query;
            let qn = g.last().expect("non-empty").query;
            assert!(g.windows(2).all(|w| w[0].query <= w[1].query));
            let _ = (q0, qn);
        }
    }

    #[test]
    fn split_groups_oversized_single_query() {
        let mk = |q: u32| Frontier {
            node: 1,
            query: q,
            dqp: 0.0,
        };
        let entries = vec![mk(5); 10];
        let groups = SearchCtx::<(), DummyMetric>::split_groups(entries, 3);
        assert_eq!(groups.len(), 1, "one query cannot be split");
        assert_eq!(groups[0].len(), 10);
    }

    struct DummyMetric;
    impl Metric<()> for DummyMetric {
        fn distance(&self, _: &(), _: &()) -> f64 {
            0.0
        }
        fn work(&self, _: &(), _: &()) -> u64 {
            1
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
    }
}
