//! Concurrent similarity search (paper §5, Algorithms 4 and 5).
//!
//! Both query kinds traverse the tree **top-down and level-synchronously**:
//! the frontier is a flat list of `(node, query)` pairs, and each level is
//! one uniform kernel over the whole frontier — never a per-query traversal,
//! which is what starves GPU-Tree-style designs.
//!
//! **Batched distance kernels.** Every distance evaluation in the hot path
//! goes through [`BatchMetric::distance_batch`]: frontier entries are
//! resolved against the flat [`ObjectArena`]
//! (contiguous payloads, no per-object pointer chasing) and each level
//! launches **one** batched kernel via [`Device::launch_batch`], charged
//! once per batch with the same work–span accounting as the per-pair path.
//! Inside a launch, large id blocks are fanned out over real host threads
//! by the dispatch layer (`crate::dispatch`): fixed-size chunks, per-chunk
//! work-span combined by sum/max, so the thread count
//! ([`GtsParams::host_threads`]) changes wall-clock only — never answers,
//! tie-breaks, or simulated cycles. A per-batch `(query, pivot)`
//! **distance memo** (a flat open-addressing [`PairMemo`]) short-circuits
//! repeated evaluations of the same pair (e.g. a singleton child
//! re-selecting its parent's pivot), and all level-loop buffers live in a
//! `SearchScratch` reused across levels — the steady-state loop performs
//! no `Vec` allocation.
//!
//! The **two-stage memory strategy** bounds the frontier at layer `i` to
//! `size_GPU / ((h − i + 1)·Nc)` entries; a batch exceeding the bound is
//! split into query groups processed sequentially (never splitting a single
//! query's frontier), so intermediate results can always be materialised —
//! the memory-deadlock-freedom claim of Challenge II.
//!
//! Pruning: internal children are pruned by the ring test of Lemma 5.1/5.2
//! against the parent pivot; MkNNQ additionally uses the own-pivot prune
//! (`d(q, pivot) − own_max > bound`) after the per-level bound update, which
//! mirrors Alg. 5 lines 11–16 (the bound update runs through the same
//! encode-and-global-sort machinery as construction). All MkNNQ prunes are
//! **tie-safe**: they fire only when a candidate would be *strictly* worse
//! than the current bound (the closed-ball form of the lemmas, with the
//! bound as the radius), so every object tied with the k-th distance is
//! verified and the final pool is the **canonical** k smallest `(dis, id)`
//! pairs — the property that lets the sharded index merge per-shard top-k
//! lists bit-identically. Leaf verification
//! first applies the stored-distance filter (the table's `dis` column *is*
//! `d(o, parent pivot)`, so the filter costs zero distance evaluations),
//! then computes real distances for survivors only — one batched kernel per
//! wave.

use crate::dispatch::distance_block;
use crate::memo::PairMemo;
use crate::node::TreeShape;
use crate::params::GtsParams;
use crate::stats::SearchStats;
use crate::table::TableList;
use gpu_sim::primitives::{reduce_max_f64, sort_pairs_by_key};
use gpu_sim::{Device, GpuError};
use metric_space::index::{sort_neighbors, Neighbor};
use metric_space::lemmas::prune_node_range;
use metric_space::{BatchMetric, ObjectArena};
use std::cell::RefCell;
use std::sync::Arc;

/// One intermediate-result element `E = {N, q, ...}` of the paper's `Q_Res`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Frontier {
    /// Node id to be searched.
    pub node: u32,
    /// Query index within the batch.
    pub query: u32,
    /// Distance from the query to the node's **parent's** pivot (`NaN` at
    /// the root, where no parent exists).
    pub dqp: f64,
}

/// Device-resident layout of a frontier element (memory accounting only).
#[derive(Clone, Copy, Default)]
struct RawEntry {
    _node: u32,
    _query: u32,
    _dqp: f64,
}

/// Device bytes one frontier entry occupies — the unit the two-stage memory
/// bound and the cost-model batch sizing are denominated in.
pub(crate) const FRONTIER_ENTRY_BYTES: usize = std::mem::size_of::<RawEntry>();

/// The paper's per-layer intermediate-result bound, in frontier entries:
/// `size_limit = size_GPU / ((h − layer + 1)·Nc)` with `size_GPU` the free
/// device bytes. Shared by the search loops (which split into query groups
/// past it) and by [`CostModel::max_batch_queries`](crate::CostModel), so
/// the admission-side batch planner and the in-search grouping agree on the
/// budget.
pub(crate) fn layer_size_limit(free_bytes: u64, h: u32, level: u32, nc: u32) -> usize {
    let denom = (h - level + 1) as usize * nc as usize * FRONTIER_ENTRY_BYTES;
    (free_bytes as usize / denom.max(1)).max(1)
}

/// Reusable host-side buffers for the level-synchronous loops.
///
/// One instance serves a whole batched query: frontier buffers ping-pong
/// between levels through a small pool (also feeding query-group recursion),
/// and every kernel-staging vector (`dq`, survivor ids, kernel outputs,
/// encode pairs, verification waves) is cleared and refilled instead of
/// reallocated. The level loop itself allocates nothing after warm-up.
#[derive(Default)]
pub(crate) struct SearchScratch {
    /// Pool of frontier buffers (current/next/per-group), recycled.
    frontier_pool: Vec<Vec<Frontier>>,
    /// `d(query, node pivot)` per frontier entry of the current level.
    dq: Vec<f64>,
    /// Frontier indices whose pivot distance missed the memo.
    pending: Vec<u32>,
    /// Object-id staging for the batched kernels.
    kernel_ids: Vec<u32>,
    /// Distance output staging for the batched kernels.
    kernel_out: Vec<f64>,
    /// Per-pair bound staging for the bounded verification kernels.
    kernel_bounds: Vec<f64>,
    /// `Option<f64>` output staging for the bounded verification kernels.
    kernel_opt: Vec<Option<f64>>,
    /// Ring gap per next-level entry (MkNNQ beam ranking).
    gaps: Vec<f64>,
    /// Encoded `(key, entry)` pairs for the MkNNQ bound update.
    pairs: Vec<(f64, u32)>,
    /// Per-block ranking indices for beam truncation.
    ranked: Vec<u32>,
    /// Entry ordering for leaf verification waves.
    order: Vec<u32>,
    /// Entries of the current verification wave.
    wave: Vec<Frontier>,
    /// `(entry index, table position)` verification tasks.
    tasks: Vec<(u32, u32)>,
    /// Per-query kNN bound snapshot for one wave.
    bounds: Vec<f64>,
}

impl SearchScratch {
    fn take_frontier(&mut self) -> Vec<Frontier> {
        self.frontier_pool.pop().unwrap_or_default()
    }

    fn put_frontier(&mut self, mut buf: Vec<Frontier>) {
        buf.clear();
        self.frontier_pool.push(buf);
    }
}

/// Borrowed view of everything a search needs.
pub(crate) struct SearchCtx<'a, O, M> {
    pub dev: &'a Arc<Device>,
    pub objects: &'a [O],
    pub metric: &'a M,
    pub params: &'a GtsParams,
    pub nodes: &'a crate::node::NodeList,
    pub table: &'a TableList,
    /// Flat payload arena over `objects`, when the metric supports one
    /// (`None` falls back to per-pair object access inside the kernels).
    pub arena: Option<&'a ObjectArena>,
    /// Liveness per object id: tombstoned ids must neither appear in
    /// answers nor tighten kNN bounds (their pivot distances are still
    /// valid for *ring pruning*, which concerns the tree geometry).
    pub live: &'a [bool],
    pub stats: &'a SearchStats,
    /// Host threads for the batched kernels (resolved from
    /// [`GtsParams::effective_host_threads`]); wall-clock only — the
    /// dispatch layer cuts fixed-size chunks so results and cycle counts
    /// never depend on it.
    pub threads: usize,
    /// Per-batch `(query, pivot)` distance memo: ring-prune tests on
    /// siblings share the parent-pivot distance via [`Frontier::dqp`], and
    /// this memo extends the same guarantee to pivots re-encountered across
    /// levels (a singleton node re-selects its parent's pivot) — those
    /// pairs are never recomputed within a batch. A flat open-addressing
    /// table ([`PairMemo`]), probed once per frontier entry per level.
    pub memo: RefCell<PairMemo>,
}

impl<'a, O, M> SearchCtx<'a, O, M>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    fn shape(&self) -> TreeShape {
        self.nodes.shape()
    }

    /// The paper's per-layer intermediate-result bound:
    /// `size_limit = size_GPU / ((h − layer + 1)·Nc)`, in frontier entries.
    fn size_limit(&self, level: u32) -> usize {
        let shape = self.shape();
        layer_size_limit(self.dev.free_bytes(), shape.h, level, shape.nc)
    }

    /// Split a frontier into query groups each within `limit` entries
    /// (frontiers are always query-contiguous). A single query whose
    /// frontier alone exceeds the limit forms its own group.
    fn split_groups(entries: Vec<Frontier>, limit: usize) -> Vec<Vec<Frontier>> {
        let mut groups: Vec<Vec<Frontier>> = Vec::new();
        let mut cur: Vec<Frontier> = Vec::new();
        let mut i = 0usize;
        while i < entries.len() {
            // extent of this query's block
            let q = entries[i].query;
            let mut j = i;
            while j < entries.len() && entries[j].query == q {
                j += 1;
            }
            let block = j - i;
            if !cur.is_empty() && cur.len() + block > limit {
                groups.push(std::mem::take(&mut cur));
            }
            cur.extend_from_slice(&entries[i..j]);
            i = j;
        }
        if !cur.is_empty() {
            groups.push(cur);
        }
        groups
    }

    fn multiple_queries(entries: &[Frontier]) -> bool {
        entries
            .first()
            .map(|f| f.query)
            .zip(entries.last().map(|f| f.query))
            .is_some_and(|(a, b)| a != b)
    }

    /// Compute `d(query, node.pivot)` for every frontier entry into
    /// `scratch.dq`: memo lookups first, then **one batched kernel** over
    /// the missing pairs (entries are query-contiguous, so the kernel runs
    /// arena-resolved id blocks per query).
    fn pivot_distances(&self, queries: &[O], entries: &[Frontier], scratch: &mut SearchScratch) {
        let SearchScratch {
            dq,
            pending,
            kernel_ids,
            kernel_out,
            ..
        } = scratch;
        dq.clear();
        dq.resize(entries.len(), 0.0);
        pending.clear();
        let mut memo = self.memo.borrow_mut();
        for (i, e) in entries.iter().enumerate() {
            let pivot = self
                .nodes
                .get(e.node as usize)
                .pivot
                .expect("expanded node is internal");
            match memo.get(e.query, pivot) {
                Some(d) => dq[i] = d,
                None => pending.push(i as u32),
            }
        }
        let n = pending.len();
        self.dev.launch_batch(n, || {
            let mut total = 0u64;
            let mut span = 0u64;
            let mut i = 0usize;
            while i < n {
                let q = entries[pending[i] as usize].query;
                let mut j = i;
                while j < n && entries[pending[j] as usize].query == q {
                    j += 1;
                }
                kernel_ids.clear();
                kernel_ids.extend(pending[i..j].iter().map(|&pi| {
                    self.nodes
                        .get(entries[pi as usize].node as usize)
                        .pivot
                        .expect("expanded node is internal")
                }));
                kernel_out.clear();
                kernel_out.resize(j - i, 0.0);
                let (w, s) = distance_block(
                    self.dev.as_ref(),
                    self.threads,
                    self.metric,
                    self.objects,
                    self.arena,
                    &queries[q as usize],
                    kernel_ids,
                    kernel_out,
                );
                total += w;
                span = span.max(s);
                for (k, &pi) in pending[i..j].iter().enumerate() {
                    dq[pi as usize] = kernel_out[k];
                    memo.insert(q, kernel_ids[k], kernel_out[k]);
                }
                i = j;
            }
            ((), total, span)
        });
        self.stats.add(&self.stats.distance_computations, n as u64);
    }

    /// Flatten leaf entries into per-object verification tasks
    /// (`(entry index, table position)`, the thread granularity of the
    /// verification kernel) into `scratch.tasks`.
    fn fill_leaf_tasks(&self, entries: &[Frontier], tasks: &mut Vec<(u32, u32)>) {
        tasks.clear();
        for (i, e) in entries.iter().enumerate() {
            let node = self.nodes.get(e.node as usize);
            for pos in node.pos..node.pos + node.size {
                tasks.push((i as u32, pos));
            }
        }
    }
}

/// Per-verified-object overhead on top of the raw distance work (bound
/// compare + result write), matching the historical per-pair accounting.
const VERIFY_EXTRA_WORK: u64 = 3;

/// Run one query block's leaf-verification kernel — exact or
/// early-abandoning, per [`GtsParams::bounded_verification`] — feeding
/// every computed `(object, distance)` pair to `sink` and returning the
/// block's `(work, span, abandoned)`.
///
/// Under the bounded kernel only pairs with `d ≤ bound` reach the sink
/// (abandoned evaluations are counted, not sunk); under the exact kernel
/// every pair does. The caller's sink applies its own acceptance rule
/// (range: `d ≤ r`; kNN: [`TopK::insert`]), so the two kernels feed it
/// equivalent *accepted* sets whenever `bound` upper-bounds acceptance —
/// the shared body is what keeps the MRQ and MkNNQ paths provably
/// identical in staging and accounting.
#[allow(clippy::too_many_arguments)]
fn verify_block<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    query: &O,
    bound: f64,
    kernel_ids: &[u32],
    kernel_out: &mut Vec<f64>,
    kernel_bounds: &mut Vec<f64>,
    kernel_opt: &mut Vec<Option<f64>>,
    mut sink: impl FnMut(u32, f64),
) -> (u64, u64, u64)
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    if ctx.params.bounded_verification {
        kernel_bounds.clear();
        kernel_bounds.resize(kernel_ids.len(), bound);
        kernel_opt.clear();
        kernel_opt.resize(kernel_ids.len(), None);
        let (w, s) = crate::dispatch::distance_block_bounded(
            ctx.dev.as_ref(),
            ctx.threads,
            ctx.metric,
            ctx.objects,
            ctx.arena,
            query,
            kernel_ids,
            kernel_bounds,
            kernel_opt,
        );
        let mut abandoned = 0u64;
        for (&obj, d) in kernel_ids.iter().zip(kernel_opt.iter()) {
            match d {
                Some(d) => sink(obj, *d),
                None => abandoned += 1,
            }
        }
        (w, s, abandoned)
    } else {
        kernel_out.clear();
        kernel_out.resize(kernel_ids.len(), 0.0);
        let (w, s) = distance_block(
            ctx.dev.as_ref(),
            ctx.threads,
            ctx.metric,
            ctx.objects,
            ctx.arena,
            query,
            kernel_ids,
            kernel_out,
        );
        for (&obj, &d) in kernel_ids.iter().zip(kernel_out.iter()) {
            sink(obj, d);
        }
        (w, s, 0)
    }
}

// ---------------------------------------------------------------------------
// Metric range query (Algorithm 4)
// ---------------------------------------------------------------------------

/// Batched MRQ: `answers[i] = MRQ(queries[i], radii[i])` in canonical order.
pub(crate) fn batch_range<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    radii: &[f64],
) -> Result<Vec<Vec<Neighbor>>, GpuError>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    assert_eq!(queries.len(), radii.len());
    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
    if ctx.table.is_empty() || queries.is_empty() {
        return Ok(results);
    }
    let mut scratch = SearchScratch::default();
    let mut entries = scratch.take_frontier();
    entries.extend((0..queries.len() as u32).map(|q| Frontier {
        node: 1,
        query: q,
        dqp: f64::NAN,
    }));
    range_descend(ctx, queries, radii, entries, 1, &mut results, &mut scratch)?;
    for r in &mut results {
        sort_neighbors(r);
    }
    Ok(results)
}

/// Drive one frontier from `level` down to the leaves: the level loop is
/// iterative (current/next buffers swapped through the scratch pool);
/// query-group splits recurse, reusing the same scratch.
fn range_descend<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    radii: &[f64],
    mut entries: Vec<Frontier>,
    mut level: u32,
    results: &mut Vec<Vec<Neighbor>>,
    scratch: &mut SearchScratch,
) -> Result<(), GpuError>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    // Intermediate-result buffers of every level of this descent, held until
    // the descent finishes — each level's Q'_Res stays live while deeper
    // levels run (the memory pressure the two-stage strategy reacts to).
    let mut held_bufs: Vec<gpu_sim::DeviceBuffer<RawEntry>> = Vec::new();
    loop {
        if entries.is_empty() {
            scratch.put_frontier(entries);
            return Ok(());
        }
        let shape = ctx.shape();
        ctx.stats.max(&ctx.stats.max_frontier, entries.len() as u64);

        // Two-stage strategy: form query groups when the frontier would
        // overrun the per-layer memory bound.
        if ctx.params.query_grouping
            && entries.len() > ctx.size_limit(level)
            && SearchCtx::<O, M>::multiple_queries(&entries)
        {
            let groups = SearchCtx::<O, M>::split_groups(entries, ctx.size_limit(level));
            ctx.stats.add(&ctx.stats.groups_formed, groups.len() as u64);
            for g in groups {
                range_descend(ctx, queries, radii, g, level, results, scratch)?;
            }
            return Ok(());
        }

        if level == shape.h {
            verify_range(ctx, queries, radii, &entries, results, scratch);
            scratch.put_frontier(entries);
            return Ok(());
        }

        // Next-level intermediate buffer, sized |E|·Nc like the paper's
        // Q'_Res. With grouping on, the size-limit check above guarantees
        // this fits; with it off this is exactly where the naive strategy
        // deadlocks.
        held_bufs.push(ctx.dev.alloc::<RawEntry>(
            entries.len() * shape.nc as usize,
            "MRQ intermediate results",
        )?);

        // Expansion kernel: d(q, pivot) per entry (one batched kernel),
        // then the Lemma 5.1 ring test for each of the Nc children.
        ctx.pivot_distances(queries, &entries, scratch);
        let mut next = scratch.take_frontier();
        for (i, e) in entries.iter().enumerate() {
            let r = radii[e.query as usize];
            let dqi = scratch.dq[i];
            for j in 0..shape.nc as usize {
                let cid = shape.child(e.node as usize, j);
                let child = ctx.nodes.get(cid);
                if child.is_empty() {
                    continue;
                }
                let upper = if ctx.params.two_sided_pruning {
                    child.max_dis
                } else {
                    f64::INFINITY
                };
                if prune_node_range(child.min_dis, upper, dqi, r) {
                    ctx.stats.add(&ctx.stats.nodes_pruned, 1);
                } else {
                    ctx.stats.add(&ctx.stats.nodes_expanded, 1);
                    next.push(Frontier {
                        node: cid as u32,
                        query: e.query,
                        dqp: dqi,
                    });
                }
            }
        }
        ctx.dev
            .launch_charged((entries.len() * shape.nc as usize) as u64 * 4, 8);

        scratch.put_frontier(std::mem::replace(&mut entries, next));
        level += 1;
    }
}

fn verify_range<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    radii: &[f64],
    entries: &[Frontier],
    results: &mut [Vec<Neighbor>],
    scratch: &mut SearchScratch,
) where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    let SearchScratch {
        tasks,
        kernel_ids,
        kernel_out,
        kernel_bounds,
        kernel_opt,
        ..
    } = scratch;
    ctx.fill_leaf_tasks(entries, tasks);
    if tasks.is_empty() {
        return;
    }
    let n = tasks.len();
    let mut verified = 0u64;
    let mut abandoned = 0u64;
    // One batched kernel over every verification task: the stored-distance
    // filter (zero distance calls) runs inline; survivors are resolved
    // against the arena in query-contiguous id blocks.
    ctx.dev.launch_batch(n, || {
        let mut total = 0u64;
        let mut span = 0u64;
        let mut t = 0usize;
        while t < n {
            let q = entries[tasks[t].0 as usize].query;
            let mut u = t;
            while u < n && entries[tasks[u].0 as usize].query == q {
                u += 1;
            }
            let r = radii[q as usize];
            kernel_ids.clear();
            for &(ei, pos) in &tasks[t..u] {
                let e = entries[ei as usize];
                let te = ctx.table.get(pos as usize);
                if te.deleted {
                    total += 1;
                    span = span.max(1);
                    continue;
                }
                // Lemma 5.1 filter against the parent pivot: zero distance
                // calls.
                if !e.dqp.is_nan() && (te.dis - e.dqp).abs() > r {
                    total += 3;
                    span = span.max(3);
                    continue;
                }
                kernel_ids.push(te.obj);
            }
            if !kernel_ids.is_empty() {
                // With bounding on, the query's radius *is* the bound: a
                // returned distance is exactly a range hit and an abandoned
                // evaluation a certified miss charged only its banded work.
                let (w, s, ab) = verify_block(
                    ctx,
                    &queries[q as usize],
                    r,
                    kernel_ids,
                    kernel_out,
                    kernel_bounds,
                    kernel_opt,
                    |obj, d| {
                        if d <= r {
                            results[q as usize].push(Neighbor::new(obj, d));
                        }
                    },
                );
                abandoned += ab;
                total += w + VERIFY_EXTRA_WORK * kernel_ids.len() as u64;
                span = span.max(s + VERIFY_EXTRA_WORK);
                verified += kernel_ids.len() as u64;
            }
            t = u;
        }
        ((), total, span)
    });
    ctx.stats.add(&ctx.stats.leaf_verified, verified);
    ctx.stats.add(&ctx.stats.leaf_abandoned, abandoned);
    ctx.stats.add(&ctx.stats.distance_computations, verified);
    ctx.stats.add(&ctx.stats.leaf_filtered, n as u64 - verified);
}

// ---------------------------------------------------------------------------
// Metric kNN query (Algorithm 5)
// ---------------------------------------------------------------------------

/// Running best-k pool of one query; the bound `d(q, k_cur)` of Lemma 5.2.
#[derive(Clone, Debug)]
pub(crate) struct TopK {
    k: usize,
    items: Vec<Neighbor>, // ascending (dist, id), length ≤ k, unique ids
}

impl TopK {
    pub(crate) fn new(k: usize) -> TopK {
        TopK {
            k,
            items: Vec::with_capacity(k.min(1024)),
        }
    }

    /// Insert a candidate, keeping the k best distinct object ids.
    pub(crate) fn insert(&mut self, n: Neighbor) {
        if self.k == 0 || self.items.iter().any(|x| x.id == n.id) {
            return;
        }
        let pos = self
            .items
            .partition_point(|x| (x.dist, x.id) < (n.dist, n.id));
        if pos >= self.k {
            return;
        }
        self.items.insert(pos, n);
        self.items.truncate(self.k);
    }

    /// Current k-th-NN distance bound (∞ until k candidates are known).
    pub(crate) fn bound(&self) -> f64 {
        if self.items.len() == self.k {
            self.items.last().map_or(f64::INFINITY, |n| n.dist)
        } else {
            f64::INFINITY
        }
    }

    /// Final answers, canonical order.
    pub(crate) fn into_sorted(self) -> Vec<Neighbor> {
        self.items
    }
}

/// Batched MkNNQ: the `k` nearest objects per query, canonical order.
pub(crate) fn batch_knn<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    k: usize,
) -> Result<Vec<Vec<Neighbor>>, GpuError>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    batch_knn_impl(ctx, queries, k, None)
}

/// Approximate batched MkNNQ (the paper's future-work direction, §7): at
/// each level every query keeps only its `beam` most promising frontier
/// entries (smallest ring gap to the query coordinate). `beam = None` is
/// the exact search. Smaller beams trade recall for throughput.
pub(crate) fn batch_knn_impl<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    k: usize,
    beam: Option<usize>,
) -> Result<Vec<Vec<Neighbor>>, GpuError>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    let mut pools: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(k)).collect();
    if ctx.table.is_empty() || queries.is_empty() || k == 0 {
        return Ok(pools.into_iter().map(TopK::into_sorted).collect());
    }
    let mut scratch = SearchScratch::default();
    let mut entries = scratch.take_frontier();
    entries.extend((0..queries.len() as u32).map(|q| Frontier {
        node: 1,
        query: q,
        dqp: f64::NAN,
    }));
    knn_descend(ctx, queries, entries, 1, &mut pools, beam, &mut scratch)?;
    Ok(pools.into_iter().map(TopK::into_sorted).collect())
}

/// Per-query beam truncation: keep the `beam` entries whose ring is closest
/// to the query's mapped coordinate. Entries are query-contiguous; `gaps`
/// runs parallel to `entries`. Writes survivors into `out`; `ranked` is
/// reused ranking scratch.
fn truncate_beam<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    entries: &[Frontier],
    gaps: &[f64],
    beam: usize,
    out: &mut Vec<Frontier>,
    ranked: &mut Vec<u32>,
) where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    let mut i = 0usize;
    while i < entries.len() {
        let q = entries[i].query;
        let mut j = i;
        while j < entries.len() && entries[j].query == q {
            j += 1;
        }
        if j - i <= beam {
            out.extend_from_slice(&entries[i..j]);
        } else {
            ranked.clear();
            ranked.extend(i as u32..j as u32);
            ranked.sort_by(|&a, &b| {
                gaps[a as usize]
                    .partial_cmp(&gaps[b as usize])
                    .expect("finite gap")
                    .then(entries[a as usize].node.cmp(&entries[b as usize].node))
            });
            out.extend(ranked[..beam].iter().map(|&e| entries[e as usize]));
        }
        i = j;
    }
    ctx.dev.launch_charged(entries.len() as u64 * 4, 16);
}

fn knn_descend<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    mut entries: Vec<Frontier>,
    mut level: u32,
    pools: &mut Vec<TopK>,
    beam: Option<usize>,
    scratch: &mut SearchScratch,
) -> Result<(), GpuError>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    // See `range_descend`: every level's Q'_Res buffer stays live for the
    // whole descent.
    let mut held_bufs: Vec<gpu_sim::DeviceBuffer<RawEntry>> = Vec::new();
    loop {
        if entries.is_empty() {
            scratch.put_frontier(entries);
            return Ok(());
        }
        let shape = ctx.shape();
        ctx.stats.max(&ctx.stats.max_frontier, entries.len() as u64);

        // Group queries exactly as Algorithm 4 does (Alg. 5 line 4). Groups
        // run sequentially and *share* the pools, so later groups inherit
        // tightened bounds — a free bonus of sequential group processing.
        if ctx.params.query_grouping
            && entries.len() > ctx.size_limit(level)
            && SearchCtx::<O, M>::multiple_queries(&entries)
        {
            let groups = SearchCtx::<O, M>::split_groups(entries, ctx.size_limit(level));
            ctx.stats.add(&ctx.stats.groups_formed, groups.len() as u64);
            for g in groups {
                knn_descend(ctx, queries, g, level, pools, beam, scratch)?;
            }
            return Ok(());
        }

        if level == shape.h {
            verify_knn(ctx, queries, &entries, pools, scratch);
            scratch.put_frontier(entries);
            return Ok(());
        }

        held_bufs.push(ctx.dev.alloc::<RawEntry>(
            entries.len() * shape.nc as usize,
            "MkNNQ intermediate results",
        )?);

        // Alg. 5 lines 7–10: pivot distances for the frontier (one batched
        // kernel + memo). Pivots are real objects, so each distance is also
        // a kNN candidate.
        ctx.pivot_distances(queries, &entries, scratch);

        // Alg. 5 lines 11–12: the per-query k-th bound is located by
        // encoding `query_rank + dis/denom` and running the same global
        // device sort as construction; walking the sorted runs inserts
        // candidates in ascending order per query.
        let SearchScratch { dq, pairs, .. } = &mut *scratch;
        let maxd = reduce_max_f64(ctx.dev, dq).max(0.0);
        let denom = 2.0 * (maxd + 1.0);
        pairs.clear();
        pairs.extend(
            entries
                .iter()
                .enumerate()
                .map(|(i, e)| (f64::from(e.query) + dq[i] / denom, i as u32)),
        );
        ctx.dev.launch_charged(pairs.len() as u64 * 2, 2);
        sort_pairs_by_key(ctx.dev, pairs);
        for &(_, i) in pairs.iter() {
            let e = entries[i as usize];
            let pivot = ctx.nodes.get(e.node as usize).pivot.expect("internal node");
            // A tombstoned pivot's distance must not become a candidate (it
            // is no longer an answer) nor a bound (it could over-tighten
            // pruning against live objects).
            if ctx.live[pivot as usize] {
                pools[e.query as usize].insert(Neighbor::new(pivot, dq[i as usize]));
            }
        }

        // Alg. 5 lines 13–17: prune with the updated bounds — the own-pivot
        // test on the expanded node, then the parent-pivot ring test per
        // child. Both tests are tie-safe (strict `>`): a node that could
        // still contain an object at exactly the bound distance survives,
        // because such an object can enter the canonical answer through the
        // `(dis, id)` tie-break.
        let mut next = scratch.take_frontier();
        scratch.gaps.clear();
        for (i, e) in entries.iter().enumerate() {
            let node = ctx.nodes.get(e.node as usize);
            let bound = pools[e.query as usize].bound();
            let dqi = scratch.dq[i];
            if dqi - node.own_max_dis > bound {
                ctx.stats.add(&ctx.stats.nodes_pruned, u64::from(shape.nc));
                continue;
            }
            for j in 0..shape.nc as usize {
                let cid = shape.child(e.node as usize, j);
                let child = ctx.nodes.get(cid);
                if child.is_empty() {
                    continue;
                }
                let upper = if ctx.params.two_sided_pruning {
                    child.max_dis
                } else {
                    f64::INFINITY
                };
                if prune_node_range(child.min_dis, upper, dqi, bound) {
                    ctx.stats.add(&ctx.stats.nodes_pruned, 1);
                } else {
                    ctx.stats.add(&ctx.stats.nodes_expanded, 1);
                    let gap = if dqi < child.min_dis {
                        child.min_dis - dqi
                    } else if dqi > child.max_dis {
                        dqi - child.max_dis
                    } else {
                        0.0
                    };
                    next.push(Frontier {
                        node: cid as u32,
                        query: e.query,
                        dqp: dqi,
                    });
                    scratch.gaps.push(gap);
                }
            }
        }
        ctx.dev
            .launch_charged((entries.len() * shape.nc as usize) as u64 * 4, 8);

        let next = match beam {
            Some(b) => {
                let mut trimmed = scratch.take_frontier();
                {
                    let SearchScratch { gaps, ranked, .. } = &mut *scratch;
                    truncate_beam(ctx, &next, gaps, b.max(1), &mut trimmed, ranked);
                }
                scratch.put_frontier(next);
                trimmed
            }
            None => next,
        };
        scratch.put_frontier(std::mem::replace(&mut entries, next));
        level += 1;
    }
}

/// Leaf verification runs in `KNN_WAVES` sequential kernel waves, each
/// query's leaves ordered by ring proximity to its mapped coordinate.
/// Within a wave the bound is snapshotted (parallel threads cannot observe
/// each other); between waves the pools — and hence the Lemma 5.2 bound —
/// tighten, implementing the paper's "progressively narrowed distance
/// boundary". Any snapshot bound is an upper bound on the true k-th
/// distance, so every wave's filter is exact.
const KNN_WAVES: usize = 4;

fn verify_knn<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    entries: &[Frontier],
    pools: &mut [TopK],
    scratch: &mut SearchScratch,
) where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    if entries.is_empty() {
        return;
    }
    // Order each query's leaves closest-ring-first so the first wave almost
    // certainly contains the true neighbours.
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..entries.len() as u32);
    let gap = |e: &Frontier| {
        let node = ctx.nodes.get(e.node as usize);
        if e.dqp.is_nan() {
            0.0
        } else if e.dqp < node.min_dis {
            node.min_dis - e.dqp
        } else if e.dqp > node.max_dis {
            e.dqp - node.max_dis
        } else {
            0.0
        }
    };
    order.sort_by(|&a, &b| {
        let (ea, eb) = (&entries[a as usize], &entries[b as usize]);
        ea.query
            .cmp(&eb.query)
            .then(gap(ea).partial_cmp(&gap(eb)).expect("finite gap"))
            .then(ea.node.cmp(&eb.node))
    });
    ctx.dev.launch_charged(entries.len() as u64 * 4, 32);

    // Round-robin the ordered entries into waves: wave 0 gets each query's
    // closest leaves.
    for wave_no in 0..KNN_WAVES {
        let SearchScratch {
            order,
            wave,
            tasks,
            bounds,
            kernel_ids,
            kernel_out,
            kernel_bounds,
            kernel_opt,
            ..
        } = scratch;
        wave.clear();
        wave.extend(
            order
                .iter()
                .enumerate()
                .filter(|(i, _)| i % KNN_WAVES == wave_no)
                .map(|(_, &idx)| entries[idx as usize]),
        );
        ctx.fill_leaf_tasks(wave, tasks);
        if tasks.is_empty() {
            continue;
        }
        bounds.clear();
        bounds.extend(pools.iter().map(TopK::bound));
        let n = tasks.len();
        let mut verified = 0u64;
        let mut abandoned = 0u64;
        // One batched kernel per wave: stored-distance filter inline,
        // survivor distances arena-resolved per query block, candidates
        // inserted after the kernel (threads cannot observe each other's
        // pool updates within a wave).
        ctx.dev.launch_batch(n, || {
            let mut total = 0u64;
            let mut span = 0u64;
            let mut t = 0usize;
            while t < n {
                let q = wave[tasks[t].0 as usize].query;
                let mut u = t;
                while u < n && wave[tasks[u].0 as usize].query == q {
                    u += 1;
                }
                kernel_ids.clear();
                for &(ei, pos) in &tasks[t..u] {
                    let e = wave[ei as usize];
                    let te = ctx.table.get(pos as usize);
                    if te.deleted {
                        total += 1;
                        span = span.max(1);
                        continue;
                    }
                    // Lemma 5.2 filter against the parent pivot, tie-safe
                    // (strict `>`): entries at exactly the bound distance
                    // are verified so the canonical tie-break decides.
                    if !e.dqp.is_nan() && (te.dis - e.dqp).abs() > bounds[q as usize] {
                        total += 3;
                        span = span.max(3);
                        continue;
                    }
                    kernel_ids.push(te.obj);
                }
                if !kernel_ids.is_empty() {
                    // With bounding on, the wave's bound snapshot is the
                    // kernel bound — tie-safe: `Some(d)` iff `d ≤ bound`,
                    // so candidates at exactly the bound are returned and
                    // the canonical `(dis, id)` tie-break decides; an
                    // abandoned candidate has `d > bound` and could never
                    // enter a full pool whose k-th distance *is* the bound.
                    let (w, s, ab) = verify_block(
                        ctx,
                        &queries[q as usize],
                        bounds[q as usize],
                        kernel_ids,
                        kernel_out,
                        kernel_bounds,
                        kernel_opt,
                        |obj, d| pools[q as usize].insert(Neighbor::new(obj, d)),
                    );
                    abandoned += ab;
                    total += w + VERIFY_EXTRA_WORK * kernel_ids.len() as u64;
                    span = span.max(s + VERIFY_EXTRA_WORK);
                    verified += kernel_ids.len() as u64;
                }
                t = u;
            }
            ((), total, span)
        });
        ctx.stats.add(&ctx.stats.leaf_verified, verified);
        ctx.stats.add(&ctx.stats.leaf_abandoned, abandoned);
        ctx.stats.add(&ctx.stats.distance_computations, verified);
        ctx.stats.add(&ctx.stats.leaf_filtered, n as u64 - verified);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric_space::Metric;

    #[test]
    fn topk_keeps_k_best_unique() {
        let mut t = TopK::new(2);
        assert_eq!(t.bound(), f64::INFINITY);
        t.insert(Neighbor::new(1, 5.0));
        assert_eq!(t.bound(), f64::INFINITY, "not full yet");
        t.insert(Neighbor::new(2, 3.0));
        assert_eq!(t.bound(), 5.0);
        t.insert(Neighbor::new(2, 3.0)); // duplicate id ignored
        assert_eq!(t.bound(), 5.0);
        t.insert(Neighbor::new(3, 1.0));
        assert_eq!(t.bound(), 3.0);
        let out = t.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].id, out[1].id), (3, 2));
    }

    #[test]
    fn topk_zero_k() {
        let mut t = TopK::new(0);
        t.insert(Neighbor::new(1, 1.0));
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn split_groups_respects_query_blocks() {
        let mk = |q: u32| Frontier {
            node: 1,
            query: q,
            dqp: 0.0,
        };
        let entries = vec![mk(0), mk(0), mk(1), mk(1), mk(1), mk(2)];
        let groups = SearchCtx::<(), DummyMetric>::split_groups(entries, 3);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 3);
        assert_eq!(groups[2].len(), 1);
        for g in &groups {
            let q0 = g[0].query;
            let qn = g.last().expect("non-empty").query;
            assert!(g.windows(2).all(|w| w[0].query <= w[1].query));
            let _ = (q0, qn);
        }
    }

    #[test]
    fn split_groups_oversized_single_query() {
        let mk = |q: u32| Frontier {
            node: 1,
            query: q,
            dqp: 0.0,
        };
        let entries = vec![mk(5); 10];
        let groups = SearchCtx::<(), DummyMetric>::split_groups(entries, 3);
        assert_eq!(groups.len(), 1, "one query cannot be split");
        assert_eq!(groups[0].len(), 10);
    }

    #[test]
    fn scratch_pool_recycles_buffers() {
        let mut s = SearchScratch::default();
        let mut a = s.take_frontier();
        a.push(Frontier {
            node: 1,
            query: 0,
            dqp: 0.0,
        });
        a.reserve(100);
        let cap = a.capacity();
        s.put_frontier(a);
        let b = s.take_frontier();
        assert!(b.is_empty(), "recycled buffer is cleared");
        assert_eq!(b.capacity(), cap, "recycled buffer keeps its capacity");
    }

    struct DummyMetric;
    impl Metric<()> for DummyMetric {
        fn distance(&self, _: &(), _: &()) -> f64 {
            0.0
        }
        fn work(&self, _: &(), _: &()) -> u64 {
            1
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
    }
    impl BatchMetric<()> for DummyMetric {}
}
