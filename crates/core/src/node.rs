//! The node list: a full `Nc`-ary tree in one flat array (paper §4.2).
//!
//! Node ids are 1-based and follow Eq. 1 of the paper: the `j`-th child
//! (1-based) of node `i` is `(i − 1)·Nc + j + 1`. Consequently every level
//! occupies one contiguous id range and "non-continuous tree nodes at the
//! same level" can be processed by a single kernel — the paper's key storage
//! idea.

/// One tree node. `pivot = None` marks a leaf (last-level) node, exactly as
/// the `NULL` pivots in Fig. 3.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Node {
    /// The pivot object chosen for this node's mapping step (internal nodes
    /// only; `None` for leaves).
    pub pivot: Option<u32>,
    /// Minimum distance from this node's objects to its **parent's** pivot
    /// (the ring lower bound used by Lemma 5.1/5.2 pruning). 0 for the root.
    pub min_dis: f64,
    /// Maximum distance from this node's objects to its parent's pivot (the
    /// symmetric ring upper bound; see DESIGN.md ablation A1).
    pub max_dis: f64,
    /// Start position of this node's objects in the table list.
    pub pos: u32,
    /// Number of objects managed by this node.
    pub size: u32,
    /// Maximum distance from this node's objects to its **own** pivot
    /// (0 when leaf). Used for the MkNNQ own-pivot prune (§5.2).
    pub own_max_dis: f64,
}

impl Node {
    /// True when this node manages no objects (can happen in the last level
    /// of very small datasets).
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }
}

/// Geometry of a full `Nc`-ary tree of height `h` (levels `1..=h`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeShape {
    /// Node capacity `Nc` (children per internal node).
    pub nc: u32,
    /// Height: number of levels; leaves live at level `h`.
    pub h: u32,
}

impl TreeShape {
    /// The paper's height rule (Alg. 1 line 1): `h = ⌈log_Nc(n+1)⌉ − 1`,
    /// clamped to at least 1, which deliberately leaves last-level nodes
    /// *overfull* (size may exceed `Nc`) to bound GPU resource waste.
    pub fn for_dataset(n: usize, nc: u32) -> TreeShape {
        assert!(nc >= 2, "node capacity must be at least 2");
        let h = ((n as f64 + 1.0).log(f64::from(nc)).ceil() as u32).saturating_sub(1);
        TreeShape { nc, h: h.max(1) }
    }

    /// Total number of nodes over all levels: `(Nc^h − 1)/(Nc − 1)`.
    pub fn total_nodes(&self) -> usize {
        let mut total = 0usize;
        let mut width = 1usize;
        for _ in 0..self.h {
            total += width;
            width *= self.nc as usize;
        }
        total
    }

    /// First node id (1-based) of `level` (1-based).
    pub fn level_start(&self, level: u32) -> usize {
        debug_assert!((1..=self.h).contains(&level));
        // start_1 = 1; start_{l+1} = (start_l − 1)·Nc + 2
        let mut start = 1usize;
        for _ in 1..level {
            start = (start - 1) * self.nc as usize + 2;
        }
        start
    }

    /// Number of nodes at `level`.
    pub fn level_width(&self, level: u32) -> usize {
        (self.nc as usize).pow(level - 1)
    }

    /// Id of the `j`-th (0-based) child of node `id` (paper Eq. 1 with
    /// 1-based `j' = j + 1`: `(id − 1)·Nc + j' + 1`).
    pub fn child(&self, id: usize, j: usize) -> usize {
        debug_assert!(j < self.nc as usize);
        (id - 1) * self.nc as usize + j + 2
    }

    /// Parent id of a non-root node.
    pub fn parent(&self, id: usize) -> usize {
        debug_assert!(id > 1);
        (id - 2) / self.nc as usize + 1
    }

    /// Level (1-based) of a node id.
    pub fn level_of(&self, id: usize) -> u32 {
        let mut level = 1u32;
        let mut start = 1usize;
        loop {
            let next = (start - 1) * self.nc as usize + 2;
            if id < next || level == self.h {
                return level;
            }
            start = next;
            level += 1;
        }
    }

    /// True when `id` sits in the last (leaf) level.
    pub fn is_leaf_level(&self, id: usize) -> bool {
        self.h == 1 || id >= self.level_start(self.h)
    }
}

/// The flat node array. Index 0 holds node id 1 (the root).
#[derive(Clone, Debug)]
pub struct NodeList {
    nodes: Vec<Node>,
    shape: TreeShape,
}

impl NodeList {
    /// Allocate a node list for the given shape, zero-initialised.
    pub fn new(shape: TreeShape) -> NodeList {
        NodeList {
            nodes: vec![Node::default(); shape.total_nodes()],
            shape,
        }
    }

    /// Tree geometry.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// Immutable access by 1-based node id.
    pub fn get(&self, id: usize) -> &Node {
        &self.nodes[id - 1]
    }

    /// Mutable access by 1-based node id.
    pub fn get_mut(&mut self, id: usize) -> &mut Node {
        &mut self.nodes[id - 1]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the list holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Bytes occupied by the node array (device-resident).
    pub fn bytes(&self) -> u64 {
        (self.nodes.len() * std::mem::size_of::<Node>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_shape() {
        // Fig. 3: 10 objects, Nc = 2 -> h = ⌈log2 11⌉ − 1 = 3, 7 nodes.
        let s = TreeShape::for_dataset(10, 2);
        assert_eq!(s.h, 3);
        assert_eq!(s.total_nodes(), 7);
        assert_eq!(s.level_start(1), 1);
        assert_eq!(s.level_start(2), 2);
        assert_eq!(s.level_start(3), 4);
        assert_eq!(s.level_width(3), 4);
    }

    #[test]
    fn paper_child_formula() {
        let s = TreeShape::for_dataset(10, 2);
        // "the second child node of N3 is N7"
        assert_eq!(s.child(3, 1), 7);
        assert_eq!(s.child(1, 0), 2);
        assert_eq!(s.child(1, 1), 3);
        assert_eq!(s.child(2, 0), 4);
        assert_eq!(s.child(2, 1), 5);
        assert_eq!(s.child(3, 0), 6);
    }

    #[test]
    fn parent_inverts_child() {
        let s = TreeShape { nc: 5, h: 4 };
        for id in 1..=s.level_width(3) + s.level_start(3) - 1 {
            for j in 0..5 {
                let c = s.child(id, j);
                assert_eq!(s.parent(c), id, "child {c} of {id}");
            }
        }
    }

    #[test]
    fn level_of_roundtrip() {
        let s = TreeShape { nc: 3, h: 4 };
        for level in 1..=4 {
            let start = s.level_start(level);
            let width = s.level_width(level);
            for id in start..start + width {
                assert_eq!(s.level_of(id), level, "id {id}");
            }
        }
    }

    #[test]
    fn leaf_level_detection() {
        let s = TreeShape::for_dataset(10, 2);
        assert!(!s.is_leaf_level(1));
        assert!(!s.is_leaf_level(3));
        assert!(s.is_leaf_level(4));
        assert!(s.is_leaf_level(7));
        // Degenerate single-level tree: the root is the leaf.
        let tiny = TreeShape::for_dataset(2, 8);
        assert_eq!(tiny.h, 1);
        assert!(tiny.is_leaf_level(1));
    }

    #[test]
    fn tiny_datasets_clamp_height() {
        let s = TreeShape::for_dataset(1, 2);
        assert_eq!(s.h, 1);
        assert_eq!(s.total_nodes(), 1);
    }

    #[test]
    fn node_list_access() {
        let mut nl = NodeList::new(TreeShape::for_dataset(10, 2));
        nl.get_mut(1).size = 10;
        nl.get_mut(7).min_dis = 2.0;
        assert_eq!(nl.get(1).size, 10);
        assert_eq!(nl.get(7).min_dis, 2.0);
        assert_eq!(nl.len(), 7);
        assert!(nl.bytes() > 0);
    }

    #[test]
    fn height_grows_with_n_and_shrinks_with_nc() {
        assert!(TreeShape::for_dataset(1_000_000, 10).h > TreeShape::for_dataset(1_000, 10).h);
        assert!(TreeShape::for_dataset(100_000, 10).h >= TreeShape::for_dataset(100_000, 320).h);
    }
}
