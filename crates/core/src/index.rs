//! The public GTS index type.

use crate::audit::{AuditPlan, CostAudit};
use crate::build::{self, Structure};
use crate::cost::CostModel;
use crate::dispatch::distance_block;
use crate::memo::PairMemo;
use crate::node::NodeList;
use crate::params::GtsParams;
use crate::search::{self, SearchCtx};
use crate::stats::{SearchStats, StatsSnapshot};
use crate::table::TableList;
use crate::update::CacheTable;
use gpu_sim::{Device, GpuError, Reservation};
use metric_space::index::{sort_neighbors, DynamicIndex, IndexError, Neighbor, SimilarityIndex};
use metric_space::{BatchMetric, Footprint, ObjectArena};
use std::cell::RefCell;
use std::sync::{Arc, Mutex};

/// GTS: the GPU-based tree index for similarity search in general metric
/// spaces (the paper's contribution).
///
/// Generic over the object type `O` and metric `M`; the only requirements
/// are that distances satisfy the metric axioms and objects can report their
/// memory footprint (for device residency accounting).
///
/// ```
/// use gts_core::{Gts, GtsParams};
/// use gpu_sim::Device;
/// use metric_space::{DatasetKind, SimilarityIndex};
///
/// let data = DatasetKind::Words.generate(500, 42);
/// let dev = Device::rtx_2080_ti();
/// let gts = Gts::build(&dev, data.items.clone(), data.metric, GtsParams::default()).unwrap();
/// let answers = gts.range_query(&data.items[0], 1.0).unwrap();
/// assert!(answers.iter().any(|n| n.id == 0), "query object is its own neighbour");
/// ```
pub struct Gts<O, M> {
    dev: Arc<Device>,
    metric: M,
    params: GtsParams,
    /// Every object ever inserted; ids are indices here and never recycled.
    objects: Vec<O>,
    /// Flat payload arena mirroring `objects` (same ids), fed to the
    /// batched distance kernels. `None` when `params.use_arena` is off or
    /// the metric has no flat layout — kernels then fall back to per-pair
    /// object access with identical results and identical simulated cost.
    arena: Option<ObjectArena>,
    /// Liveness per id (deletions flip this off).
    live: Vec<bool>,
    nodes: NodeList,
    table: TableList,
    cache: CacheTable,
    stats: SearchStats,
    /// Cross-batch `(query, pivot)` memo allocation: each batched search
    /// takes it (emptied), probes/fills it level by level, and returns it
    /// cleared-but-capacity-preserved, so steady-state batches never
    /// reallocate the table. A `Mutex` (not `RefCell`) so the index stays
    /// `Sync` — the sharded scatter runs whole searches from scoped
    /// threads. Uncontended in practice: one batch per index at a time.
    memo: Mutex<PairMemo>,
    /// Cost-model audit: prediction vs. observed survivors per level
    /// (disabled by default; see [`crate::audit`]).
    audit: CostAudit,
    rebuilds: u64,
    build_distances: u64,
    /// Device residency of (node list, table list, object payloads).
    residency: Option<[Reservation; 3]>,
}

fn gpu_err(e: GpuError) -> IndexError {
    match e {
        GpuError::OutOfMemory {
            requested,
            available,
            context,
        } => IndexError::OutOfMemory {
            requested,
            available,
            context,
        },
        // A quarantined device can't host new structures; surface it as an
        // unsupported-operation error (the replicated serving tier routes
        // around dead devices before ever allocating on them).
        GpuError::DeviceUnavailable { .. } => {
            IndexError::Unsupported("device quarantined by a permanent fault")
        }
    }
}

impl<O, M> Gts<O, M>
where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O>,
{
    /// Build the index over `objects` on device `dev`.
    ///
    /// Construction is the paper's level-synchronous parallel algorithm
    /// (§4.3): one mapping + partitioning round per level, every distance
    /// of a level computed by one batched kernel. The returned index holds
    /// its device residency (node list, table list, object payloads) until
    /// dropped.
    ///
    /// ```
    /// use gts_core::{Gts, GtsParams};
    /// use gpu_sim::Device;
    /// use metric_space::DatasetKind;
    ///
    /// // A metric dataset: English-like words under edit distance.
    /// let data = DatasetKind::Words.generate(1_000, 42);
    /// let device = Device::rtx_2080_ti();
    /// let index = Gts::build(&device, data.items.clone(), data.metric, GtsParams::default())
    ///     .expect("construction");
    /// assert!(index.height() >= 1);
    /// assert_eq!(index.node_capacity(), 20, "the paper's recommended Nc");
    /// assert!(device.sim_seconds() > 0.0, "construction charges the simulated clock");
    /// ```
    pub fn build(
        dev: &Arc<Device>,
        objects: Vec<O>,
        metric: M,
        params: GtsParams,
    ) -> Result<Self, IndexError> {
        if objects.is_empty() {
            return Err(IndexError::EmptyIndex);
        }
        let live = vec![true; objects.len()];
        let mut gts = Gts {
            dev: Arc::clone(dev),
            metric,
            params,
            objects,
            arena: None,
            live,
            nodes: NodeList::new(crate::node::TreeShape {
                nc: params.node_capacity,
                h: 1,
            }),
            table: TableList::default(),
            cache: CacheTable::new(params.cache_capacity_bytes),
            stats: SearchStats::default(),
            memo: Mutex::new(PairMemo::default()),
            audit: CostAudit::default(),
            rebuilds: 0,
            build_distances: 0,
            residency: None,
        };
        gts.reconstruct()?;
        gts.rebuilds = 0; // the initial build is not an update-triggered rebuild
        Ok(gts)
    }

    /// Rebuild the structure over all live objects (absorbing the cache);
    /// the §4.4 batch-update and cache-overflow path.
    pub fn rebuild(&mut self) -> Result<(), IndexError> {
        self.reconstruct()?;
        Ok(())
    }

    /// Host-only half of a batch update: tombstone `deletions` and append
    /// `insertions` to the object store **without** touching the device.
    /// Infallible and panic-free, so a caller can stage several shards and
    /// only then run the (fallible, fault-prone) rebuilds — a panic mid
    /// rebuild leaves every host store already complete. Returns how many
    /// deletions flipped a live object to dead (invalid and duplicate ids
    /// are skipped, matching [`Gts::batch_update`]'s semantics).
    pub(crate) fn stage_update(&mut self, insertions: Vec<O>, deletions: &[u32]) -> usize {
        let mut removed = 0usize;
        for &d in deletions {
            if let Some(live) = self.live.get_mut(d as usize) {
                if *live {
                    *live = false;
                    removed += 1;
                }
            }
        }
        for obj in insertions {
            self.objects.push(obj);
            self.live.push(true);
        }
        removed
    }

    /// Whether object `id` exists and is live (not tombstoned).
    pub(crate) fn is_live(&self, id: u32) -> bool {
        self.live.get(id as usize).copied().unwrap_or(false)
    }

    /// (Re)build the flat arena over the current object store. The arena is
    /// the device *layout* of the already-resident object payloads, not an
    /// extra copy, so it carries no separate reservation.
    fn refresh_arena(&mut self) {
        self.arena = if self.params.use_arena {
            self.metric
                .build_arena_with(&self.objects, self.params.arena_layout)
        } else {
            None
        };
    }

    fn reconstruct(&mut self) -> Result<(), IndexError> {
        let ids: Vec<u32> = (0..self.objects.len() as u32)
            .filter(|&i| self.live[i as usize])
            .collect();
        if ids.is_empty() {
            return Err(IndexError::EmptyIndex);
        }
        // Free the previous structure before reserving the new one.
        self.residency = None;
        if self
            .arena
            .as_ref()
            .is_none_or(|a| a.len() != self.objects.len())
        {
            self.refresh_arena();
        }
        let Structure {
            nodes,
            table,
            build_distances,
        } = build::construct(
            &self.dev,
            &self.objects,
            self.arena.as_ref(),
            &ids,
            &self.metric,
            &self.params,
        )
        .map_err(gpu_err)?;
        let data_bytes: u64 = ids
            .iter()
            .map(|&i| self.objects[i as usize].size_bytes())
            .sum();
        let res_nodes = self
            .dev
            .reserve(nodes.bytes(), "GTS node list")
            .map_err(gpu_err)?;
        let res_table = self
            .dev
            .reserve(table.bytes(), "GTS table list")
            .map_err(gpu_err)?;
        let res_data = self
            .dev
            .reserve(data_bytes, "GTS resident objects")
            .map_err(gpu_err)?;
        self.nodes = nodes;
        self.table = table;
        self.build_distances = build_distances;
        self.residency = Some([res_nodes, res_table, res_data]);
        self.cache.clear();
        self.rebuilds += 1;
        Ok(())
    }

    pub(crate) fn ctx(&self) -> SearchCtx<'_, O, M> {
        // Take the shared memo allocation (leaving an empty default); it is
        // returned — cleared, capacity intact — by `reclaim_memo`.
        let memo = std::mem::take(&mut *self.memo.lock().expect("memo lock"));
        SearchCtx {
            dev: &self.dev,
            objects: &self.objects,
            metric: &self.metric,
            params: &self.params,
            nodes: &self.nodes,
            table: &self.table,
            arena: self.arena.as_ref(),
            live: &self.live,
            stats: &self.stats,
            threads: self.params.effective_host_threads(self.dev.host_threads()),
            audit: &self.audit,
            memo: RefCell::new(memo),
        }
    }

    /// Return the batch memo to the index: cleared (memo entries are valid
    /// for one batch only — the object store may change between batches)
    /// but with its grown allocation preserved for the next batch.
    pub(crate) fn reclaim_memo(&self, ctx: SearchCtx<'_, O, M>) {
        let mut memo = ctx.memo.into_inner();
        memo.clear();
        *self.memo.lock().expect("memo lock") = memo;
    }

    /// Batched metric range query (Algorithm 4) plus the cache-list scan of
    /// §4.4, answers merged per query in canonical order.
    ///
    /// `answers[i]` holds every indexed object within `radii[i]` of
    /// `queries[i]` (exact, sorted by distance then id). Batching is GTS's
    /// headline strength: the whole batch descends the tree together,
    /// level-synchronously.
    ///
    /// ```
    /// use gts_core::{Gts, GtsParams};
    /// use gpu_sim::Device;
    /// use metric_space::{DatasetKind, Item};
    ///
    /// let data = DatasetKind::Words.generate(1_000, 42);
    /// let device = Device::rtx_2080_ti();
    /// let index = Gts::build(&device, data.items.clone(), data.metric, GtsParams::default())
    ///     .expect("construction");
    ///
    /// // All words within 1 edit of each query word.
    /// let queries = vec![data.items[0].clone(), data.items[1].clone()];
    /// let answers = index.batch_range(&queries, &[1.0, 1.0]).expect("search");
    /// assert_eq!(answers.len(), 2, "one answer list per query");
    /// assert!(answers[0].iter().any(|n| n.id == 0), "a query finds itself");
    /// assert!(answers[0].windows(2).all(|w| w[0].dist <= w[1].dist), "canonical order");
    /// ```
    pub fn batch_range(
        &self,
        queries: &[O],
        radii: &[f64],
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        assert_eq!(queries.len(), radii.len());
        self.transfer_queries_in(queries);
        let ctx = self.ctx();
        let searched = search::batch_range(&ctx, queries, radii);
        self.reclaim_memo(ctx);
        let mut results = searched.map_err(gpu_err)?;
        self.merge_cache_range(queries, radii, &mut results);
        self.transfer_results_out(&results);
        Ok(results)
    }

    /// Batched metric kNN query (Algorithm 5) plus the cache-list scan.
    ///
    /// `answers[i]` holds the `k` nearest distinct indexed objects to
    /// `queries[i]` — exactly the **canonical** `k` smallest `(dist, id)`
    /// pairs, so ties at the k-th distance resolve deterministically by id
    /// (the property [`ShardedGts`](crate::ShardedGts) relies on to merge
    /// per-shard answers bit-identically). The per-query distance bound
    /// tightens level by level — the paper's "progressively narrowed
    /// distance boundary".
    ///
    /// ```
    /// use gts_core::{Gts, GtsParams};
    /// use gpu_sim::Device;
    /// use metric_space::DatasetKind;
    ///
    /// let data = DatasetKind::Words.generate(1_000, 42);
    /// let device = Device::rtx_2080_ti();
    /// let index = Gts::build(&device, data.items.clone(), data.metric, GtsParams::default())
    ///     .expect("construction");
    ///
    /// let queries = vec![data.items[0].clone(), data.items[7].clone()];
    /// let knn = index.batch_knn(&queries, 5).expect("search");
    /// assert_eq!(knn[0].len(), 5);
    /// assert_eq!(knn[0][0].id, 0, "the query object is its own 1-NN");
    ///
    /// // What the search actually did (the counters of `SearchStats`).
    /// let stats = index.stats();
    /// assert!(stats.distance_computations > 0);
    /// assert!(stats.nodes_expanded > 0, "the frontier descended the tree");
    /// ```
    pub fn batch_knn(&self, queries: &[O], k: usize) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        self.transfer_queries_in(queries);
        let ctx = self.ctx();
        let searched = search::batch_knn(&ctx, queries, k);
        self.reclaim_memo(ctx);
        let mut results = searched.map_err(gpu_err)?;
        self.merge_cache_knn(queries, k, &mut results);
        self.transfer_results_out(&results);
        Ok(results)
    }

    /// One shard's half of the **lockstep broadcast MkNNQ**
    /// ([`GtsParams::bound_broadcast`]): the sharded scatter calls this on
    /// every shard's thread concurrently, sharing one
    /// [`BoundExchange`](crate::engine::BoundExchange).
    ///
    /// Each round: step this shard's descent engine one level, publish the
    /// per-query bound snapshot (a D2H transfer of one `f64` per query) and
    /// this shard's elapsed device time, wait at the barrier, align the
    /// device clock to the slowest shard (the barrier's span cost), then
    /// read back the cross-shard minima (an H2D transfer) and inject them
    /// before the next level. A shard whose engine finishes early or dies
    /// on a device error keeps participating in the barriers (publishing
    /// its final bounds once, idling its clock) until every shard is done,
    /// so the rounds stay aligned. A shard that **panics** (a user metric
    /// misbehaving inside a kernel) also keeps honoring the barriers, but
    /// publishes nothing further — the engine's state is unknown after the
    /// unwind — and the caught panic is re-raised only after the lockstep
    /// rounds end, where it propagates through the scatter join exactly
    /// like on the independent-descent path instead of deadlocking the
    /// sibling shards at the barrier. The caller sees exactly the
    /// [`Gts::batch_knn`] pipeline: query transfer in, descent, memo
    /// reclaim, cache merge, result transfer out.
    pub(crate) fn batch_knn_lockstep(
        &self,
        queries: &[O],
        k: usize,
        exchange: &crate::engine::BoundExchange,
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        self.transfer_queries_in(queries);
        let start = self.dev.cycles();
        let nq = queries.len();
        let ctx = self.ctx();
        let mut engine = crate::engine::DescentEngine::start_knn(&ctx, queries, k, None);
        let mut local = vec![f64::INFINITY; nq];
        let mut running = !engine.is_done();
        if !running {
            exchange.retire();
        }
        let mut failure: Option<GpuError> = None;
        let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
        loop {
            if running {
                // The step runs user metric code; a panic here must not
                // abandon the barrier (the sibling shards would block in
                // `wait` forever with no one left to complete the round).
                let step =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.step_level()));
                match step {
                    Ok(Ok(true)) => {}
                    Ok(Ok(false)) => {
                        running = false;
                        exchange.retire();
                    }
                    Ok(Err(e)) => {
                        failure = Some(e);
                        running = false;
                        exchange.retire();
                    }
                    Err(payload) => {
                        panicked = Some(payload);
                        running = false;
                        exchange.retire();
                    }
                }
                if panicked.is_none() {
                    // Publish this level's bound snapshot — including the
                    // final one of an engine that just finished, whose
                    // bounds are its tightest and still help the shards
                    // that keep descending. (A panicked engine's state is
                    // unknown, so nothing more is read from it.)
                    engine.write_bounds(&mut local);
                    exchange.publish_bounds(&local);
                    self.dev
                        .d2h_transfer((nq * std::mem::size_of::<f64>()) as u64);
                }
            }
            exchange.publish_elapsed(self.dev.cycles() - start);
            exchange.wait();
            let done = exchange.all_done();
            // Barrier: every device waits for the slowest shard's level.
            self.dev.advance_clock_to(start + exchange.elapsed());
            if done {
                break;
            }
            if running {
                exchange.read_bounds(&mut local);
                self.dev
                    .h2d_transfer((nq * std::mem::size_of::<f64>()) as u64);
                engine.inject_bounds(&local);
            }
            // Second barrier phase: no publish of the next round may race a
            // read of this one.
            exchange.wait();
        }
        let searched = if failure.is_none() && panicked.is_none() {
            Some(engine.into_results())
        } else {
            drop(engine);
            None
        };
        self.reclaim_memo(ctx);
        if let Some(payload) = panicked {
            // Every shard has left the barrier loop; unwinding is now safe
            // and surfaces through the scatter join like any other panic.
            std::panic::resume_unwind(payload);
        }
        match failure {
            Some(e) => Err(gpu_err(e)),
            None => {
                let mut results = searched.expect("no failure implies results");
                self.merge_cache_knn(queries, k, &mut results);
                self.transfer_results_out(&results);
                Ok(results)
            }
        }
    }

    /// **Approximate** batched MkNNQ — the paper's §7 future-work direction.
    ///
    /// Each query expands at most `beam` frontier nodes per level (those
    /// whose distance ring is closest to the query's mapped coordinate).
    /// Recall degrades gracefully as `beam` shrinks; `beam ≥ Nc^(h−1)`
    /// degenerates to the exact search.
    pub fn batch_knn_approx(
        &self,
        queries: &[O],
        k: usize,
        beam: usize,
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        self.transfer_queries_in(queries);
        let ctx = self.ctx();
        let searched = search::batch_knn_impl(&ctx, queries, k, Some(beam));
        self.reclaim_memo(ctx);
        let mut results = searched.map_err(gpu_err)?;
        self.merge_cache_knn(queries, k, &mut results);
        self.transfer_results_out(&results);
        Ok(results)
    }

    pub(crate) fn transfer_queries_in(&self, queries: &[O]) {
        let bytes: u64 = queries.iter().map(Footprint::size_bytes).sum();
        self.dev.h2d_transfer(bytes);
    }

    pub(crate) fn transfer_results_out(&self, results: &[Vec<Neighbor>]) {
        let hits: usize = results.iter().map(Vec::len).sum();
        self.dev
            .d2h_transfer((hits * std::mem::size_of::<Neighbor>()) as u64);
    }

    /// Brute-force distances from every query to every cached insertion
    /// (the cache is bounded by a few KB, so a flat table scan — the §4.4
    /// strategy), one batched arena-resolved kernel for the whole scan.
    fn cache_distances(&self, queries: &[O]) -> Vec<(u32, u32, f64)> {
        let ids = self.cache.ids();
        if ids.is_empty() || queries.is_empty() {
            return Vec::new();
        }
        let n = queries.len() * ids.len();
        let threads = self.params.effective_host_threads(self.dev.host_threads());
        let mut out = vec![0.0f64; ids.len()];
        let mut dists: Vec<(u32, u32, f64)> = Vec::with_capacity(n);
        self.dev.launch_batch(n, || {
            let mut total = 0u64;
            let mut span = 0u64;
            for (q, query) in queries.iter().enumerate() {
                let (w, s) = distance_block(
                    &self.dev,
                    threads,
                    &self.metric,
                    &self.objects,
                    self.arena.as_ref(),
                    query,
                    ids,
                    &mut out,
                );
                total += w;
                span = span.max(s);
                dists.extend(ids.iter().zip(&out).map(|(&o, &d)| (q as u32, o, d)));
            }
            ((), total, span)
        });
        self.stats.add(&self.stats.distance_computations, n as u64);
        dists
    }

    fn merge_cache_range(&self, queries: &[O], radii: &[f64], results: &mut [Vec<Neighbor>]) {
        for (q, o, d) in self.cache_distances(queries) {
            if d <= radii[q as usize] {
                results[q as usize].push(Neighbor::new(o, d));
            }
        }
        for r in results.iter_mut() {
            sort_neighbors(r);
        }
    }

    pub(crate) fn merge_cache_knn(&self, queries: &[O], k: usize, results: &mut [Vec<Neighbor>]) {
        if self.cache.len() == 0 {
            return;
        }
        let mut extra: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        for (q, o, d) in self.cache_distances(queries) {
            extra[q as usize].push(Neighbor::new(o, d));
        }
        for (r, mut e) in results.iter_mut().zip(extra) {
            r.append(&mut e);
            sort_neighbors(r);
            r.truncate(k);
        }
    }

    // -- accessors ------------------------------------------------------------

    /// The device this index lives on.
    pub fn device(&self) -> &Arc<Device> {
        &self.dev
    }

    /// Construction/search parameters.
    pub fn params(&self) -> &GtsParams {
        &self.params
    }

    /// Override the host-thread knob (wall-clock only; never affects
    /// answers or simulated cycles). Used by the sharded restore path to
    /// divide the auto thread budget among shards.
    pub(crate) fn set_host_threads(&mut self, host_threads: usize) {
        self.params.host_threads = host_threads;
    }

    /// Toggle the cross-shard bound-broadcast knob (consulted by
    /// [`ShardedGts`](crate::ShardedGts), never by a plain `Gts`); affects
    /// subsequent searches only. Like `host_threads`, the knob is not
    /// persisted, so [`ShardedGts::set_bound_broadcast`](crate::ShardedGts)
    /// re-arms restored indexes.
    pub(crate) fn set_bound_broadcast(&mut self, broadcast: bool) {
        self.params.bound_broadcast = broadcast;
    }

    /// Tree height `h`.
    pub fn height(&self) -> u32 {
        self.nodes.shape().h
    }

    /// Node capacity `Nc`.
    pub fn node_capacity(&self) -> u32 {
        self.params.node_capacity
    }

    /// Snapshot of the search counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Reset the search counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Rebuilds triggered by updates since construction.
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Distance evaluations spent in the most recent (re)construction.
    pub fn build_distance_count(&self) -> u64 {
        self.build_distances
    }

    /// Number of insertions currently buffered in the cache table.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Cache occupancy in bytes.
    pub fn cache_bytes(&self) -> usize {
        self.cache.bytes()
    }

    /// Cache byte budget (rebuild threshold of §4.4).
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Serialize the index structure (not the objects) to a versioned
    /// binary snapshot; see [`Gts::restore`].
    pub fn snapshot(&self) -> Vec<u8> {
        crate::snapshot::encode(crate::snapshot::SnapshotParts {
            params: &self.params,
            nodes: &self.nodes,
            table: &self.table,
            live: &self.live,
            cache_ids: self.cache.ids(),
        })
    }

    /// Rebuild an index from a [`Gts::snapshot`] and the caller's object
    /// store (which must be the exact store the snapshot was taken over —
    /// validated structurally). Skips reconstruction entirely; only the
    /// device residency is re-reserved (and the snapshot bytes H2D-copied).
    pub fn restore(
        dev: &Arc<Device>,
        objects: Vec<O>,
        metric: M,
        bytes: &[u8],
    ) -> Result<Self, IndexError> {
        let decoded = crate::snapshot::decode(bytes, objects.len())?;
        let data_bytes: u64 = decoded
            .live
            .iter()
            .zip(&objects)
            .filter(|&(&l, _)| l)
            .map(|(_, o)| o.size_bytes())
            .sum();
        let res_nodes = dev
            .reserve(decoded.nodes.bytes(), "GTS node list")
            .map_err(gpu_err)?;
        let res_table = dev
            .reserve(decoded.table.bytes(), "GTS table list")
            .map_err(gpu_err)?;
        let res_data = dev
            .reserve(data_bytes, "GTS resident objects")
            .map_err(gpu_err)?;
        dev.h2d_transfer(bytes.len() as u64 + data_bytes);
        let mut cache = CacheTable::new(decoded.params.cache_capacity_bytes);
        for &id in &decoded.cache_ids {
            cache.insert(id, objects[id as usize].size_bytes() as usize);
        }
        // `arena_layout` is an un-persisted kernel knob: restored params
        // carry the default `Legacy`, so this rebuild is layout-neutral.
        let arena = if decoded.params.use_arena {
            metric.build_arena_with(&objects, decoded.params.arena_layout)
        } else {
            None
        };
        Ok(Gts {
            dev: Arc::clone(dev),
            metric,
            params: decoded.params,
            objects,
            arena,
            live: decoded.live,
            nodes: decoded.nodes,
            table: decoded.table,
            cache,
            stats: SearchStats::default(),
            memo: Mutex::new(PairMemo::default()),
            audit: CostAudit::default(),
            rebuilds: 0,
            build_distances: 0,
            residency: Some([res_nodes, res_table, res_data]),
        })
    }

    /// Distance from an arbitrary query object to indexed object `id`
    /// (charged to the device; the multi-column combiner's random access).
    pub fn distance_to_query(&self, q: &O, id: u32) -> f64 {
        let o = &self.objects[id as usize];
        self.dev.charge_kernel(self.metric.work(q, o), 1);
        self.stats.add(&self.stats.distance_computations, 1);
        self.metric.distance(q, o)
    }

    /// Fit the §5.3 cost model to this index's data by sampling pivot
    /// coordinates (`samples` distance evaluations, charged to the device).
    pub fn cost_model(&self, samples: usize, seed: u64) -> CostModel {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let ids: Vec<u32> = self.table.live_ids();
        let pivot = ids[rng.gen_range(0..ids.len())];
        let mut sum = 0f64;
        let mut sum2 = 0f64;
        let mut work = 0u64;
        let samples = samples.max(2);
        for _ in 0..samples {
            let o = ids[rng.gen_range(0..ids.len())];
            let d = self
                .metric
                .distance(&self.objects[pivot as usize], &self.objects[o as usize]);
            work += self
                .metric
                .work(&self.objects[pivot as usize], &self.objects[o as usize]);
            sum += d;
            sum2 += d * d;
        }
        self.dev.charge_kernel(work, work / samples as u64);
        let mean = sum / samples as f64;
        let sigma = (sum2 / samples as f64 - mean * mean).max(0.0).sqrt();
        CostModel {
            n: self.len(),
            cores: self.dev.config().cores,
            sigma,
            distance_work: work as f64 / samples as f64,
        }
    }

    /// Largest query batch the §5.3 model expects this index to run without
    /// query grouping, sized against **this device's** current free memory
    /// ([`CostModel::max_batch_queries`] over the index's actual tree shape).
    pub fn max_batch_queries(&self, model: &CostModel, radius: f64) -> usize {
        self.max_batch_queries_with_free(self.dev.free_bytes(), model, radius)
    }

    /// [`Gts::max_batch_queries`] against an explicit free-memory budget —
    /// the entry point a *global* scheduler uses to size one batch across
    /// several shards (passing the pool-wide minimum free bytes instead of
    /// this device's own view; see
    /// [`ShardedGts::max_batch_queries`](crate::ShardedGts::max_batch_queries)).
    pub fn max_batch_queries_with_free(
        &self,
        free_bytes: u64,
        model: &CostModel,
        radius: f64,
    ) -> usize {
        let batch =
            model.max_batch_queries(free_bytes, self.params.node_capacity, self.height(), radius);
        // Freeze this prediction for the cost-model audit: subsequent
        // descents are measured against exactly the sizing that admitted
        // them (kept even while the audit is disabled, so enabling it later
        // audits against the current plan).
        self.audit.install(AuditPlan {
            model: *model,
            nc: self.params.node_capacity,
            h: self.height(),
            radius,
            predicted_batch: batch,
        });
        batch
    }

    /// The cost-model audit of this index: §5.3's batch-sizing prediction
    /// held against the per-level survivors and peak intermediate bytes the
    /// descent engine actually observes. Disabled by default; switch on
    /// with [`Gts::set_cost_audit_enabled`].
    pub fn cost_audit(&self) -> crate::audit::CostAuditSnapshot {
        self.audit.snapshot()
    }

    /// Enable or disable the cost-model audit (off: one relaxed atomic load
    /// per level, no other work; answers and simulated cycles are identical
    /// either way).
    pub fn set_cost_audit_enabled(&self, on: bool) {
        self.audit.set_enabled(on);
    }
}

impl<O, M> SimilarityIndex<O> for Gts<O, M>
where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O>,
{
    fn name(&self) -> &'static str {
        "GTS"
    }

    fn len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn range_query(&self, q: &O, r: f64) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_range(std::slice::from_ref(q), &[r])?
            .pop()
            .expect("one answer per query"))
    }

    fn knn_query(&self, q: &O, k: usize) -> Result<Vec<Neighbor>, IndexError> {
        Ok(self
            .batch_knn(std::slice::from_ref(q), k)?
            .pop()
            .expect("one answer per query"))
    }

    fn batch_range(&self, queries: &[O], radii: &[f64]) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        Gts::batch_range(self, queries, radii)
    }

    fn batch_knn(&self, queries: &[O], k: usize) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        Gts::batch_knn(self, queries, k)
    }

    fn memory_bytes(&self) -> u64 {
        self.nodes.bytes() + self.table.bytes() + self.cache.bytes() as u64
    }
}

impl<O, M> DynamicIndex<O> for Gts<O, M>
where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O>,
{
    /// Streaming insert (§4.4): `O(1)` into the cache table (the object is
    /// shipped to the device-resident cache); rebuilds when the cache
    /// exceeds its byte budget. The arena is extended in place — the
    /// cache-scan kernel resolves fresh ids flat, too.
    fn insert(&mut self, obj: O) -> Result<u32, IndexError> {
        let id = self.objects.len() as u32;
        let bytes = obj.size_bytes() as usize;
        self.dev.h2d_transfer(bytes as u64);
        if let Some(arena) = self.arena.as_mut() {
            if !self.metric.arena_push(arena, &obj) {
                // The object has no flat representation under this arena;
                // degrade to per-pair kernels rather than desync ids.
                self.arena = None;
            }
        }
        self.objects.push(obj);
        self.live.push(true);
        let overflow = self.cache.insert(id, bytes);
        if overflow {
            self.rebuild()?;
        }
        Ok(id)
    }

    /// Streaming delete (§4.4): drop from the cache if buffered there,
    /// otherwise tombstone the table-list slot (one parallel scan kernel
    /// locating the id in `T_list`).
    fn remove(&mut self, id: u32) -> Result<bool, IndexError> {
        let Some(live) = self.live.get_mut(id as usize) else {
            return Ok(false);
        };
        if !*live {
            return Ok(false);
        }
        *live = false;
        let bytes = self.objects[id as usize].size_bytes() as usize;
        if !self.cache.remove(id, bytes) {
            // Tombstone before the scan kernel launches: every host mutation
            // precedes the only point an injected device fault can fire, so
            // a faulted remove leaves the host state already complete and
            // recovery needs no structural work.
            self.table.tombstone(id);
            self.dev.launch_charged(self.table.len() as u64, 8);
        }
        Ok(true)
    }

    /// Batch update (§4.4): apply all changes, then reconstruct once.
    fn batch_update(&mut self, insertions: Vec<O>, deletions: &[u32]) -> Result<(), IndexError> {
        self.stage_update(insertions, deletions);
        self.rebuild()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric_space::{DatasetKind, Item, ItemMetric, Metric};

    fn words(n: usize) -> (Arc<Device>, Vec<Item>, ItemMetric) {
        let d = DatasetKind::Words.generate(n, 21);
        (Device::rtx_2080_ti(), d.items, d.metric)
    }

    /// Ground truth by linear scan.
    fn scan_range(items: &[Item], m: &ItemMetric, q: &Item, r: f64) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = items
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                let d = m.distance(q, o);
                (d <= r).then_some(Neighbor::new(i as u32, d))
            })
            .collect();
        sort_neighbors(&mut v);
        v
    }

    #[test]
    fn build_and_query_roundtrip() {
        let (dev, items, metric) = words(400);
        let gts = Gts::build(&dev, items.clone(), metric, GtsParams::default()).expect("build");
        assert_eq!(gts.len(), 400);
        assert!(gts.height() >= 1);
        let got = gts.range_query(&items[7], 2.0).expect("query");
        assert_eq!(got, scan_range(&items, &metric, &items[7], 2.0));
    }

    #[test]
    fn empty_build_rejected() {
        let dev = Device::rtx_2080_ti();
        let err = Gts::build(
            &dev,
            Vec::<Item>::new(),
            ItemMetric::Edit,
            GtsParams::default(),
        );
        assert!(matches!(err, Err(IndexError::EmptyIndex)));
    }

    #[test]
    fn insert_goes_to_cache_then_rebuild_absorbs() {
        let (dev, items, metric) = words(200);
        let params = GtsParams::default().with_cache_capacity(10_000);
        let mut gts = Gts::build(&dev, items, metric, params).expect("build");
        let id = gts.insert(Item::text("zzzz")).expect("insert");
        assert_eq!(id, 200);
        assert_eq!(gts.cache_len(), 1);
        assert_eq!(gts.len(), 201);
        // The new object is findable through the cache scan.
        let hits = gts.range_query(&Item::text("zzzz"), 0.0).expect("q");
        assert!(hits.iter().any(|n| n.id == 200));
        gts.rebuild().expect("rebuild");
        assert_eq!(gts.cache_len(), 0);
        let hits = gts.range_query(&Item::text("zzzz"), 0.0).expect("q");
        assert!(
            hits.iter().any(|n| n.id == 200),
            "still findable after rebuild"
        );
    }

    #[test]
    fn cache_overflow_triggers_rebuild() {
        let (dev, items, metric) = words(150);
        let params = GtsParams::default().with_cache_capacity(64);
        let mut gts = Gts::build(&dev, items, metric, params).expect("build");
        let before = gts.rebuild_count();
        for i in 0..10 {
            gts.insert(Item::text(format!("object{i:04}")))
                .expect("insert");
        }
        assert!(gts.rebuild_count() > before, "tiny cache must overflow");
        assert_eq!(gts.len(), 160);
    }

    #[test]
    fn remove_from_index_and_cache() {
        let (dev, items, metric) = words(100);
        let mut gts = Gts::build(&dev, items.clone(), metric, GtsParams::default()).expect("build");
        // Remove an indexed object: tombstoned, vanishes from answers.
        assert!(gts.remove(7).expect("rm"));
        assert!(!gts.remove(7).expect("rm twice"));
        let hits = gts.range_query(&items[7], 0.0).expect("q");
        assert!(!hits.iter().any(|n| n.id == 7), "tombstoned id returned");
        // Remove a cached insertion: dropped before ever being indexed.
        let id = gts.insert(Item::text("qqq")).expect("ins");
        assert!(gts.remove(id).expect("rm cache"));
        let hits = gts.range_query(&Item::text("qqq"), 0.0).expect("q");
        assert!(!hits.iter().any(|n| n.id == id));
        assert!(
            !gts.remove(9999).expect("unknown id"),
            "absent id is Ok(false)"
        );
    }

    #[test]
    fn batch_update_reconstructs_once() {
        let (dev, items, metric) = words(120);
        let mut gts = Gts::build(&dev, items, metric, GtsParams::default()).expect("build");
        let r0 = gts.rebuild_count();
        gts.batch_update(
            (0..30).map(|i| Item::text(format!("new{i}"))).collect(),
            &[0, 1, 2, 3, 4],
        )
        .expect("batch");
        assert_eq!(gts.rebuild_count(), r0 + 1);
        assert_eq!(gts.len(), 120 - 5 + 30);
        assert_eq!(gts.cache_len(), 0);
    }

    #[test]
    fn memory_accounting_present() {
        let (dev, items, metric) = words(300);
        let before = dev.allocated_bytes();
        let gts = Gts::build(&dev, items, metric, GtsParams::default()).expect("build");
        assert!(
            dev.allocated_bytes() > before,
            "index reserves device memory"
        );
        assert!(gts.memory_bytes() > 0);
        drop(gts);
        assert_eq!(dev.allocated_bytes(), before, "drop releases residency");
    }

    #[test]
    fn memo_allocation_is_shared_across_batches() {
        let (dev, items, metric) = words(2000);
        let gts = Gts::build(&dev, items.clone(), metric, GtsParams::default()).expect("build");
        let queries: Vec<Item> = items[..64].to_vec();
        gts.batch_knn(&queries, 5).expect("knn");
        let cap_after_first = gts.memo.lock().expect("lock").capacity();
        assert!(
            cap_after_first > PairMemo::default().capacity(),
            "a 64-query batch must grow the memo past its default capacity"
        );
        gts.batch_knn(&queries, 5).expect("knn");
        let memo = gts.memo.lock().expect("lock");
        assert_eq!(
            memo.capacity(),
            cap_after_first,
            "the second batch reuses the grown allocation"
        );
        assert!(memo.is_empty(), "the memo comes back cleared");
    }

    #[test]
    fn cost_model_fits() {
        let (dev, items, metric) = words(300);
        let gts = Gts::build(&dev, items, metric, GtsParams::default()).expect("build");
        let m = gts.cost_model(100, 5);
        assert_eq!(m.n, 300);
        assert!(m.sigma > 0.0);
        assert!(m.distance_work > 0.0);
    }
}
