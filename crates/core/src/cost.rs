//! The search cost model (paper §5.3) and the node-capacity recommendation
//! it drives.
//!
//! For a single MRQ the paper bounds the per-level survivor count via
//! Chebyshev's inequality: treating the pivot-mapped coordinate as a random
//! variable with variance `σ²`, an object survives level `i` with
//! probability at least `(1 − 2σ²/r²)^i` (Eq. 2–3), giving the level-wise
//! cost `Σ_i i² · ⌈Nc^i·p^i / C⌉ · log₂ Nc`. The model exposes the paper's
//! three regimes (n ≪ C, n ≫ C, n ≈ C) and recommends `Nc` by scanning the
//! candidate set of Table 3 — the experiments of Fig. 6 validate that small
//! `Nc` (≈20) wins on real datasets.

/// Inputs of the cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Dataset cardinality.
    pub n: usize,
    /// GPU concurrent computing power `C` (core count).
    pub cores: u32,
    /// Standard deviation σ of the pivot-mapped coordinate (from
    /// `metric_space::stats::pivot_coordinate_sigma`).
    pub sigma: f64,
    /// Average work units per distance evaluation (metric cost).
    pub distance_work: f64,
}

/// The three analysis regimes of §5.3's discussion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// `n ≪ C`: compute power exceeds data size — larger `Nc` (lower tree)
    /// wins.
    ComputeRich,
    /// `n ≫ C`: data dwarfs compute — smaller `Nc` (more pruning) wins.
    ComputeBound,
    /// `n ≈ C`: balanced; a relatively small `Nc` is suggested.
    Balanced,
}

impl CostModel {
    /// Survivor probability per level: Chebyshev's lower bound on
    /// "not pruned", `max(1 − 2σ²/r², floor)` (Eq. 3). Clamped because the
    /// bound is vacuous for `r < σ√2`; the floor keeps the model monotone
    /// and usable for optimisation.
    pub fn survive_probability(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.05;
        }
        (1.0 - 2.0 * self.sigma * self.sigma / (r * r)).clamp(0.05, 1.0)
    }

    /// Estimated MRQ cost (device cycles, up to a constant) for node
    /// capacity `nc` and radius `r` — the paper's
    /// `Σ_i i²·⌈S_i/C⌉·log₂ Nc` with `S_i = min(Nc^i, n)·p^i` intermediate
    /// results, each paying one distance evaluation.
    pub fn mrq_cost(&self, nc: u32, r: f64) -> f64 {
        assert!(nc >= 2);
        let p = self.survive_probability(r);
        let c = f64::from(self.cores);
        let levels = (self.n as f64 + 1.0).log(f64::from(nc)).ceil().max(1.0) as u32;
        let mut cost = 0.0;
        let mut width = 1.0f64; // nodes at level i
        for i in 1..=levels {
            width = (width * f64::from(nc)).min(self.n as f64);
            let survivors = width * p.powi(i as i32);
            let work = survivors * self.distance_work;
            cost += f64::from(i) * f64::from(i) * (work / c).ceil() * f64::from(nc).log2();
        }
        cost
    }

    /// Estimated construction cost: `h` rounds of one distance pass plus one
    /// global sort — `O(⌈n/C⌉·log₂ n)` per level, `O(log³ n)` when `C ≈ n`
    /// (paper §4.5).
    pub fn construction_cost(&self, nc: u32) -> f64 {
        let c = f64::from(self.cores);
        let n = self.n as f64;
        let levels = (n + 1.0).log(f64::from(nc)).ceil().max(1.0);
        levels * ((n * self.distance_work / c).ceil() + (n / c).ceil() * n.log2().max(1.0))
    }

    /// Which §5.3 regime the configuration falls into.
    pub fn regime(&self) -> Regime {
        let n = self.n as f64;
        let c = f64::from(self.cores);
        if n < c / 4.0 {
            Regime::ComputeRich
        } else if n > c * 4.0 {
            Regime::ComputeBound
        } else {
            Regime::Balanced
        }
    }

    /// Largest query-batch size expected to descend a tree of height `h`
    /// and node capacity `nc` **without** triggering the two-stage memory
    /// strategy's query grouping, given `free_bytes` of device memory.
    ///
    /// Inverts the per-layer bound of §5.2
    /// (`size_limit = size_GPU / ((h − layer + 1)·Nc)`, the exact formula
    /// the search loops group against) using §5.3's Chebyshev survivor
    /// estimate for the expected per-query frontier at each layer:
    /// `E_i = min(Nc^(i−1), n)·p^(i−1)` entries, `p` the survive
    /// probability at radius `r`. The answer is
    /// `min_i ⌊size_limit(i) / E_i⌋`, floored at 1 — a single query is
    /// always admissible because grouping never splits one query's
    /// frontier.
    ///
    /// This is the **size trigger** of the `gts-service` microbatcher: an
    /// admission-side estimate (actual pruning can beat or miss the model,
    /// in which case the in-search grouping still guarantees progress), so
    /// it is a scheduling heuristic, never a correctness bound.
    pub fn max_batch_queries(&self, free_bytes: u64, nc: u32, h: u32, r: f64) -> usize {
        assert!(nc >= 2);
        let h = h.max(1); // a real tree is never flatter than one level
        let mut best = usize::MAX;
        for level in 1..=h {
            let limit = crate::search::layer_size_limit(free_bytes, h, level, nc);
            let expected = self.expected_frontier(nc, r, level);
            best = best.min(((limit as f64 / expected).floor() as usize).max(1));
        }
        best
    }

    /// Expected per-query frontier entries *entering* `level` (1-based):
    /// `max(min(Nc^(level−1), n)·p^(level−1), 1)` — the Chebyshev survivor
    /// estimate [`Self::max_batch_queries`] divides each layer bound by.
    /// Exposed on its own so the cost-model audit can hold the very same
    /// prediction against the survivors the engine actually observes.
    pub fn expected_frontier(&self, nc: u32, r: f64, level: u32) -> f64 {
        assert!(nc >= 2 && level >= 1);
        let p = self.survive_probability(r);
        let width = f64::from(nc).powi(level as i32 - 1).min(self.n as f64);
        (width * p.powi(level as i32 - 1)).max(1.0)
    }

    /// Recommend a node capacity from `candidates` (Table 3's sweep by
    /// default) for radius `r`, by minimising [`Self::mrq_cost`].
    pub fn recommend_nc(&self, r: f64, candidates: &[u32]) -> u32 {
        let cands: &[u32] = if candidates.is_empty() {
            &[10, 20, 40, 80, 160, 320]
        } else {
            candidates
        };
        *cands
            .iter()
            .min_by(|&&a, &&b| {
                self.mrq_cost(a, r)
                    .partial_cmp(&self.mrq_cost(b, r))
                    .expect("finite costs")
            })
            .expect("non-empty candidates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize) -> CostModel {
        CostModel {
            n,
            cores: 4352,
            sigma: 1.0,
            distance_work: 100.0,
        }
    }

    #[test]
    fn survive_probability_clamped_and_monotone() {
        let m = model(100_000);
        assert_eq!(m.survive_probability(0.0), 0.05);
        let p_small = m.survive_probability(1.0);
        let p_big = m.survive_probability(100.0);
        assert!(p_small <= p_big);
        assert!(p_big <= 1.0 && p_small >= 0.05);
    }

    #[test]
    fn regimes() {
        assert_eq!(model(100).regime(), Regime::ComputeRich);
        assert_eq!(model(10_000_000).regime(), Regime::ComputeBound);
        assert_eq!(model(4352).regime(), Regime::Balanced);
    }

    #[test]
    fn compute_bound_prefers_small_nc() {
        // n ≫ C with selective radius: pruning dominates, small Nc wins —
        // matching Fig. 6's empirical optimum at Nc = 10–20.
        let m = model(10_000_000);
        let nc = m.recommend_nc(1.8, &[10, 20, 40, 80, 160, 320]);
        assert!(nc <= 40, "expected small capacity, got {nc}");
    }

    #[test]
    fn cost_increases_with_n() {
        let small = model(10_000).mrq_cost(20, 2.0);
        let big = model(10_000_000).mrq_cost(20, 2.0);
        assert!(big > small);
    }

    #[test]
    fn construction_cost_scales_and_is_finite() {
        let m = model(1_000_000);
        let c10 = m.construction_cost(10);
        let c320 = m.construction_cost(320);
        assert!(c10.is_finite() && c320.is_finite());
        assert!(c10 > c320, "fewer levels with bigger fanout");
    }

    #[test]
    fn max_batch_queries_scales_with_memory_and_selectivity() {
        let m = model(100_000);
        let small = m.max_batch_queries(1 << 20, 20, 4, 2.0);
        let big = m.max_batch_queries(1 << 30, 20, 4, 2.0);
        assert!(big > small, "more free memory admits bigger batches");
        let selective = m.max_batch_queries(1 << 26, 20, 4, 1.5);
        let broad = m.max_batch_queries(1 << 26, 20, 4, 1_000.0);
        assert!(
            selective >= broad,
            "broad radii survive pruning and shrink the batch: {selective} < {broad}"
        );
        assert!(
            m.max_batch_queries(0, 20, 4, 2.0) >= 1,
            "a single query is always admissible"
        );
    }

    #[test]
    fn recommend_handles_empty_candidates() {
        let m = model(100_000);
        let nc = m.recommend_nc(2.0, &[]);
        assert!([10, 20, 40, 80, 160, 320].contains(&nc));
    }
}
