//! Dynamic updates (paper §4.4): the LSM-inspired cache table for streaming
//! inserts, tombstoned deletions, and rebuild-on-overflow.
//!
//! * **Insert**: `O(1)` — the object is appended to the cache list; queries
//!   scan the cache by brute force (it is tiny) and merge.
//! * **Delete**: `O(1)` — removed from the cache if present, otherwise the
//!   object's table-list slot is tombstoned.
//! * **Overflow / batch update**: the whole index is reconstructed with the
//!   parallel constructor — cheap on the device (`O(log³ n)` simulated), and
//!   rebuilding means updates never degrade search quality, the paper's
//!   central update claim.

/// The cache table: ids of inserted-but-not-yet-indexed objects plus a byte
/// budget (Table 5 sweeps 0.01 KB – 10 KB; ~5 KB is recommended).
#[derive(Clone, Debug)]
pub(crate) struct CacheTable {
    ids: Vec<u32>,
    bytes: usize,
    capacity: usize,
}

impl CacheTable {
    pub(crate) fn new(capacity: usize) -> CacheTable {
        CacheTable {
            ids: Vec::new(),
            bytes: 0,
            capacity,
        }
    }

    /// Record an insertion; returns `true` when the cache now exceeds its
    /// capacity and the index must rebuild.
    pub(crate) fn insert(&mut self, id: u32, obj_bytes: usize) -> bool {
        self.ids.push(id);
        self.bytes += obj_bytes + std::mem::size_of::<u32>();
        self.bytes > self.capacity
    }

    /// Remove an id if cached; returns whether it was present.
    pub(crate) fn remove(&mut self, id: u32, obj_bytes: usize) -> bool {
        if let Some(pos) = self.ids.iter().position(|&x| x == id) {
            self.ids.swap_remove(pos);
            self.bytes = self
                .bytes
                .saturating_sub(obj_bytes + std::mem::size_of::<u32>());
            true
        } else {
            false
        }
    }

    /// Ids currently buffered.
    pub(crate) fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of buffered insertions.
    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }

    /// Current byte occupancy.
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    /// Byte budget.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Empty the cache (after a rebuild absorbed its contents).
    pub(crate) fn clear(&mut self) {
        self.ids.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_detection() {
        let mut c = CacheTable::new(32);
        assert!(!c.insert(1, 10)); // 14 bytes
        assert!(!c.insert(2, 10)); // 28 bytes
        assert!(c.insert(3, 10), "42 > 32 must trigger rebuild");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn remove_only_cached_ids() {
        let mut c = CacheTable::new(1024);
        c.insert(7, 10);
        assert!(c.remove(7, 10));
        assert!(!c.remove(7, 10), "already gone");
        assert!(!c.remove(99, 10), "never cached");
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut c = CacheTable::new(8);
        c.insert(1, 100);
        c.clear();
        assert_eq!((c.len(), c.bytes()), (0, 0));
        assert_eq!(c.capacity(), 8);
    }
}
