//! Replicated shards: R identical copies of a [`ShardedGts`] on disjoint
//! device sets, with health-aware routing and fault-tolerant retry.
//!
//! Faiss-style GPU serving scales reads by *replicating* the index across
//! spare devices and routing each query batch to one replica;
//! [`ReplicatedShards`] brings that to the sharded GTS and makes device
//! failure a first-class, recoverable event instead of a poisoned executor:
//!
//! * **Deterministic placement** — replica `r` of an `S`-shard index owns
//!   pool devices `[r·S, (r+1)·S)`; shard `s` of replica `r` is pinned to
//!   device `r·S + s`. Placement is a pure function of `(S, R)`, so two
//!   builds over the same pool land identically.
//! * **Exactness** — replicas are built from the same objects with the
//!   same params and seed, so they are *identical* (asserted against the
//!   canonical snapshot in debug builds); any healthy replica answers any
//!   batch bit-identically to the single-replica path.
//! * **Routing** — a batch goes to the least-loaded fully-healthy replica
//!   (by per-device simulated clock, ties broken by replica index), with a
//!   caller-supplied *preferred set* so disjoint executor lanes can pin
//!   themselves to disjoint replicas and keep per-device clocks
//!   reproducible.
//! * **Retry with bounded budget** — a replica failing mid-batch (an
//!   injected [`DeviceFault`], a panicking user metric) is caught, counted,
//!   and the batch retries on a surviving replica; the attempt budget is
//!   `R + 2`, so a transient fault can retry its own replica once but a
//!   permanently dying fleet cannot loop forever.
//! * **Graceful degradation** — when no *fully* healthy replica remains,
//!   the batch drops to the per-shard degraded path: each shard is answered
//!   by any surviving copy of that shard across replicas, and the host
//!   merges exactly (same concat-sort / k-way merge as the sharded scatter,
//!   so answers stay bit-identical). Only when a shard's **last** copy is
//!   gone does the batch fail, fast, with
//!   [`ReplicaError::ShardUnavailable`].
//!
//! Health is two-tier. **Hard** health is device quarantine (a permanent
//! fault): quarantined devices are never selected again. **Soft** health is
//! a per-replica strike counter incremented by non-device panics: strikes
//! only *deprioritize* a replica in selection (and ban it for the rest of
//! the failing batch) — they never exclude it permanently, so a
//! deterministically poisoned query cannot brick a shard at R = 1.

use crate::params::GtsParams;
use crate::shard::{kway_merge, scoped_map, Applied, ShardedGts, UpdateOp};
use crate::stats::{ReplicaStats, StatsSnapshot};
use gpu_sim::fault::{DeviceFault, FaultKind};
use gpu_sim::DevicePool;
use metric_space::index::{sort_neighbors, IndexError, Neighbor};
use metric_space::{BatchMetric, Footprint};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Extra attempts beyond one-per-replica: lets a transient fault retry its
/// own (still healthy) replica without an unbounded loop.
const EXTRA_ATTEMPTS: usize = 2;

/// Errors surfaced by the replicated query path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicaError {
    /// The underlying index returned a typed error (OOM, unsupported, …).
    Index(IndexError),
    /// Every copy of this shard is on a quarantined device — the data is
    /// gone from the serving tier and requests over it fail fast.
    ShardUnavailable {
        /// The shard with no surviving copy.
        shard: u32,
    },
    /// The retry budget ran out while copies were still nominally healthy
    /// (e.g. every replica panicked on this batch's queries).
    AllReplicasFailed {
        /// The shard (or `u32::MAX` for a whole-batch failure) that
        /// exhausted its attempts.
        shard: u32,
    },
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Index(e) => write!(f, "index error: {e}"),
            ReplicaError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} has no surviving replica")
            }
            ReplicaError::AllReplicasFailed { shard } => {
                if *shard == u32::MAX {
                    write!(f, "retry budget exhausted across replicas")
                } else {
                    write!(f, "retry budget exhausted for shard {shard}")
                }
            }
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<IndexError> for ReplicaError {
    fn from(e: IndexError) -> Self {
        ReplicaError::Index(e)
    }
}

/// Outcome of running one replica call under `catch_unwind`.
enum Caught<T> {
    /// The call returned (successfully or with a typed index error).
    Done(T),
    /// An injected device fault fired.
    Fault(FaultKind),
    /// A non-device panic (user metric, logic bug) unwound out.
    Panic,
}

/// Run `f`, classifying a panic by its payload: [`DeviceFault`] payloads
/// are injected hardware faults, anything else is an ordinary panic.
fn classify<T>(f: impl FnOnce() -> T) -> Caught<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Caught::Done(v),
        Err(payload) => match payload.downcast_ref::<DeviceFault>() {
            Some(df) => Caught::Fault(df.kind),
            None => Caught::Panic,
        },
    }
}

/// R identical [`ShardedGts`] replicas on disjoint device sets, with
/// health-aware selection, bounded retry, and per-shard degradation.
pub struct ReplicatedShards<O, M> {
    /// Each replica behind its own lock: queries take shared read guards,
    /// serialized updates ([`ReplicatedShards::apply_preferring`]) take the
    /// write guard per replica — readers of a replica mid-update simply wait
    /// and are then served the *new* epoch (never a half-applied one).
    replicas: Vec<RwLock<ShardedGts<O, M>>>,
    /// Soft-health strikes per replica (panic history; deprioritizes).
    strikes: Vec<AtomicU64>,
    /// All devices across replicas (replica-major), for pool-wide spans.
    pool: DevicePool,
    shards: usize,
    retries: AtomicU64,
    device_faults: AtomicU64,
    metric_panics: AtomicU64,
    degraded_calls: AtomicU64,
}

impl<O, M> ReplicatedShards<O, M> {
    /// Shared read guard for replica `r`. Lock poisoning is ignored: a
    /// panicking batch is already caught and classified by the retry
    /// machinery, and the crash-consistency protocol keeps the index
    /// coherent across an unwound update (see [`ShardedGts::repair`]).
    fn rlock(&self, r: usize) -> RwLockReadGuard<'_, ShardedGts<O, M>> {
        self.replicas[r]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive write guard for replica `r` (same poisoning policy).
    fn wlock(&self, r: usize) -> RwLockWriteGuard<'_, ShardedGts<O, M>> {
        self.replicas[r]
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Fence every replica against *direct* mutation: while fenced, calling
    /// `insert`/`remove`/`batch_update` on a [`ShardedGts`] returns
    /// [`IndexError::Unsupported`]. The query service fences the index it
    /// serves so out-of-band writes cannot race its admission order; updates
    /// applied through [`ReplicatedShards::apply_preferring`] bypass the
    /// fence because they *are* the serialized order.
    pub fn fence_all(&self) {
        for r in 0..self.replicas.len() {
            self.wlock(r).fence();
        }
    }

    /// Release the direct-mutation fence on every replica (service
    /// shutdown hands the index back to the caller).
    pub fn release_all(&self) {
        for r in 0..self.replicas.len() {
            self.wlock(r).release_fence();
        }
    }

    /// Update epoch of the given replicas (all when empty): the **max**
    /// across the set, so a replica lagging behind after a permanent device
    /// loss does not hide progress — reads route around it, and healthy
    /// preferred replicas all agree by deterministic apply order.
    pub fn epoch_of(&self, prefer: &[usize]) -> u64 {
        let all: Vec<usize>;
        let set: &[usize] = if prefer.is_empty() {
            all = (0..self.replicas.len()).collect();
            &all
        } else {
            prefer
        };
        set.iter()
            .map(|&r| self.rlock(r).epoch())
            .max()
            .unwrap_or(0)
    }
}

impl<O, M> ReplicatedShards<O, M>
where
    O: Clone + Send + Sync + Footprint,
    M: BatchMetric<O> + Clone,
{
    /// Build `params.replicas` identical sharded indexes, replica `r` on
    /// pool devices `[r·S, (r+1)·S)`. The pool must supply
    /// `shards × replicas` devices. In debug builds the replicas are
    /// asserted identical (same snapshot bytes) — the invariant behind
    /// "any replica answers bit-identically".
    pub fn build(
        pool: &DevicePool,
        objects: Vec<O>,
        metric: M,
        params: GtsParams,
    ) -> Result<Self, IndexError> {
        let shards = params.shards as usize;
        let replicas = params.replicas as usize;
        assert!(
            pool.len() >= shards * replicas,
            "pool must supply shards × replicas devices ({} < {})",
            pool.len(),
            shards * replicas
        );
        // Build replicas sequentially (each build already parallelises
        // across its shards); deterministic placement r·S + s.
        let mut built: Vec<ShardedGts<O, M>> = Vec::with_capacity(replicas);
        for r in 0..replicas {
            let sub =
                DevicePool::from_devices(pool.devices()[r * shards..(r + 1) * shards].to_vec());
            built.push(ShardedGts::build(
                &sub,
                objects.clone(),
                metric.clone(),
                params,
            )?);
        }
        #[cfg(debug_assertions)]
        {
            let canon = built[0].snapshot();
            for (r, rep) in built.iter().enumerate().skip(1) {
                debug_assert_eq!(
                    rep.snapshot(),
                    canon,
                    "replica {r} diverged from replica 0 at build time"
                );
            }
        }
        Ok(Self::from_replicas(built))
    }

    /// Wrap existing replicas (e.g. a single [`ShardedGts`] as R = 1, the
    /// service's compatibility path). All replicas must have the same shard
    /// count and length; the caller vouches they hold identical data. Takes
    /// the indexes by value — once wrapped, mutation flows through
    /// [`ReplicatedShards::apply_preferring`] (or the per-replica locks),
    /// never through a retained outside handle.
    pub fn from_replicas(replicas: Vec<ShardedGts<O, M>>) -> Self {
        assert!(!replicas.is_empty(), "need at least one replica");
        let shards = replicas[0].num_shards();
        for rep in &replicas[1..] {
            assert_eq!(rep.num_shards(), shards, "replicas must share topology");
            assert_eq!(
                metric_space::index::SimilarityIndex::len(rep),
                metric_space::index::SimilarityIndex::len(&replicas[0]),
                "replicas must hold the same objects"
            );
        }
        let devices: Vec<_> = replicas
            .iter()
            .flat_map(|rep| rep.pool().devices().iter().cloned())
            .collect();
        let strikes = (0..replicas.len()).map(|_| AtomicU64::new(0)).collect();
        ReplicatedShards {
            strikes,
            pool: DevicePool::from_devices(devices),
            shards,
            replicas: replicas.into_iter().map(RwLock::new).collect(),
            retries: AtomicU64::new(0),
            device_faults: AtomicU64::new(0),
            metric_panics: AtomicU64::new(0),
            degraded_calls: AtomicU64::new(0),
        }
    }

    // -- topology & health --------------------------------------------------

    /// Number of replicas.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Number of shards (identical across replicas).
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Replica `r`'s sharded index behind its lock (e.g. for stats,
    /// snapshots, or direct comparison — `replica(r).read()`). While a
    /// query service owns this set the index is fenced, so a write guard
    /// taken here can observe but not mutate it.
    pub fn replica(&self, r: usize) -> &RwLock<ShardedGts<O, M>> {
        &self.replicas[r]
    }

    /// Every device across all replicas, replica-major — the failure-domain
    /// view ([`aggregate`](DevicePool::aggregate) reports quarantines).
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// Objects indexed (any replica; they are identical).
    pub fn len(&self) -> usize {
        metric_space::index::SimilarityIndex::len(&*self.rlock(0))
    }

    /// True when no objects are indexed (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Devices of replica `r` (a replica-major slice of the flat pool —
    /// the device `Arc`s are shared with the replica's own sub-pool, so no
    /// lock is needed to read health or clocks).
    fn replica_devices(&self, r: usize) -> &[std::sync::Arc<gpu_sim::Device>] {
        &self.pool.devices()[r * self.shards..(r + 1) * self.shards]
    }

    /// True when every device of replica `r` is healthy (the whole-replica
    /// fast path requires all shards of one replica).
    pub fn replica_fully_healthy(&self, r: usize) -> bool {
        self.replica_devices(r).iter().all(|d| d.is_healthy())
    }

    /// True when replica `r`'s copy of shard `s` sits on a healthy device.
    pub fn shard_copy_healthy(&self, r: usize, s: usize) -> bool {
        self.pool.get(r * self.shards + s).is_healthy()
    }

    /// True when at least one replica still holds a healthy copy of shard
    /// `s`; false means requests over `s` fail fast with
    /// [`ReplicaError::ShardUnavailable`].
    pub fn shard_alive(&self, s: usize) -> bool {
        (0..self.replicas.len()).any(|r| self.shard_copy_healthy(r, s))
    }

    /// Health and retry counters (see [`ReplicaStats`]).
    pub fn replica_stats(&self) -> ReplicaStats {
        ReplicaStats {
            replicas: self.replicas.len(),
            healthy_replicas: (0..self.replicas.len())
                .filter(|&r| self.replica_fully_healthy(r))
                .count(),
            dead_shards: (0..self.shards).filter(|&s| !self.shard_alive(s)).count(),
            retries: self.retries.load(Ordering::Relaxed),
            device_faults: self.device_faults.load(Ordering::Relaxed),
            metric_panics: self.metric_panics.load(Ordering::Relaxed),
            degraded_calls: self.degraded_calls.load(Ordering::Relaxed),
            strikes: self
                .strikes
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Aggregate search counters across replicas (sums; R = 1 equals the
    /// wrapped index's own stats).
    pub fn stats(&self) -> StatsSnapshot {
        (0..self.replicas.len())
            .map(|r| self.rlock(r).stats())
            .fold(StatsSnapshot::default(), StatsSnapshot::combine)
    }

    /// Reset search counters on every replica.
    pub fn reset_stats(&self) {
        for r in 0..self.replicas.len() {
            self.rlock(r).reset_stats();
        }
    }

    /// Folded cost-model audit across every replica's shards (see
    /// [`ShardedGts::cost_audit`](crate::ShardedGts::cost_audit)).
    pub fn cost_audit(&self) -> crate::audit::CostAuditSnapshot {
        (0..self.replicas.len())
            .map(|r| self.rlock(r).cost_audit())
            .fold(crate::audit::CostAuditSnapshot::default(), |a, b| {
                a.combine(b)
            })
    }

    /// Enable or disable the cost-model audit on every replica.
    pub fn set_cost_audit_enabled(&self, on: bool) {
        for r in 0..self.replicas.len() {
            self.rlock(r).set_cost_audit_enabled(on);
        }
    }

    /// Critical path across **all** replica devices (max per-device clock).
    pub fn span_cycles(&self) -> u64 {
        self.pool.aggregate().span_cycles
    }

    /// Critical path over the devices of the given replicas only — lets an
    /// executor lane pinned to a disjoint replica set measure its own
    /// batches without racing sibling lanes. An empty set means all.
    pub fn span_of(&self, replicas: &[usize]) -> u64 {
        if replicas.is_empty() {
            return self.span_cycles();
        }
        replicas
            .iter()
            .flat_map(|&r| self.replica_devices(r))
            .map(|d| d.cycles())
            .max()
            .unwrap_or(0)
    }

    /// Global batch sizing, delegated to replica 0 (replicas are identical,
    /// so its cost model speaks for all; sampling kernels charge replica
    /// 0's devices).
    pub fn max_batch_queries(&self, radius: f64, samples: usize, seed: u64) -> usize {
        self.rlock(0).max_batch_queries(radius, samples, seed)
    }

    // -- selection ----------------------------------------------------------

    /// Current load of replica `r`: the max simulated clock across its
    /// devices (a batch occupies the whole replica).
    fn replica_load(&self, r: usize) -> u64 {
        self.replica_devices(r)
            .iter()
            .map(|d| d.cycles())
            .max()
            .unwrap_or(0)
    }

    /// Pick the best replica among `candidates`: restrict to the preferred
    /// set when it still holds a candidate, then order by (soft-health
    /// strikes, load, replica index). Deterministic given device clocks.
    fn pick(&self, candidates: &[usize], prefer: &[usize]) -> Option<usize> {
        let preferred: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|r| prefer.contains(r))
            .collect();
        let pool = if preferred.is_empty() {
            candidates
        } else {
            &preferred
        };
        pool.iter().copied().min_by_key(|&r| {
            (
                self.strikes[r].load(Ordering::Relaxed),
                self.replica_load(r),
                r,
            )
        })
    }

    // -- query path ---------------------------------------------------------

    /// Batched range query over any healthy replica (bit-identical to the
    /// single-replica answer); see [`ReplicatedShards::batch_knn`] for the
    /// routing rules.
    pub fn batch_range(
        &self,
        queries: &[O],
        radii: &[f64],
    ) -> Result<Vec<Vec<Neighbor>>, ReplicaError> {
        self.batch_range_preferring(&[], queries, radii)
    }

    /// [`ReplicatedShards::batch_range`] preferring the given replicas
    /// (an executor lane's pinned set; falls back to any healthy replica).
    pub fn batch_range_preferring(
        &self,
        prefer: &[usize],
        queries: &[O],
        radii: &[f64],
    ) -> Result<Vec<Vec<Neighbor>>, ReplicaError> {
        assert_eq!(queries.len(), radii.len());
        if let Some(res) = self.try_whole(prefer, |rep| rep.batch_range(queries, radii)) {
            return res;
        }
        let per_shard = self.try_per_shard(prefer, |rep, s| rep.shard_range(s, queries, radii))?;
        let mut merged: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        for lists in per_shard {
            for (m, mut list) in merged.iter_mut().zip(lists) {
                m.append(&mut list);
            }
        }
        for m in &mut merged {
            sort_neighbors(m);
        }
        Ok(merged)
    }

    /// Batched kNN over any healthy replica. Fast path: the whole batch on
    /// the least-loaded fully-healthy replica (keeps the cross-shard bound
    /// broadcast intact). Failures retry per the module rules; with no
    /// fully-healthy replica left, the degraded per-shard path composes the
    /// answer from surviving shard copies and k-way-merges exactly.
    pub fn batch_knn(&self, queries: &[O], k: usize) -> Result<Vec<Vec<Neighbor>>, ReplicaError> {
        self.batch_knn_preferring(&[], queries, k)
    }

    /// [`ReplicatedShards::batch_knn`] preferring the given replicas.
    pub fn batch_knn_preferring(
        &self,
        prefer: &[usize],
        queries: &[O],
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>, ReplicaError> {
        if let Some(res) = self.try_whole(prefer, |rep| rep.batch_knn(queries, k)) {
            return res;
        }
        let per_shard = self.try_per_shard(prefer, |rep, s| rep.shard_knn(s, queries, k))?;
        Ok((0..queries.len())
            .map(|q| {
                let lists: Vec<Vec<Neighbor>> =
                    per_shard.iter().map(|lists| lists[q].clone()).collect();
                kway_merge(&lists, k)
            })
            .collect())
    }

    // -- update path --------------------------------------------------------

    /// Apply one serialized update to **every** replica of the preferred
    /// set (all replicas when empty), in replica order, each under its
    /// write lock. Unlike queries — which any one replica can answer —
    /// updates must reach every copy, and in the *same order on each*, so
    /// identical replicas stay identical and converge to the same epoch.
    ///
    /// Fault handling per replica: an injected [`DeviceFault`] (or a
    /// panicking user metric) unwinding out of
    /// [`apply`](ShardedGts::apply) leaves the host state fully mutated
    /// and a receipt staged; the deterministic
    /// [`repair`](ShardedGts::repair) is then driven to completion within
    /// the `1 + EXTRA_ATTEMPTS` budget (each attempt counted as a retry).
    /// A replica whose budget is exhausted — only possible under a
    /// *permanent* device loss — is left at its previous epoch; reads
    /// already route around it via the health filters, and
    /// [`ReplicatedShards::epoch_of`] takes the max so the lag is not
    /// observable through the service.
    ///
    /// Returns the receipt of the last replica that completed (replicas
    /// apply deterministically, so all completed receipts are identical),
    /// or the first error in replica order.
    pub fn apply_preferring(
        &self,
        prefer: &[usize],
        op: &UpdateOp<O>,
    ) -> Result<Applied, ReplicaError> {
        let all: Vec<usize>;
        let targets: &[usize] = if prefer.is_empty() {
            all = (0..self.replicas.len()).collect();
            &all
        } else {
            prefer
        };
        let mut last_ok: Option<Applied> = None;
        let mut first_err: Option<ReplicaError> = None;
        for &r in targets {
            let mut rep = self.wlock(r);
            let mut outcome: Option<Result<Applied, IndexError>> = None;
            match classify(|| rep.apply(op)) {
                Caught::Done(res) => outcome = Some(res),
                Caught::Fault(_) => {
                    self.device_faults.fetch_add(1, Ordering::Relaxed);
                }
                Caught::Panic => {
                    self.metric_panics.fetch_add(1, Ordering::Relaxed);
                    self.strikes[r].fetch_add(1, Ordering::Relaxed);
                }
            }
            // A fault mid-apply: drive the staged repair to completion,
            // retrying when the repair itself is struck again.
            if outcome.is_none() {
                for _ in 0..=EXTRA_ATTEMPTS {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    match classify(|| rep.repair(op)) {
                        Caught::Done(res) => {
                            outcome = Some(res);
                            break;
                        }
                        Caught::Fault(_) => {
                            self.device_faults.fetch_add(1, Ordering::Relaxed);
                        }
                        Caught::Panic => {
                            self.metric_panics.fetch_add(1, Ordering::Relaxed);
                            self.strikes[r].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            match outcome {
                Some(Ok(applied)) => last_ok = Some(applied),
                Some(Err(e)) => {
                    first_err.get_or_insert(ReplicaError::Index(e));
                }
                None => {
                    first_err.get_or_insert(ReplicaError::AllReplicasFailed { shard: u32::MAX });
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(last_ok.expect("targets is never empty")),
        }
    }

    // -- tracing ------------------------------------------------------------

    /// The trace recorder attached to any of this index's devices (tracing
    /// is attached pool-wide, so the first hit is authoritative).
    fn tracer(&self) -> Option<(std::sync::Arc<gts_trace::TraceRecorder>, u32)> {
        (0..self.replicas.len()).find_map(|r| {
            self.rlock(r)
                .pool()
                .devices()
                .iter()
                .find_map(|d| d.tracer())
        })
    }

    /// Record one replica-layer instant (retry, degradation, dead shard),
    /// stamped at replica `r`'s current critical path. Observational only;
    /// called exclusively on failure paths, so the healthy fast path never
    /// pays the device scan.
    fn trace_instant(&self, r: usize, kind: gts_trace::EventKind) {
        let Some((rec, _)) = self.tracer() else {
            return;
        };
        let at = self
            .rlock(r)
            .pool()
            .devices()
            .iter()
            .map(|d| d.cycles())
            .max()
            .unwrap_or(0);
        let mut ctx = gts_trace::current_ctx();
        ctx.replica = Some(r as u32);
        rec.record(gts_trace::TraceEvent::instant(kind, ctx, None, at));
    }

    // -- retry machinery ----------------------------------------------------

    /// The whole-replica fast path: route the batch to one fully-healthy
    /// replica, retrying on fault/panic within the attempt budget. Returns
    /// `None` when no fully-healthy candidate remains (degrade), `Some`
    /// with the outcome otherwise.
    fn try_whole(
        &self,
        prefer: &[usize],
        call: impl Fn(&ShardedGts<O, M>) -> Result<Vec<Vec<Neighbor>>, IndexError>,
    ) -> Option<Result<Vec<Vec<Neighbor>>, ReplicaError>> {
        let mut banned = vec![false; self.replicas.len()];
        let budget = self.replicas.len() + EXTRA_ATTEMPTS;
        let mut first_attempt = true;
        for _ in 0..budget {
            let candidates: Vec<usize> = (0..self.replicas.len())
                .filter(|&r| !banned[r] && self.replica_fully_healthy(r))
                .collect();
            let Some(r) = self.pick(&candidates, prefer) else {
                // No fully-healthy replica (left): degrade. Retries already
                // burned are counted; the degraded path has its own budget.
                return None;
            };
            if !first_attempt {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            first_attempt = false;
            match classify(|| {
                let mut ctx = gts_trace::current_ctx();
                ctx.replica = Some(r as u32);
                let _scope = gts_trace::scoped_ctx(ctx);
                call(&self.rlock(r))
            }) {
                Caught::Done(res) => return Some(res.map_err(ReplicaError::Index)),
                Caught::Fault(kind) => {
                    self.device_faults.fetch_add(1, Ordering::Relaxed);
                    // Transient: the fault disarmed itself, the replica
                    // stays a candidate and the retry will succeed.
                    // Permanent: the device is quarantined, so the
                    // fully-healthy filter drops the replica next round.
                    let _ = kind;
                    self.trace_instant(
                        r,
                        gts_trace::EventKind::ReplicaRetry {
                            cause: gts_trace::RetryCause::DeviceFault,
                        },
                    );
                }
                Caught::Panic => {
                    self.metric_panics.fetch_add(1, Ordering::Relaxed);
                    self.strikes[r].fetch_add(1, Ordering::Relaxed);
                    banned[r] = true;
                    self.trace_instant(
                        r,
                        gts_trace::EventKind::ReplicaRetry {
                            cause: gts_trace::RetryCause::Panic,
                        },
                    );
                }
            }
        }
        Some(Err(ReplicaError::AllReplicasFailed { shard: u32::MAX }))
    }

    /// The degraded path: answer each shard from any surviving copy across
    /// replicas (concurrently, one host thread per shard), with the same
    /// classify/retry/ban discipline per shard. Errors rank: a dead shard
    /// reports [`ReplicaError::ShardUnavailable`]; the first failing shard
    /// (in shard order) decides the batch's error.
    fn try_per_shard(
        &self,
        prefer: &[usize],
        call: impl Fn(&ShardedGts<O, M>, usize) -> Result<Vec<Vec<Neighbor>>, IndexError> + Sync,
    ) -> Result<Vec<Vec<Vec<Neighbor>>>, ReplicaError> {
        self.degraded_calls.fetch_add(1, Ordering::Relaxed);
        self.trace_instant(0, gts_trace::EventKind::Degraded);
        let call = &call;
        let results: Vec<Result<Vec<Vec<Neighbor>>, ReplicaError>> =
            scoped_map((0..self.shards).collect(), |_, s| {
                let mut banned = vec![false; self.replicas.len()];
                let budget = self.replicas.len() + EXTRA_ATTEMPTS;
                let mut first_attempt = true;
                for _ in 0..budget {
                    let candidates: Vec<usize> = (0..self.replicas.len())
                        .filter(|&r| !banned[r] && self.shard_copy_healthy(r, s))
                        .collect();
                    let Some(r) = self.pick(&candidates, prefer) else {
                        return Err(if self.shard_alive(s) {
                            ReplicaError::AllReplicasFailed { shard: s as u32 }
                        } else {
                            if let Some((rec, _)) = self.tracer() {
                                rec.record(gts_trace::TraceEvent::instant(
                                    gts_trace::EventKind::ShardUnavailable { shard: s as u32 },
                                    gts_trace::current_ctx(),
                                    None,
                                    0,
                                ));
                                rec.flight_dump(gts_trace::DumpReason::ShardUnavailable);
                            }
                            ReplicaError::ShardUnavailable { shard: s as u32 }
                        });
                    };
                    if !first_attempt {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                    }
                    first_attempt = false;
                    match classify(|| {
                        let mut ctx = gts_trace::current_ctx();
                        ctx.replica = Some(r as u32);
                        let _scope = gts_trace::scoped_ctx(ctx);
                        call(&self.rlock(r), s)
                    }) {
                        Caught::Done(res) => return res.map_err(ReplicaError::Index),
                        Caught::Fault(_) => {
                            self.device_faults.fetch_add(1, Ordering::Relaxed);
                            self.trace_instant(
                                r,
                                gts_trace::EventKind::ReplicaRetry {
                                    cause: gts_trace::RetryCause::DeviceFault,
                                },
                            );
                        }
                        Caught::Panic => {
                            self.metric_panics.fetch_add(1, Ordering::Relaxed);
                            self.strikes[r].fetch_add(1, Ordering::Relaxed);
                            banned[r] = true;
                            self.trace_instant(
                                r,
                                gts_trace::EventKind::ReplicaRetry {
                                    cause: gts_trace::RetryCause::Panic,
                                },
                            );
                        }
                    }
                }
                Err(ReplicaError::AllReplicasFailed { shard: s as u32 })
            });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::fault::FaultPlan;
    use metric_space::{DatasetKind, Item, ItemMetric};

    fn data(n: usize) -> (Vec<Item>, ItemMetric) {
        let d = DatasetKind::Words.generate(n, 33);
        (d.items, d.metric)
    }

    fn replicated(
        n: usize,
        shards: u32,
        replicas: u32,
    ) -> (Vec<Item>, DevicePool, ReplicatedShards<Item, ItemMetric>) {
        let (items, metric) = data(n);
        let pool = DevicePool::rtx_2080_ti((shards * replicas) as usize);
        let idx = ReplicatedShards::build(
            &pool,
            items.clone(),
            metric,
            GtsParams::default()
                .with_shards(shards)
                .with_replicas(replicas),
        )
        .expect("build");
        (items, pool, idx)
    }

    #[test]
    fn replicas_answer_bit_identically_to_single_replica() {
        let (items, _, idx) = replicated(300, 2, 2);
        let (items1, metric1) = data(300);
        assert_eq!(items, items1);
        let single = ShardedGts::build(
            &DevicePool::rtx_2080_ti(2),
            items1,
            metric1,
            GtsParams::default().with_shards(2),
        )
        .expect("build");
        let queries: Vec<Item> = (0..12).map(|i| items[i * 19].clone()).collect();
        let radii = vec![2.0; queries.len()];
        assert_eq!(
            idx.batch_range(&queries, &radii).expect("mrq"),
            single.batch_range(&queries, &radii).expect("mrq"),
        );
        assert_eq!(
            idx.batch_knn(&queries, 6).expect("knn"),
            single.batch_knn(&queries, 6).expect("knn"),
        );
        assert_eq!(idx.num_replicas(), 2);
        assert_eq!(idx.num_shards(), 2);
        assert_eq!(idx.len(), 300);
    }

    #[test]
    fn routing_prefers_the_pinned_set_and_balances_by_clock() {
        let (items, _, idx) = replicated(200, 2, 2);
        let queries: Vec<Item> = items[..4].to_vec();
        // Pin to replica 1: only its devices' clocks move.
        let before0 = idx.span_of(&[0]);
        idx.batch_knn_preferring(&[1], &queries, 3).expect("knn");
        assert_eq!(idx.span_of(&[0]), before0, "replica 0 untouched");
        assert!(idx.span_of(&[1]) > 0, "replica 1 did the work");
        // Unpinned: the less-loaded replica (0) is selected.
        idx.batch_knn(&queries, 3).expect("knn");
        assert!(idx.span_of(&[0]) > before0, "least-loaded replica selected");
    }

    #[test]
    fn transient_fault_retries_and_stays_exact() {
        let (items, pool, idx) = replicated(200, 2, 2);
        let queries: Vec<Item> = items[..6].to_vec();
        let clean = idx.batch_knn(&queries, 5).expect("fault-free");
        // The clean batch loaded replica 0, so the next batch routes to
        // replica 1 (devices 2..4) — arm the fault in its path.
        FaultPlan::new()
            .fail_device(2, 1, gpu_sim::FaultKind::Transient)
            .arm(&pool);
        let answers = idx.batch_knn(&queries, 5).expect("retried");
        assert_eq!(answers, clean, "retry reproduces the exact answer");
        let rs = idx.replica_stats();
        assert_eq!(rs.device_faults, 1);
        assert!(rs.retries >= 1);
        assert_eq!(rs.metric_panics, 0);
        assert_eq!(rs.healthy_replicas, 2, "transient faults don't quarantine");
    }

    #[test]
    fn permanent_fault_fails_over_to_the_surviving_replica() {
        let (items, pool, idx) = replicated(200, 2, 2);
        let queries: Vec<Item> = items[..6].to_vec();
        let clean = idx.batch_knn(&queries, 5).expect("fault-free");
        // The clean batch loaded replica 0, so the next batch routes to
        // replica 1 — kill its shard-0 device permanently mid-batch.
        FaultPlan::new()
            .fail_device(2, 1, gpu_sim::FaultKind::Permanent)
            .arm(&pool);
        let answers = idx.batch_knn(&queries, 5).expect("failover");
        assert_eq!(answers, clean, "survivor answers bit-identically");
        let rs = idx.replica_stats();
        assert_eq!(rs.healthy_replicas, 1);
        assert_eq!(rs.dead_shards, 0, "replica 1 still covers every shard");
        assert!(rs.device_faults >= 1);
        // Further batches route straight to the survivor (no new retries).
        let retries_before = idx.replica_stats().retries;
        idx.batch_knn(&queries, 5).expect("steady state");
        assert_eq!(idx.replica_stats().retries, retries_before);
    }

    #[test]
    fn degraded_path_composes_from_surviving_shard_copies() {
        let (items, pool, idx) = replicated(240, 2, 2);
        let queries: Vec<Item> = items[..6].to_vec();
        let radii = vec![2.0; queries.len()];
        let clean_r = idx.batch_range(&queries, &radii).expect("fault-free");
        let clean_k = idx.batch_knn(&queries, 5).expect("fault-free");
        // Kill shard 0 of replica 0 and shard 1 of replica 1: no replica is
        // fully healthy, but every shard has a surviving copy.
        pool.get(0).quarantine(); // replica 0, shard 0
        pool.get(3).quarantine(); // replica 1, shard 1
        let degraded_r = idx.batch_range(&queries, &radii).expect("degraded");
        let degraded_k = idx.batch_knn(&queries, 5).expect("degraded");
        assert_eq!(degraded_r, clean_r, "degraded range is still exact");
        assert_eq!(degraded_k, clean_k, "degraded knn is still exact");
        let rs = idx.replica_stats();
        assert_eq!(rs.healthy_replicas, 0);
        assert_eq!(rs.dead_shards, 0);
        assert_eq!(rs.degraded_calls, 2);
    }

    #[test]
    fn dead_shard_fails_fast_with_shard_unavailable() {
        let (items, pool, idx) = replicated(240, 2, 2);
        // Kill BOTH copies of shard 1 (devices 1 and 3).
        pool.get(1).quarantine();
        pool.get(3).quarantine();
        let queries: Vec<Item> = items[..4].to_vec();
        let err = idx.batch_knn(&queries, 5).expect_err("shard 1 is gone");
        assert_eq!(err, ReplicaError::ShardUnavailable { shard: 1 });
        let rs = idx.replica_stats();
        assert_eq!(rs.dead_shards, 1);
    }

    /// A metric that panics when it touches the poisoned query string —
    /// standing in for any misbehaving user metric (NaNs, assertions).
    #[derive(Clone, Copy)]
    struct PanicOnBoom;

    impl metric_space::Metric<Item> for PanicOnBoom {
        fn distance(&self, a: &Item, b: &Item) -> f64 {
            let (Some(a), Some(b)) = (a.as_text(), b.as_text()) else {
                panic!("text metric")
            };
            assert!(a != "boom" && b != "boom", "boom");
            (a.len() as f64 - b.len() as f64).abs()
        }
        fn work(&self, _: &Item, _: &Item) -> u64 {
            1
        }
        fn name(&self) -> &'static str {
            "panic-on-boom"
        }
    }
    impl metric_space::BatchMetric<Item> for PanicOnBoom {}

    #[test]
    fn panicking_metric_bans_for_the_batch_but_never_permanently() {
        // A deterministic poison: the metric panics on the query "boom" on
        // EVERY replica, so the batch must fail typed — but the next,
        // clean batch must succeed (strikes deprioritize, never exclude).
        let items: Vec<Item> = (0..120).map(|i| Item::text("x".repeat(i % 30))).collect();
        let pool = DevicePool::rtx_2080_ti(4);
        let idx = ReplicatedShards::build(
            &pool,
            items.clone(),
            PanicOnBoom,
            GtsParams::default().with_shards(2).with_replicas(2),
        )
        .expect("build never sees the poisoned query");
        let err = idx
            .batch_knn(&[Item::text("boom")], 3)
            .expect_err("every replica panics on the poison");
        assert!(
            matches!(err, ReplicaError::AllReplicasFailed { .. }),
            "typed failure, not a propagated panic: {err:?}"
        );
        let rs = idx.replica_stats();
        assert!(rs.metric_panics >= 2, "both replicas struck");
        assert_eq!(rs.healthy_replicas, 2, "panics never quarantine devices");
        // The service stays live: a clean batch right after succeeds.
        let ok = idx.batch_knn(&[Item::text("xxx")], 3).expect("clean batch");
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn stats_and_spans_aggregate_across_replicas() {
        let (items, _, idx) = replicated(200, 2, 2);
        idx.batch_knn(&items[..4], 3).expect("knn");
        let total = idx.stats();
        assert!(total.distance_computations > 0);
        assert!(idx.span_cycles() >= idx.span_of(&[0]).min(idx.span_of(&[1])));
        idx.reset_stats();
        assert_eq!(idx.stats(), StatsSnapshot::default());
        // Sizing is deterministic and delegates to replica 0.
        assert_eq!(
            idx.max_batch_queries(2.0, 64, 7),
            idx.replica(0).read().unwrap().max_batch_queries(2.0, 64, 7)
        );
    }

    #[test]
    fn apply_reaches_every_replica_and_converges_epochs() {
        let (items, _, idx) = replicated(200, 2, 2);
        assert_eq!(idx.epoch_of(&[]), 0);
        let ack = idx
            .apply_preferring(&[], &UpdateOp::Insert(Item::text("fresh")))
            .expect("insert");
        assert_eq!(ack.epoch, 1);
        assert_eq!(ack.assigned, vec![200]);
        let ack = idx
            .apply_preferring(&[], &UpdateOp::Remove(3))
            .expect("remove");
        assert_eq!(ack.epoch, 2);
        assert_eq!(ack.removed, 1);
        // Both replicas applied both updates in the same order: identical
        // epochs, identical snapshots, identical answers.
        for r in 0..2 {
            assert_eq!(idx.replica(r).read().unwrap().epoch(), 2);
        }
        assert_eq!(
            idx.replica(0).read().unwrap().snapshot(),
            idx.replica(1).read().unwrap().snapshot(),
        );
        let queries: Vec<Item> = items[..4].to_vec();
        let a = idx.batch_knn_preferring(&[0], &queries, 4).expect("knn");
        let b = idx.batch_knn_preferring(&[1], &queries, 4).expect("knn");
        assert_eq!(a, b, "replicas answer identically after updates");
        assert_eq!(idx.epoch_of(&[0]), idx.epoch_of(&[1]));
    }

    #[test]
    fn fence_rejects_direct_mutation_but_not_serialized_applies() {
        use metric_space::index::DynamicIndex;
        let (_, _, idx) = replicated(120, 1, 2);
        idx.fence_all();
        let err = idx
            .replica(0)
            .write()
            .unwrap()
            .insert(Item::text("smuggled"))
            .expect_err("fenced index rejects direct mutation");
        assert!(matches!(err, IndexError::Unsupported(_)));
        // The serialized path bypasses the fence — it IS the apply order.
        idx.apply_preferring(&[], &UpdateOp::Insert(Item::text("routed")))
            .expect("serialized apply works while fenced");
        assert_eq!(idx.epoch_of(&[]), 1);
        idx.release_all();
        idx.replica(0)
            .write()
            .unwrap()
            .insert(Item::text("direct"))
            .expect("released fence allows direct mutation again");
    }

    #[test]
    fn transient_fault_during_apply_repairs_and_stays_converged() {
        let (_, pool, idx) = replicated(200, 2, 2);
        // Strike replica 1's shard-0 device on its next kernel: the apply
        // broadcast hits replica 0 first (clean), then replica 1 faults on
        // the tombstone scan kernel mid-apply and must repair. (A remove, not
        // an insert: a non-overflowing insert launches no kernel at all.)
        FaultPlan::new()
            .fail_device(2, 1, gpu_sim::FaultKind::Transient)
            .arm(&pool);
        let ack = idx
            .apply_preferring(&[], &UpdateOp::Remove(0))
            .expect("remove repaired");
        assert_eq!(ack.epoch, 1);
        assert_eq!(ack.removed, 1);
        let rs = idx.replica_stats();
        assert!(rs.device_faults >= 1, "the fault fired");
        assert!(rs.retries >= 1, "repair counted as a retry");
        assert_eq!(idx.replica(0).read().unwrap().epoch(), 1);
        assert_eq!(idx.replica(1).read().unwrap().epoch(), 1);
        assert_eq!(
            idx.replica(0).read().unwrap().snapshot(),
            idx.replica(1).read().unwrap().snapshot(),
            "repaired replica is bit-identical to the clean one"
        );
    }
}
