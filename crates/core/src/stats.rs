//! Search statistics, for tests, ablations, and the experiment reports.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated over the lifetime of an index (reset explicitly).
#[derive(Debug, Default)]
pub struct SearchStats {
    /// Real metric-distance evaluations performed.
    pub distance_computations: AtomicU64,
    /// Tree nodes pruned by Lemma 5.1/5.2 ring tests.
    pub nodes_pruned: AtomicU64,
    /// Tree nodes expanded (survived pruning).
    pub nodes_expanded: AtomicU64,
    /// Leaf table entries skipped by the stored-distance filter.
    pub leaf_filtered: AtomicU64,
    /// Leaf table entries verified with a real distance computation.
    pub leaf_verified: AtomicU64,
    /// Leaf verifications abandoned early by the bounded (banded) kernel:
    /// the evaluation proved `d > bound` without finishing the full DP
    /// ([`GtsParams::bounded_verification`](crate::GtsParams)). A subset of
    /// `leaf_verified` — abandoned entries still paid (banded) distance
    /// work.
    pub leaf_abandoned: AtomicU64,
    /// Query groups formed by the two-stage memory strategy.
    pub groups_formed: AtomicU64,
    /// Largest intermediate frontier (entries) seen.
    pub max_frontier: AtomicU64,
    /// Per-query bound tightenings received from the cross-shard kNN bound
    /// broadcast ([`GtsParams::bound_broadcast`](crate::GtsParams)): counted
    /// once per `(query, level)` where the injected global bound was
    /// strictly tighter than this shard's own effective bound. Always zero
    /// on a single-device index and with broadcast off.
    pub broadcast_tightened: AtomicU64,
}

impl SearchStats {
    /// Reset all counters to zero.
    pub fn reset(&self) {
        for c in [
            &self.distance_computations,
            &self.nodes_pruned,
            &self.nodes_expanded,
            &self.leaf_filtered,
            &self.leaf_verified,
            &self.leaf_abandoned,
            &self.groups_formed,
            &self.max_frontier,
            &self.broadcast_tightened,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Plain-value snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            distance_computations: self.distance_computations.load(Ordering::Relaxed),
            nodes_pruned: self.nodes_pruned.load(Ordering::Relaxed),
            nodes_expanded: self.nodes_expanded.load(Ordering::Relaxed),
            leaf_filtered: self.leaf_filtered.load(Ordering::Relaxed),
            leaf_verified: self.leaf_verified.load(Ordering::Relaxed),
            leaf_abandoned: self.leaf_abandoned.load(Ordering::Relaxed),
            groups_formed: self.groups_formed.load(Ordering::Relaxed),
            max_frontier: self.max_frontier.load(Ordering::Relaxed),
            broadcast_tightened: self.broadcast_tightened.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn max(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_max(v, Ordering::Relaxed);
    }
}

/// Health and retry counters of a
/// [`ReplicatedShards`](crate::replica::ReplicatedShards) — the replication
/// companion to [`StatsSnapshot`] (which counts search work, not failures).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Configured replicas.
    pub replicas: usize,
    /// Replicas whose devices are all currently healthy.
    pub healthy_replicas: usize,
    /// Shards with no healthy copy left on any replica — their requests
    /// fail fast with `ShardUnavailable`.
    pub dead_shards: usize,
    /// Retry attempts after a replica failed mid-batch (any cause).
    pub retries: u64,
    /// Retries caused by injected device faults specifically.
    pub device_faults: u64,
    /// Retries caused by non-device panics (e.g. a user metric blowing up);
    /// these also add a soft-health strike against the replica.
    pub metric_panics: u64,
    /// Batches that fell off the whole-replica fast path onto the per-shard
    /// degraded path (composing answers from surviving shard copies).
    pub degraded_calls: u64,
    /// Per-replica soft-health strikes (panic history used to deprioritize
    /// a replica in selection; never a permanent exclusion).
    pub strikes: Vec<u64>,
}

/// Plain-value copy of [`SearchStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Real metric-distance evaluations performed.
    pub distance_computations: u64,
    /// Nodes pruned by ring tests.
    pub nodes_pruned: u64,
    /// Nodes expanded.
    pub nodes_expanded: u64,
    /// Leaf entries skipped by the stored-distance filter.
    pub leaf_filtered: u64,
    /// Leaf entries verified with a distance computation.
    pub leaf_verified: u64,
    /// Leaf verifications abandoned early by the bounded kernel.
    pub leaf_abandoned: u64,
    /// Query groups formed by the two-stage strategy.
    pub groups_formed: u64,
    /// Largest frontier seen.
    pub max_frontier: u64,
    /// Bound tightenings received from the cross-shard kNN broadcast.
    pub broadcast_tightened: u64,
}

impl StatsSnapshot {
    /// Combine two snapshots from *different* index instances (the sharded
    /// aggregate): throughput counters sum; `max_frontier` maxes, because
    /// shard frontiers live on different devices and never coexist in one
    /// memory budget.
    pub fn combine(self, other: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            distance_computations: self.distance_computations + other.distance_computations,
            nodes_pruned: self.nodes_pruned + other.nodes_pruned,
            nodes_expanded: self.nodes_expanded + other.nodes_expanded,
            leaf_filtered: self.leaf_filtered + other.leaf_filtered,
            leaf_verified: self.leaf_verified + other.leaf_verified,
            leaf_abandoned: self.leaf_abandoned + other.leaf_abandoned,
            groups_formed: self.groups_formed + other.groups_formed,
            max_frontier: self.max_frontier.max(other.max_frontier),
            broadcast_tightened: self.broadcast_tightened + other.broadcast_tightened,
        }
    }
}

/// The service-facing latency histogram now lives in `gts-trace` (the
/// bottom of the crate stack) so the trace layer's per-stage summary can
/// reuse it; re-exported here unchanged for existing callers.
pub use gts_trace::LatencyHistogram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_and_snapshot() {
        let s = SearchStats::default();
        s.add(&s.distance_computations, 5);
        s.max(&s.max_frontier, 10);
        s.max(&s.max_frontier, 3);
        let snap = s.snapshot();
        assert_eq!(snap.distance_computations, 5);
        assert_eq!(snap.max_frontier, 10);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn combine_sums_counters_and_maxes_frontier() {
        let a = StatsSnapshot {
            distance_computations: 5,
            nodes_pruned: 1,
            nodes_expanded: 2,
            leaf_filtered: 3,
            leaf_verified: 4,
            leaf_abandoned: 0,
            groups_formed: 1,
            max_frontier: 10,
            broadcast_tightened: 2,
        };
        let b = StatsSnapshot {
            distance_computations: 7,
            max_frontier: 4,
            ..StatsSnapshot::default()
        };
        let c = a.combine(b);
        assert_eq!(c.distance_computations, 12);
        assert_eq!(c.nodes_pruned, 1);
        assert_eq!(c.max_frontier, 10, "frontiers never coexist — max");
        assert_eq!(c.broadcast_tightened, 2, "tightenings sum across shards");
    }

    #[test]
    fn histogram_reexport_still_records_and_quantiles() {
        // The implementation (and its unit tests) moved to `gts-trace`;
        // this pins the re-export working through the old path.
        let mut h = LatencyHistogram::default();
        for v in [0u64, 1, 2, 3, 900, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.quantile(0.99), 1000);
        assert!(h.quantile(0.5) >= 2 && h.quantile(0.5) < 900);
    }
}
