//! Search statistics, for tests, ablations, and the experiment reports.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated over the lifetime of an index (reset explicitly).
#[derive(Debug, Default)]
pub struct SearchStats {
    /// Real metric-distance evaluations performed.
    pub distance_computations: AtomicU64,
    /// Tree nodes pruned by Lemma 5.1/5.2 ring tests.
    pub nodes_pruned: AtomicU64,
    /// Tree nodes expanded (survived pruning).
    pub nodes_expanded: AtomicU64,
    /// Leaf table entries skipped by the stored-distance filter.
    pub leaf_filtered: AtomicU64,
    /// Leaf table entries verified with a real distance computation.
    pub leaf_verified: AtomicU64,
    /// Query groups formed by the two-stage memory strategy.
    pub groups_formed: AtomicU64,
    /// Largest intermediate frontier (entries) seen.
    pub max_frontier: AtomicU64,
}

impl SearchStats {
    /// Reset all counters to zero.
    pub fn reset(&self) {
        for c in [
            &self.distance_computations,
            &self.nodes_pruned,
            &self.nodes_expanded,
            &self.leaf_filtered,
            &self.leaf_verified,
            &self.groups_formed,
            &self.max_frontier,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Plain-value snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            distance_computations: self.distance_computations.load(Ordering::Relaxed),
            nodes_pruned: self.nodes_pruned.load(Ordering::Relaxed),
            nodes_expanded: self.nodes_expanded.load(Ordering::Relaxed),
            leaf_filtered: self.leaf_filtered.load(Ordering::Relaxed),
            leaf_verified: self.leaf_verified.load(Ordering::Relaxed),
            groups_formed: self.groups_formed.load(Ordering::Relaxed),
            max_frontier: self.max_frontier.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn max(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_max(v, Ordering::Relaxed);
    }
}

/// Plain-value copy of [`SearchStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Real metric-distance evaluations performed.
    pub distance_computations: u64,
    /// Nodes pruned by ring tests.
    pub nodes_pruned: u64,
    /// Nodes expanded.
    pub nodes_expanded: u64,
    /// Leaf entries skipped by the stored-distance filter.
    pub leaf_filtered: u64,
    /// Leaf entries verified with a distance computation.
    pub leaf_verified: u64,
    /// Query groups formed by the two-stage strategy.
    pub groups_formed: u64,
    /// Largest frontier seen.
    pub max_frontier: u64,
}

impl StatsSnapshot {
    /// Combine two snapshots from *different* index instances (the sharded
    /// aggregate): throughput counters sum; `max_frontier` maxes, because
    /// shard frontiers live on different devices and never coexist in one
    /// memory budget.
    pub fn combine(self, other: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            distance_computations: self.distance_computations + other.distance_computations,
            nodes_pruned: self.nodes_pruned + other.nodes_pruned,
            nodes_expanded: self.nodes_expanded + other.nodes_expanded,
            leaf_filtered: self.leaf_filtered + other.leaf_filtered,
            leaf_verified: self.leaf_verified + other.leaf_verified,
            groups_formed: self.groups_formed + other.groups_formed,
            max_frontier: self.max_frontier.max(other.max_frontier),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_and_snapshot() {
        let s = SearchStats::default();
        s.add(&s.distance_computations, 5);
        s.max(&s.max_frontier, 10);
        s.max(&s.max_frontier, 3);
        let snap = s.snapshot();
        assert_eq!(snap.distance_computations, 5);
        assert_eq!(snap.max_frontier, 10);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn combine_sums_counters_and_maxes_frontier() {
        let a = StatsSnapshot {
            distance_computations: 5,
            nodes_pruned: 1,
            nodes_expanded: 2,
            leaf_filtered: 3,
            leaf_verified: 4,
            groups_formed: 1,
            max_frontier: 10,
        };
        let b = StatsSnapshot {
            distance_computations: 7,
            max_frontier: 4,
            ..StatsSnapshot::default()
        };
        let c = a.combine(b);
        assert_eq!(c.distance_computations, 12);
        assert_eq!(c.nodes_pruned, 1);
        assert_eq!(c.max_frontier, 10, "frontiers never coexist — max");
    }
}
