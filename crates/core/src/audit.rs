//! The cost-model audit: does §5.2/§5.3 batch sizing predict reality?
//!
//! [`CostModel::max_batch_queries`] admits a batch by dividing each
//! layer's memory bound by the Chebyshev survivor estimate
//! ([`CostModel::expected_frontier`]). This module holds that prediction
//! against what the descent engine actually observes — per-level frontier
//! survivors and peak intermediate-buffer bytes — and distils the
//! comparison into a **calibration histogram** of
//! `100 · observed / predicted` percentages per level step (100 = the
//! model was exact; below 100 = pruning beat the Chebyshev bound, the
//! model is conservative; above 100 = survivors exceeded the estimate,
//! the batch was sized optimistically and the in-search grouping is the
//! safety net).
//!
//! The audit follows the observability contract of `gts-trace` and
//! `gts-metrics`: it only *reads* engine state already computed (frontier
//! lengths, allocation sizes), never charges a cycle or touches an
//! answer, and the disabled path is one relaxed atomic load per level.

use crate::cost::CostModel;
use crate::search::FRONTIER_ENTRY_BYTES;
use gts_trace::LatencyHistogram;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The prediction under audit: the fitted model and the batch size it
/// admitted, frozen at sizing time.
#[derive(Clone, Copy, Debug)]
pub struct AuditPlan {
    /// The fitted cost model the batch was sized with.
    pub model: CostModel,
    /// Node capacity of the audited tree.
    pub nc: u32,
    /// Height of the audited tree.
    pub h: u32,
    /// Radius hint the sizing used.
    pub radius: f64,
    /// The batch size [`CostModel::max_batch_queries`] admitted.
    pub predicted_batch: usize,
}

impl AuditPlan {
    /// Predicted frontier entries entering `level` for a batch of
    /// `queries`: the per-query Chebyshev estimate times the batch width.
    pub fn predicted_frontier(&self, queries: u64, level: u32) -> u64 {
        (queries as f64 * self.model.expected_frontier(self.nc, self.radius, level)).ceil() as u64
    }

    /// Predicted peak intermediate-buffer bytes for the admitted batch:
    /// the largest per-level expansion buffer (`frontier · Nc` entries)
    /// over the tree's expansion levels.
    pub fn predicted_peak_bytes(&self) -> u64 {
        (1..self.h.max(1))
            .map(|level| {
                self.predicted_frontier(self.predicted_batch as u64, level)
                    * u64::from(self.nc)
                    * FRONTIER_ENTRY_BYTES as u64
            })
            .max()
            .unwrap_or(0)
    }
}

#[derive(Default)]
struct AuditInner {
    plan: Option<AuditPlan>,
    calibration_pct: LatencyHistogram,
}

/// Per-index audit state. Owned by every `Gts`; disabled by default and
/// switched on alongside the service's metrics hub.
#[derive(Default)]
pub struct CostAudit {
    enabled: AtomicBool,
    levels_observed: AtomicU64,
    overpredicted: AtomicU64,
    underpredicted: AtomicU64,
    peak_frontier_bytes: AtomicU64,
    inner: Mutex<AuditInner>,
}

impl CostAudit {
    /// Is the audit recording?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Switch recording on or off. Every observation site early-returns
    /// on this one relaxed load while off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Install the prediction to audit against (called by the batch
    /// sizing path whenever a cost model is fitted). Kept even while
    /// disabled, so enabling later audits against the current plan.
    pub fn install(&self, plan: AuditPlan) {
        self.inner.lock().expect("audit lock").plan = Some(plan);
    }

    /// The currently installed plan, if a sizing pass has run.
    pub fn plan(&self) -> Option<AuditPlan> {
        self.inner.lock().expect("audit lock").plan
    }

    /// Record one level observation: `observed` frontier entries entered
    /// `level` while descending a batch of `queries`. No-op while
    /// disabled or before any plan is installed.
    pub(crate) fn observe_level(&self, level: u32, queries: u64, observed: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.inner.lock().expect("audit lock");
        let Some(plan) = inner.plan else { return };
        let predicted = plan.predicted_frontier(queries, level).max(1);
        let pct = (observed as f64 * 100.0 / predicted as f64).round() as u64;
        inner.calibration_pct.record(pct);
        drop(inner);
        self.levels_observed.fetch_add(1, Ordering::Relaxed);
        if observed > predicted {
            self.underpredicted.fetch_add(1, Ordering::Relaxed);
        } else if observed < predicted {
            self.overpredicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record the size of one intermediate expansion buffer; the audit
    /// keeps the high-water mark. No-op while disabled.
    pub(crate) fn observe_frontier_bytes(&self, bytes: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.peak_frontier_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Point-in-time view of the audit.
    pub fn snapshot(&self) -> CostAuditSnapshot {
        let inner = self.inner.lock().expect("audit lock");
        CostAuditSnapshot {
            enabled: self.enabled(),
            predicted_batch: inner.plan.map_or(0, |p| p.predicted_batch),
            predicted_peak_bytes: inner.plan.map_or(0, |p| p.predicted_peak_bytes()),
            levels_observed: self.levels_observed.load(Ordering::Relaxed),
            overpredicted: self.overpredicted.load(Ordering::Relaxed),
            underpredicted: self.underpredicted.load(Ordering::Relaxed),
            peak_frontier_bytes: self.peak_frontier_bytes.load(Ordering::Relaxed),
            calibration_pct: inner.calibration_pct.clone(),
        }
    }
}

/// Snapshot of a [`CostAudit`], foldable across shards.
#[derive(Clone, Debug, Default)]
pub struct CostAuditSnapshot {
    /// Was the audit recording when snapshotted?
    pub enabled: bool,
    /// The admitted batch size under audit (0 before any sizing pass;
    /// the minimum across shards after a fold — the batch the service
    /// actually formed).
    pub predicted_batch: usize,
    /// Predicted peak intermediate bytes for that batch (max across
    /// shards after a fold).
    pub predicted_peak_bytes: u64,
    /// Level observations recorded.
    pub levels_observed: u64,
    /// Levels where pruning beat the prediction (model conservative).
    pub overpredicted: u64,
    /// Levels where survivors exceeded the prediction (model
    /// optimistic — the regime where in-search grouping must catch the
    /// overrun).
    pub underpredicted: u64,
    /// Largest intermediate expansion buffer actually allocated, bytes.
    pub peak_frontier_bytes: u64,
    /// Calibration distribution: `100·observed/predicted` per level
    /// observation. `quantile(0.5)` near 100 means the model tracks
    /// reality.
    pub calibration_pct: LatencyHistogram,
}

impl CostAuditSnapshot {
    /// Fold another shard's audit in: counters sum, histograms merge,
    /// peaks max, and `predicted_batch` takes the minimum of the
    /// non-zero values (the batch size the cross-shard sizing admits).
    pub fn combine(mut self, other: CostAuditSnapshot) -> CostAuditSnapshot {
        self.enabled |= other.enabled;
        self.predicted_batch = match (self.predicted_batch, other.predicted_batch) {
            (0, b) => b,
            (a, 0) => a,
            (a, b) => a.min(b),
        };
        self.predicted_peak_bytes = self.predicted_peak_bytes.max(other.predicted_peak_bytes);
        self.levels_observed += other.levels_observed;
        self.overpredicted += other.overpredicted;
        self.underpredicted += other.underpredicted;
        self.peak_frontier_bytes = self.peak_frontier_bytes.max(other.peak_frontier_bytes);
        self.calibration_pct.merge(&other.calibration_pct);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> AuditPlan {
        AuditPlan {
            model: CostModel {
                n: 10_000,
                cores: 4352,
                sigma: 1.0,
                distance_work: 50.0,
            },
            nc: 20,
            h: 4,
            radius: 2.0,
            predicted_batch: 64,
        }
    }

    #[test]
    fn disabled_audit_records_nothing() {
        let audit = CostAudit::default();
        audit.install(plan());
        audit.observe_level(1, 8, 100);
        audit.observe_frontier_bytes(1 << 20);
        let snap = audit.snapshot();
        assert!(!snap.enabled);
        assert_eq!(snap.levels_observed, 0);
        assert_eq!(snap.peak_frontier_bytes, 0);
        assert_eq!(snap.predicted_batch, 64, "the plan is kept while off");
    }

    #[test]
    fn calibration_pct_is_100_when_the_model_is_exact() {
        let audit = CostAudit::default();
        audit.set_enabled(true);
        let p = plan();
        audit.install(p);
        // Feed the audit exactly what the model predicts at each level.
        for level in 1..=p.h {
            audit.observe_level(level, 8, p.predicted_frontier(8, level));
        }
        let snap = audit.snapshot();
        assert_eq!(snap.levels_observed, u64::from(p.h));
        assert_eq!(snap.overpredicted, 0);
        assert_eq!(snap.underpredicted, 0);
        assert_eq!(snap.calibration_pct.quantile(0.5), 100);
        assert_eq!(snap.calibration_pct.min(), 100);
        assert_eq!(snap.calibration_pct.max(), 100);
    }

    #[test]
    fn over_and_under_prediction_are_counted() {
        let audit = CostAudit::default();
        audit.set_enabled(true);
        let p = plan();
        audit.install(p);
        let exact = p.predicted_frontier(8, 2);
        audit.observe_level(2, 8, exact / 2); // pruning beat the model
        audit.observe_level(2, 8, exact * 3); // model was optimistic
        let snap = audit.snapshot();
        assert_eq!(snap.overpredicted, 1);
        assert_eq!(snap.underpredicted, 1);
        assert!(snap.calibration_pct.min() <= 50);
        assert!(snap.calibration_pct.max() >= 300);
    }

    #[test]
    fn peak_bytes_is_a_high_water_mark() {
        let audit = CostAudit::default();
        audit.set_enabled(true);
        audit.observe_frontier_bytes(100);
        audit.observe_frontier_bytes(5000);
        audit.observe_frontier_bytes(400);
        assert_eq!(audit.snapshot().peak_frontier_bytes, 5000);
    }

    #[test]
    fn combine_folds_shards() {
        let a = CostAudit::default();
        let b = CostAudit::default();
        for audit in [&a, &b] {
            audit.set_enabled(true);
            audit.install(plan());
        }
        a.observe_level(1, 4, 4);
        b.observe_level(1, 4, 8);
        a.observe_frontier_bytes(1000);
        b.observe_frontier_bytes(2000);
        let mut pb = plan();
        pb.predicted_batch = 32;
        b.install(pb);
        let folded = a.snapshot().combine(b.snapshot());
        assert_eq!(folded.levels_observed, 2);
        assert_eq!(folded.peak_frontier_bytes, 2000);
        assert_eq!(folded.predicted_batch, 32, "min of the shard predictions");
        assert_eq!(folded.calibration_pct.count(), 2);
    }

    #[test]
    fn predicted_peak_bytes_covers_the_widest_level() {
        let p = plan();
        let by_level: Vec<u64> = (1..p.h)
            .map(|l| {
                p.predicted_frontier(p.predicted_batch as u64, l)
                    * u64::from(p.nc)
                    * FRONTIER_ENTRY_BYTES as u64
            })
            .collect();
        assert_eq!(
            p.predicted_peak_bytes(),
            by_level.into_iter().max().expect("levels"),
        );
    }
}
