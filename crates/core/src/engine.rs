//! The level-synchronized **descent engine**: the resumable core of the
//! batched search loops (paper §5, Alg. 4–5).
//!
//! Before this module existed, `range_descend`/`knn_descend` were monolithic
//! recursive loops: one call descended a frontier from the root to the
//! leaves, recursing on two-stage query-group splits, and only returned when
//! every leaf was verified. That shape is perfect for a single device but
//! leaves nothing for a *multi-device* search to grab onto: the paper's
//! Alg. 5 bound-update runs between levels, which is exactly where a
//! lockstep cross-shard search wants to exchange bounds — so the loop is now
//! an explicit state machine.
//!
//! [`DescentEngine`] holds everything one batched descent owns — the frame
//! stack (frontier + per-level intermediate-result buffers + pending query
//! groups), the per-query kNN pools, the externally injected bounds, and the
//! reused [`SearchScratch`] — and advances in three phases:
//!
//! * **start** ([`DescentEngine::start_range`] /
//!   [`DescentEngine::start_knn`]): seed the root frontier (or come up
//!   already finished for an empty batch);
//! * **step_level** ([`DescentEngine::step_level`]): run *one* device-level
//!   action — one level expansion (pivot-distance kernel, Alg. 5 bound
//!   update, ring pruning) or one segment's leaf verification — then
//!   suspend. Administrative work (group splits, starting the next group,
//!   retiring empty frontiers) is folded into the next step, charging
//!   nothing;
//! * **finish_leaves** ([`DescentEngine::finish_leaves`]): drain the
//!   remaining steps to completion — the whole descent for the single-device
//!   drivers, the tail for a lockstep driver that stops exchanging bounds.
//!
//! Between steps a kNN engine exposes its per-query bound snapshot
//! ([`DescentEngine::write_bounds`]) and accepts an externally tightened one
//! ([`DescentEngine::inject_bounds`]) — the seam the sharded
//! [bound broadcast](crate::GtsParams::bound_broadcast) drives through a
//! [`BoundExchange`]. An injected bound participates in every prune and
//! leaf-wave filter as `min(local k-th bound, injected)`.
//!
//! **Exactness under injection.** Every published bound is some shard's
//! current k-th-best distance over a *subset* of the data, so it upper-bounds
//! the true global k-th distance; the element-wise min across shards still
//! does. All pruning and bounded verification is tie-safe (strict `>` against
//! the bound), so no object at or below the true k-th distance — in
//! particular no member of the canonical global top-k — is ever discarded,
//! and the per-shard answer lists keep containing every global answer they
//! own. The k-way merge therefore returns bit-identical answers with the
//! broadcast on or off; only the pruning work differs.
//!
//! **Step-order fidelity.** The engine replays the recursive loops' exact
//! order of device-visible actions — allocations (one intermediate-result
//! buffer per level, held until the segment and its groups finish, mirroring
//! the recursion's buffer lifetimes), kernel launches, and stat updates —
//! so driving an engine to completion is bit- **and cycle-identical** to the
//! pre-refactor monolithic descent (`tests/shard_invariance.rs` pins this
//! against a checked-in fingerprint).

use crate::search::{
    verify_block, Frontier, RawEntry, SearchCtx, SearchScratch, TopK, VERIFY_EXTRA_WORK,
};
use gpu_sim::primitives::{reduce_max_f64, sort_pairs_by_key};
use gpu_sim::{DeviceBuffer, GpuError};
use metric_space::index::{sort_neighbors, Neighbor};
use metric_space::lemmas::prune_node_range;
use metric_space::BatchMetric;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

/// One suspended descent segment: a frontier at a level, the
/// intermediate-result buffers its levels allocated, and any query groups
/// it split into. Frames stack exactly like the recursive descent's call
/// frames did: a segment that splits keeps its buffers alive while its
/// groups (pushed as child frames) run to completion, then retires.
struct Frame {
    /// The segment's current frontier; `None` once the segment has split
    /// into query groups and only manages them.
    entries: Option<Vec<Frontier>>,
    /// Level `entries` sits at (the root frontier starts at 1).
    level: u32,
    /// Per-level intermediate-result buffers (the paper's `Q'_Res`),
    /// allocated on expansion and held until this frame pops — each level's
    /// buffer stays live while deeper levels run, which is the memory
    /// pressure the two-stage strategy reacts to.
    held: Vec<DeviceBuffer<RawEntry>>,
    /// Pending query groups in reverse order (`pop()` yields the next),
    /// formed when the frontier overran the per-layer memory bound.
    groups: Vec<Vec<Frontier>>,
    /// The level the group split happened at; every group resumes there.
    group_level: u32,
}

impl Frame {
    fn running(entries: Vec<Frontier>, level: u32) -> Frame {
        Frame {
            entries: Some(entries),
            level,
            held: Vec::new(),
            groups: Vec::new(),
            group_level: 0,
        }
    }
}

/// What kind of query the engine is descending, plus its per-query state.
enum Mode<'a> {
    /// MRQ (Alg. 4): fixed per-query radii, hits accumulated per query.
    Range {
        radii: &'a [f64],
        results: Vec<Vec<Neighbor>>,
    },
    /// MkNNQ (Alg. 5): per-query best-k pools whose k-th distance is the
    /// pruning bound, optionally tightened by externally injected bounds
    /// and truncated to a per-level beam (approximate search).
    Knn {
        beam: Option<usize>,
        pools: Vec<TopK>,
        /// Externally injected per-query bounds (∞ until a broadcast
        /// tightens them); the effective pruning bound is
        /// `min(pools[q].bound(), external[q])`.
        external: Vec<f64>,
    },
}

/// The resumable per-batch descent state machine. See the module docs for
/// the phase protocol; constructed by [`DescentEngine::start_range`] or
/// [`DescentEngine::start_knn`], borrowing the batch's [`SearchCtx`].
pub(crate) struct DescentEngine<'a, O, M> {
    ctx: &'a SearchCtx<'a, O, M>,
    queries: &'a [O],
    mode: Mode<'a>,
    /// Descent segments, deepest last — the explicit form of the recursive
    /// group descent's call stack.
    stack: Vec<Frame>,
    scratch: SearchScratch,
    /// Cross-shard bound tightenings received since the last traced level
    /// span (tracing only — injections land between steps, so they are
    /// attributed to the level processed right after).
    pending_tightened: u64,
}

impl<'a, O, M> DescentEngine<'a, O, M>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    /// Start a batched MRQ descent (`answers[i] = MRQ(queries[i],
    /// radii[i])`). Comes up already finished when the batch is empty.
    pub(crate) fn start_range(
        ctx: &'a SearchCtx<'a, O, M>,
        queries: &'a [O],
        radii: &'a [f64],
    ) -> Self {
        let mode = Mode::Range {
            radii,
            results: vec![Vec::new(); queries.len()],
        };
        let seed = !ctx.table.is_empty() && !queries.is_empty();
        Self::start(ctx, queries, mode, seed)
    }

    /// Start a batched MkNNQ descent (`beam = None` is the exact search).
    /// Comes up already finished when the batch is empty or `k == 0`.
    pub(crate) fn start_knn(
        ctx: &'a SearchCtx<'a, O, M>,
        queries: &'a [O],
        k: usize,
        beam: Option<usize>,
    ) -> Self {
        let mode = Mode::Knn {
            beam,
            pools: (0..queries.len()).map(|_| TopK::new(k)).collect(),
            external: vec![f64::INFINITY; queries.len()],
        };
        let seed = !ctx.table.is_empty() && !queries.is_empty() && k > 0;
        Self::start(ctx, queries, mode, seed)
    }

    fn start(ctx: &'a SearchCtx<'a, O, M>, queries: &'a [O], mode: Mode<'a>, seed: bool) -> Self {
        let mut engine = DescentEngine {
            ctx,
            queries,
            mode,
            stack: Vec::new(),
            scratch: SearchScratch::default(),
            pending_tightened: 0,
        };
        if seed {
            let mut entries = engine.scratch.take_frontier();
            entries.extend((0..queries.len() as u32).map(|q| Frontier {
                node: 1,
                query: q,
                dqp: f64::NAN,
            }));
            engine.stack.push(Frame::running(entries, 1));
        }
        engine
    }

    /// True once every segment has verified its leaves (or the engine
    /// started empty): no further step will do device work.
    pub(crate) fn is_done(&self) -> bool {
        self.stack.is_empty()
    }

    /// Advance by one device-level action — one level expansion or one
    /// segment's leaf verification — returning `Ok(true)` while the descent
    /// is still running. Administrative transitions (group splits, starting
    /// the next group, retiring empty frontiers) are folded in and charge
    /// nothing. On error (device OOM on an intermediate buffer) the engine
    /// is dead; the caller must not step it again.
    pub(crate) fn step_level(&mut self) -> Result<bool, GpuError> {
        loop {
            let Some(top) = self.stack.last_mut() else {
                return Ok(false);
            };
            // Group-manager frame: start the next group or retire.
            let Some(entries) = top.entries.take() else {
                match top.groups.pop() {
                    Some(g) => {
                        let level = top.group_level;
                        self.stack.push(Frame::running(g, level));
                    }
                    None => {
                        self.stack.pop(); // drops this segment's held buffers
                    }
                }
                continue;
            };
            if entries.is_empty() {
                self.scratch.put_frontier(entries);
                self.stack.pop();
                continue;
            }
            let level = top.level;
            let shape = self.ctx.shape();
            self.ctx
                .stats
                .max(&self.ctx.stats.max_frontier, entries.len() as u64);

            // Two-stage strategy: form query groups when the frontier would
            // overrun the per-layer memory bound (Alg. 4 line 4 / Alg. 5
            // line 4). Groups run sequentially; for kNN they *share* the
            // pools, so later groups inherit tightened bounds — a free bonus
            // of sequential group processing.
            if self.ctx.params.query_grouping
                && entries.len() > self.ctx.size_limit(level)
                && SearchCtx::<O, M>::multiple_queries(&entries)
            {
                let groups = SearchCtx::<O, M>::split_groups(entries, self.ctx.size_limit(level));
                self.ctx
                    .stats
                    .add(&self.ctx.stats.groups_formed, groups.len() as u64);
                top.groups = groups;
                top.groups.reverse();
                top.group_level = level;
                continue;
            }

            // Per-level trace span: snapshot the clock and the verified-leaf
            // counter before the device action, record the delta after.
            // Purely observational — the action's charges are untouched.
            let trace = self.ctx.dev.tracer();
            let pre = trace.as_ref().map(|_| {
                (
                    self.ctx.dev.cycles(),
                    self.ctx.stats.leaf_verified.load(Ordering::Relaxed),
                )
            });
            let frontier_len = entries.len() as u64;

            // Cost-model audit: hold the §5.3 survivor estimate against the
            // frontier that actually entered this level. Observational only;
            // entries are query-contiguous, so the query count of this group
            // is one plus the number of id transitions.
            if self.ctx.audit.enabled() {
                let queries_here = 1 + entries
                    .windows(2)
                    .filter(|w| w[0].query != w[1].query)
                    .count() as u64;
                self.ctx
                    .audit
                    .observe_level(level, queries_here, frontier_len);
                if level < shape.h {
                    self.ctx.audit.observe_frontier_bytes(
                        frontier_len
                            * u64::from(shape.nc)
                            * crate::search::FRONTIER_ENTRY_BYTES as u64,
                    );
                }
            }

            if level == shape.h {
                // The segment's finish-leaves phase: verify, then retire.
                match &mut self.mode {
                    Mode::Range { radii, results } => verify_range(
                        self.ctx,
                        self.queries,
                        radii,
                        &entries,
                        results,
                        &mut self.scratch,
                    ),
                    Mode::Knn {
                        pools, external, ..
                    } => verify_knn(
                        self.ctx,
                        self.queries,
                        &entries,
                        pools,
                        external,
                        &mut self.scratch,
                    ),
                }
                self.scratch.put_frontier(entries);
                self.stack.pop();
                if let Some((rec, dev_id)) = trace {
                    let (c0, v0) = pre.expect("snapshotted alongside the tracer");
                    rec.record(gts_trace::TraceEvent::span(
                        gts_trace::EventKind::Level {
                            level,
                            frontier: frontier_len,
                            tightened: std::mem::take(&mut self.pending_tightened),
                            verified: self.ctx.stats.leaf_verified.load(Ordering::Relaxed) - v0,
                        },
                        gts_trace::current_ctx(),
                        Some(dev_id),
                        c0,
                        self.ctx.dev.cycles(),
                    ));
                }
                return Ok(!self.stack.is_empty());
            }

            // Expand one level. The intermediate buffer is sized |E|·Nc like
            // the paper's Q'_Res; with grouping on, the size-limit check
            // above guarantees it fits — with it off this is exactly where
            // the naive strategy deadlocks.
            let next = match &mut self.mode {
                Mode::Range { radii, .. } => {
                    top.held.push(self.ctx.dev.alloc::<RawEntry>(
                        entries.len() * shape.nc as usize,
                        "MRQ intermediate results",
                    )?);
                    expand_range(self.ctx, self.queries, radii, &entries, &mut self.scratch)
                }
                Mode::Knn {
                    beam,
                    pools,
                    external,
                } => {
                    top.held.push(self.ctx.dev.alloc::<RawEntry>(
                        entries.len() * shape.nc as usize,
                        "MkNNQ intermediate results",
                    )?);
                    expand_knn(
                        self.ctx,
                        self.queries,
                        &entries,
                        pools,
                        external,
                        *beam,
                        &mut self.scratch,
                    )
                }
            };
            top.entries = Some(next);
            top.level = level + 1;
            self.scratch.put_frontier(entries);
            if let Some((rec, dev_id)) = trace {
                let (c0, v0) = pre.expect("snapshotted alongside the tracer");
                rec.record(gts_trace::TraceEvent::span(
                    gts_trace::EventKind::Level {
                        level,
                        frontier: frontier_len,
                        tightened: std::mem::take(&mut self.pending_tightened),
                        verified: self.ctx.stats.leaf_verified.load(Ordering::Relaxed) - v0,
                    },
                    gts_trace::current_ctx(),
                    Some(dev_id),
                    c0,
                    self.ctx.dev.cycles(),
                ));
            }
            return Ok(true);
        }
    }

    /// Drain the remaining steps to completion — the whole descent when
    /// called right after `start`, the tail when a lockstep driver stops
    /// exchanging bounds.
    pub(crate) fn finish_leaves(&mut self) -> Result<(), GpuError> {
        while self.step_level()? {}
        Ok(())
    }

    /// Snapshot the per-query effective kNN bounds
    /// (`min(local k-th bound, injected)`) into `out` (length = batch
    /// size). Each value upper-bounds that query's true global k-th
    /// distance, so element-wise minima across shards stay valid bounds.
    pub(crate) fn write_bounds(&self, out: &mut [f64]) {
        let Mode::Knn {
            pools, external, ..
        } = &self.mode
        else {
            unreachable!("kNN bounds are only defined for a kNN descent");
        };
        for ((o, p), e) in out.iter_mut().zip(pools).zip(external) {
            *o = p.bound().min(*e);
        }
    }

    /// Accept externally tightened per-query bounds (the cross-shard
    /// broadcast): each query's injected bound is kept as the running min,
    /// and strictly-tightening injections are counted in
    /// [`StatsSnapshot::broadcast_tightened`](crate::stats::StatsSnapshot).
    pub(crate) fn inject_bounds(&mut self, global: &[f64]) {
        let Mode::Knn {
            pools, external, ..
        } = &mut self.mode
        else {
            unreachable!("kNN bounds are only defined for a kNN descent");
        };
        let mut tightened = 0u64;
        for ((&g, p), e) in global.iter().zip(pools.iter()).zip(external.iter_mut()) {
            if g < p.bound().min(*e) {
                tightened += 1;
                *e = g;
            }
        }
        if tightened > 0 {
            self.ctx
                .stats
                .add(&self.ctx.stats.broadcast_tightened, tightened);
            self.pending_tightened += tightened;
        }
    }

    /// Consume the finished engine into per-query answer lists in canonical
    /// `(distance, id)` order. Must only be called once the engine
    /// [is done](DescentEngine::is_done).
    pub(crate) fn into_results(self) -> Vec<Vec<Neighbor>> {
        debug_assert!(self.stack.is_empty(), "descent not finished");
        match self.mode {
            Mode::Range { mut results, .. } => {
                for r in &mut results {
                    sort_neighbors(r);
                }
                results
            }
            Mode::Knn { pools, .. } => pools.into_iter().map(TopK::into_sorted).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Level expansion (the loop bodies of Alg. 4 / Alg. 5)
// ---------------------------------------------------------------------------

/// Expand one MRQ level: one pivot-distance kernel over the frontier, then
/// the Lemma 5.1 ring test for each of the `Nc` children. Returns the
/// next-level frontier.
fn expand_range<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    radii: &[f64],
    entries: &[Frontier],
    scratch: &mut SearchScratch,
) -> Vec<Frontier>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    let shape = ctx.shape();
    ctx.pivot_distances(queries, entries, scratch);
    let mut next = scratch.take_frontier();
    for (i, e) in entries.iter().enumerate() {
        let r = radii[e.query as usize];
        let dqi = scratch.dq[i];
        for j in 0..shape.nc as usize {
            let cid = shape.child(e.node as usize, j);
            let child = ctx.nodes.get(cid);
            if child.is_empty() {
                continue;
            }
            let upper = if ctx.params.two_sided_pruning {
                child.max_dis
            } else {
                f64::INFINITY
            };
            if prune_node_range(child.min_dis, upper, dqi, r) {
                ctx.stats.add(&ctx.stats.nodes_pruned, 1);
            } else {
                ctx.stats.add(&ctx.stats.nodes_expanded, 1);
                next.push(Frontier {
                    node: cid as u32,
                    query: e.query,
                    dqp: dqi,
                });
            }
        }
    }
    ctx.dev
        .launch_charged((entries.len() * shape.nc as usize) as u64 * 4, 8);
    next
}

/// Expand one MkNNQ level (Alg. 5 lines 7–17): pivot distances (the pivots
/// are real objects, so each distance is also a candidate), the
/// encode-and-global-sort bound update, then tie-safe pruning against the
/// **effective** bound `min(pools[q].bound(), external[q])` — the injected
/// cross-shard bound participates exactly like the local one. Returns the
/// (optionally beam-truncated) next-level frontier.
fn expand_knn<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    entries: &[Frontier],
    pools: &mut [TopK],
    external: &[f64],
    beam: Option<usize>,
    scratch: &mut SearchScratch,
) -> Vec<Frontier>
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    let shape = ctx.shape();
    // Alg. 5 lines 7–10: pivot distances for the frontier (one batched
    // kernel + memo).
    ctx.pivot_distances(queries, entries, scratch);

    // Alg. 5 lines 11–12: the per-query k-th bound is located by encoding
    // `query_rank + dis/denom` and running the same global device sort as
    // construction; walking the sorted runs inserts candidates in ascending
    // order per query.
    let SearchScratch { dq, pairs, .. } = &mut *scratch;
    let maxd = reduce_max_f64(ctx.dev, dq).max(0.0);
    let denom = 2.0 * (maxd + 1.0);
    pairs.clear();
    pairs.extend(
        entries
            .iter()
            .enumerate()
            .map(|(i, e)| (f64::from(e.query) + dq[i] / denom, i as u32)),
    );
    ctx.dev.launch_charged(pairs.len() as u64 * 2, 2);
    sort_pairs_by_key(ctx.dev, pairs);
    for &(_, i) in pairs.iter() {
        let e = entries[i as usize];
        let pivot = ctx.nodes.get(e.node as usize).pivot.expect("internal node");
        // A tombstoned pivot's distance must not become a candidate (it is
        // no longer an answer) nor a bound (it could over-tighten pruning
        // against live objects).
        if ctx.live[pivot as usize] {
            pools[e.query as usize].insert(Neighbor::new(pivot, dq[i as usize]));
        }
    }

    // Alg. 5 lines 13–17: prune with the updated bounds — the own-pivot
    // test on the expanded node, then the parent-pivot ring test per child.
    // Both tests are tie-safe (strict `>`): a node that could still contain
    // an object at exactly the bound distance survives, because such an
    // object can enter the canonical answer through the `(dis, id)`
    // tie-break — which also makes an injected cross-shard bound safe, as
    // it never drops below the true global k-th distance.
    let mut next = scratch.take_frontier();
    scratch.gaps.clear();
    for (i, e) in entries.iter().enumerate() {
        let node = ctx.nodes.get(e.node as usize);
        let bound = pools[e.query as usize]
            .bound()
            .min(external[e.query as usize]);
        let dqi = scratch.dq[i];
        if dqi - node.own_max_dis > bound {
            ctx.stats.add(&ctx.stats.nodes_pruned, u64::from(shape.nc));
            continue;
        }
        for j in 0..shape.nc as usize {
            let cid = shape.child(e.node as usize, j);
            let child = ctx.nodes.get(cid);
            if child.is_empty() {
                continue;
            }
            let upper = if ctx.params.two_sided_pruning {
                child.max_dis
            } else {
                f64::INFINITY
            };
            if prune_node_range(child.min_dis, upper, dqi, bound) {
                ctx.stats.add(&ctx.stats.nodes_pruned, 1);
            } else {
                ctx.stats.add(&ctx.stats.nodes_expanded, 1);
                let gap = if dqi < child.min_dis {
                    child.min_dis - dqi
                } else if dqi > child.max_dis {
                    dqi - child.max_dis
                } else {
                    0.0
                };
                next.push(Frontier {
                    node: cid as u32,
                    query: e.query,
                    dqp: dqi,
                });
                scratch.gaps.push(gap);
            }
        }
    }
    ctx.dev
        .launch_charged((entries.len() * shape.nc as usize) as u64 * 4, 8);

    match beam {
        Some(b) => {
            let mut trimmed = scratch.take_frontier();
            {
                let SearchScratch { gaps, ranked, .. } = &mut *scratch;
                truncate_beam(ctx, &next, gaps, b.max(1), &mut trimmed, ranked);
            }
            scratch.put_frontier(next);
            trimmed
        }
        None => next,
    }
}

/// Per-query beam truncation: keep the `beam` entries whose ring is closest
/// to the query's mapped coordinate. Entries are query-contiguous; `gaps`
/// runs parallel to `entries`. Writes survivors into `out`; `ranked` is
/// reused ranking scratch.
fn truncate_beam<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    entries: &[Frontier],
    gaps: &[f64],
    beam: usize,
    out: &mut Vec<Frontier>,
    ranked: &mut Vec<u32>,
) where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    let mut i = 0usize;
    while i < entries.len() {
        let q = entries[i].query;
        let mut j = i;
        while j < entries.len() && entries[j].query == q {
            j += 1;
        }
        if j - i <= beam {
            out.extend_from_slice(&entries[i..j]);
        } else {
            ranked.clear();
            ranked.extend(i as u32..j as u32);
            ranked.sort_by(|&a, &b| {
                gaps[a as usize]
                    .partial_cmp(&gaps[b as usize])
                    .expect("finite gap")
                    .then(entries[a as usize].node.cmp(&entries[b as usize].node))
            });
            out.extend(ranked[..beam].iter().map(|&e| entries[e as usize]));
        }
        i = j;
    }
    ctx.dev.launch_charged(entries.len() as u64 * 4, 16);
}

// ---------------------------------------------------------------------------
// Leaf verification
// ---------------------------------------------------------------------------

/// Verify one MRQ segment's leaves: the stored-distance filter (zero
/// distance calls) runs inline; survivors are resolved against the arena in
/// query-contiguous id blocks — one batched kernel for the whole segment.
fn verify_range<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    radii: &[f64],
    entries: &[Frontier],
    results: &mut [Vec<Neighbor>],
    scratch: &mut SearchScratch,
) where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    let SearchScratch {
        tasks,
        kernel_ids,
        kernel_out,
        kernel_bounds,
        kernel_opt,
        ..
    } = scratch;
    ctx.fill_leaf_tasks(entries, tasks);
    if tasks.is_empty() {
        return;
    }
    let n = tasks.len();
    let mut verified = 0u64;
    let mut abandoned = 0u64;
    ctx.dev.launch_batch(n, || {
        let mut total = 0u64;
        let mut span = 0u64;
        let mut t = 0usize;
        while t < n {
            let q = entries[tasks[t].0 as usize].query;
            let mut u = t;
            while u < n && entries[tasks[u].0 as usize].query == q {
                u += 1;
            }
            let r = radii[q as usize];
            kernel_ids.clear();
            for &(ei, pos) in &tasks[t..u] {
                let e = entries[ei as usize];
                let te = ctx.table.get(pos as usize);
                if te.deleted {
                    total += 1;
                    span = span.max(1);
                    continue;
                }
                // Lemma 5.1 filter against the parent pivot: zero distance
                // calls.
                if !e.dqp.is_nan() && (te.dis - e.dqp).abs() > r {
                    total += 3;
                    span = span.max(3);
                    continue;
                }
                kernel_ids.push(te.obj);
            }
            if !kernel_ids.is_empty() {
                // With bounding on, the query's radius *is* the bound: a
                // returned distance is exactly a range hit and an abandoned
                // evaluation a certified miss charged only its banded work.
                let (w, s, ab) = verify_block(
                    ctx,
                    &queries[q as usize],
                    r,
                    kernel_ids,
                    kernel_out,
                    kernel_bounds,
                    kernel_opt,
                    |obj, d| {
                        if d <= r {
                            results[q as usize].push(Neighbor::new(obj, d));
                        }
                    },
                );
                abandoned += ab;
                total += w + VERIFY_EXTRA_WORK * kernel_ids.len() as u64;
                span = span.max(s + VERIFY_EXTRA_WORK);
                verified += kernel_ids.len() as u64;
            }
            t = u;
        }
        ((), total, span)
    });
    ctx.stats.add(&ctx.stats.leaf_verified, verified);
    ctx.stats.add(&ctx.stats.leaf_abandoned, abandoned);
    ctx.stats.add(&ctx.stats.distance_computations, verified);
    ctx.stats.add(&ctx.stats.leaf_filtered, n as u64 - verified);
}

/// Leaf verification runs in `KNN_WAVES` sequential kernel waves, each
/// query's leaves ordered by ring proximity to its mapped coordinate.
/// Within a wave the bound is snapshotted (parallel threads cannot observe
/// each other); between waves the pools — and hence the Lemma 5.2 bound —
/// tighten, implementing the paper's "progressively narrowed distance
/// boundary". Any snapshot bound is an upper bound on the true k-th
/// distance, so every wave's filter is exact.
const KNN_WAVES: usize = 4;

/// Verify one MkNNQ segment's leaves in waves against the **effective**
/// bound `min(pools[q].bound(), external[q])` — injected cross-shard bounds
/// filter leaf work exactly like locally tightened ones.
fn verify_knn<O, M>(
    ctx: &SearchCtx<'_, O, M>,
    queries: &[O],
    entries: &[Frontier],
    pools: &mut [TopK],
    external: &[f64],
    scratch: &mut SearchScratch,
) where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    if entries.is_empty() {
        return;
    }
    // Order each query's leaves closest-ring-first so the first wave almost
    // certainly contains the true neighbours.
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..entries.len() as u32);
    let gap = |e: &Frontier| {
        let node = ctx.nodes.get(e.node as usize);
        if e.dqp.is_nan() {
            0.0
        } else if e.dqp < node.min_dis {
            node.min_dis - e.dqp
        } else if e.dqp > node.max_dis {
            e.dqp - node.max_dis
        } else {
            0.0
        }
    };
    order.sort_by(|&a, &b| {
        let (ea, eb) = (&entries[a as usize], &entries[b as usize]);
        ea.query
            .cmp(&eb.query)
            .then(gap(ea).partial_cmp(&gap(eb)).expect("finite gap"))
            .then(ea.node.cmp(&eb.node))
    });
    ctx.dev.launch_charged(entries.len() as u64 * 4, 32);

    // Round-robin the ordered entries into waves: wave 0 gets each query's
    // closest leaves.
    for wave_no in 0..KNN_WAVES {
        let SearchScratch {
            order,
            wave,
            tasks,
            bounds,
            kernel_ids,
            kernel_out,
            kernel_bounds,
            kernel_opt,
            ..
        } = scratch;
        wave.clear();
        wave.extend(
            order
                .iter()
                .enumerate()
                .filter(|(i, _)| i % KNN_WAVES == wave_no)
                .map(|(_, &idx)| entries[idx as usize]),
        );
        ctx.fill_leaf_tasks(wave, tasks);
        if tasks.is_empty() {
            continue;
        }
        bounds.clear();
        bounds.extend(pools.iter().zip(external).map(|(p, &e)| p.bound().min(e)));
        let n = tasks.len();
        let mut verified = 0u64;
        let mut abandoned = 0u64;
        // One batched kernel per wave: stored-distance filter inline,
        // survivor distances arena-resolved per query block, candidates
        // inserted after the kernel (threads cannot observe each other's
        // pool updates within a wave).
        ctx.dev.launch_batch(n, || {
            let mut total = 0u64;
            let mut span = 0u64;
            let mut t = 0usize;
            while t < n {
                let q = wave[tasks[t].0 as usize].query;
                let mut u = t;
                while u < n && wave[tasks[u].0 as usize].query == q {
                    u += 1;
                }
                kernel_ids.clear();
                for &(ei, pos) in &tasks[t..u] {
                    let e = wave[ei as usize];
                    let te = ctx.table.get(pos as usize);
                    if te.deleted {
                        total += 1;
                        span = span.max(1);
                        continue;
                    }
                    // Lemma 5.2 filter against the parent pivot, tie-safe
                    // (strict `>`): entries at exactly the bound distance
                    // are verified so the canonical tie-break decides.
                    if !e.dqp.is_nan() && (te.dis - e.dqp).abs() > bounds[q as usize] {
                        total += 3;
                        span = span.max(3);
                        continue;
                    }
                    kernel_ids.push(te.obj);
                }
                if !kernel_ids.is_empty() {
                    // With bounding on, the wave's bound snapshot is the
                    // kernel bound — tie-safe: `Some(d)` iff `d ≤ bound`,
                    // so candidates at exactly the bound are returned and
                    // the canonical `(dis, id)` tie-break decides; an
                    // abandoned candidate has `d > bound` and could never
                    // enter a full pool whose k-th distance *is* the bound.
                    let (w, s, ab) = verify_block(
                        ctx,
                        &queries[q as usize],
                        bounds[q as usize],
                        kernel_ids,
                        kernel_out,
                        kernel_bounds,
                        kernel_opt,
                        |obj, d| pools[q as usize].insert(Neighbor::new(obj, d)),
                    );
                    abandoned += ab;
                    total += w + VERIFY_EXTRA_WORK * kernel_ids.len() as u64;
                    span = span.max(s + VERIFY_EXTRA_WORK);
                    verified += kernel_ids.len() as u64;
                }
                t = u;
            }
            ((), total, span)
        });
        ctx.stats.add(&ctx.stats.leaf_verified, verified);
        ctx.stats.add(&ctx.stats.leaf_abandoned, abandoned);
        ctx.stats.add(&ctx.stats.distance_computations, verified);
        ctx.stats.add(&ctx.stats.leaf_filtered, n as u64 - verified);
    }
}

// ---------------------------------------------------------------------------
// Cross-shard bound exchange
// ---------------------------------------------------------------------------

/// Shared lockstep state for one broadcast-enabled sharded kNN batch: a
/// per-level barrier plus the element-wise running minimum of every shard's
/// published per-query bounds.
///
/// The protocol (driven by
/// [`Gts::batch_knn_lockstep`](crate::Gts), one thread per shard) is
/// two-phase per level: every shard steps its engine, publishes its bound
/// snapshot and elapsed device time, and waits; then every shard reads the
/// combined minima, injects them, aligns its device clock to the slowest
/// shard (the barrier's span cost), and waits again before the next level's
/// publishes — so no publish ever races a read and the whole exchange is
/// deterministic.
///
/// Bounds are stored as `f64` **bit patterns** in atomics: metric distances
/// are non-negative (and `+∞` before a pool fills), and for non-negative
/// IEEE-754 values the unsigned bit-pattern order equals the numeric order,
/// so `fetch_min` on the bits is exactly `f64::min` — lock-free and
/// commutative, hence deterministic regardless of publish interleaving.
pub(crate) struct BoundExchange {
    barrier: Barrier,
    /// Per-query running min of published bounds, as `f64` bit patterns.
    bounds: Vec<AtomicU64>,
    /// Max of per-shard elapsed device cycles since the batch started — the
    /// lockstep critical path all clocks align to at each barrier.
    elapsed: AtomicU64,
    /// Shards whose engines are still descending; the batch ends when this
    /// reaches zero.
    active: AtomicUsize,
}

impl BoundExchange {
    /// An exchange for `shards` lockstep participants over `queries`
    /// per-query bounds.
    pub(crate) fn new(shards: usize, queries: usize) -> BoundExchange {
        BoundExchange {
            barrier: Barrier::new(shards),
            bounds: (0..queries)
                .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
                .collect(),
            elapsed: AtomicU64::new(0),
            active: AtomicUsize::new(shards),
        }
    }

    /// Fold one shard's per-query bound snapshot into the running minima.
    pub(crate) fn publish_bounds(&self, local: &[f64]) {
        debug_assert_eq!(local.len(), self.bounds.len());
        for (slot, &b) in self.bounds.iter().zip(local) {
            slot.fetch_min(b.to_bits(), Ordering::Relaxed);
        }
    }

    /// Read the current per-query global minima into `out`.
    pub(crate) fn read_bounds(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.bounds.len());
        for (o, slot) in out.iter_mut().zip(&self.bounds) {
            *o = f64::from_bits(slot.load(Ordering::Relaxed));
        }
    }

    /// Fold one shard's elapsed device cycles into the lockstep maximum.
    pub(crate) fn publish_elapsed(&self, cycles: u64) {
        self.elapsed.fetch_max(cycles, Ordering::Relaxed);
    }

    /// The lockstep critical path so far: the slowest shard's elapsed
    /// device cycles.
    pub(crate) fn elapsed(&self) -> u64 {
        self.elapsed.load(Ordering::Relaxed)
    }

    /// Mark this shard's engine finished (call exactly once per shard).
    pub(crate) fn retire(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// True once every shard's engine has finished.
    pub(crate) fn all_done(&self) -> bool {
        self.active.load(Ordering::Relaxed) == 0
    }

    /// Block until every shard reaches the barrier.
    pub(crate) fn wait(&self) {
        self.barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_exchange_mins_bounds_and_maxes_elapsed() {
        let ex = BoundExchange::new(1, 3);
        let mut out = vec![0.0; 3];
        ex.read_bounds(&mut out);
        assert!(out.iter().all(|b| b.is_infinite()), "starts at +inf");
        ex.publish_bounds(&[2.0, f64::INFINITY, 0.5]);
        ex.publish_bounds(&[3.0, 1.25, f64::INFINITY]);
        ex.read_bounds(&mut out);
        assert_eq!(out, vec![2.0, 1.25, 0.5], "element-wise running min");
        ex.publish_elapsed(10);
        ex.publish_elapsed(7);
        assert_eq!(ex.elapsed(), 10, "critical path is the max");
        assert!(!ex.all_done());
        ex.retire();
        assert!(ex.all_done());
    }

    #[test]
    fn bound_bit_order_matches_numeric_order() {
        // The fetch_min-on-bits trick requires bit order == numeric order
        // for every value a bound can take (non-negative or +inf).
        let vals = [0.0f64, 1e-300, 0.5, 1.0, 1e300, f64::INFINITY];
        for w in vals.windows(2) {
            assert!(w[0].to_bits() < w[1].to_bits(), "{} vs {}", w[0], w[1]);
        }
    }
}
