//! Host-parallel dispatch of batched distance blocks.
//!
//! Every hot-path kernel in this crate — construction mapping, per-level
//! pivot distances, leaf verification, the cache scan — bottoms out in "one
//! query against one id block" calls to
//! [`BatchMetric::distance_batch`]. This module is the single place that
//! decides *how* such a block executes: serially for small blocks, or cut
//! into fixed-size chunks ([`gpu_sim::exec::BATCH_CHUNK`]) fanned out over
//! host threads via [`Device::run_batch_chunks`] for large ones.
//!
//! The chunk boundaries depend only on the block length, and per-chunk
//! `(work, span)` combine by sum/max, so the dispatched block returns the
//! same outputs and the same accounting as a serial call — host threads
//! are a pure wall-clock lever (the thread-invariance tests prove it
//! end-to-end). Charging stays with the caller's enclosing
//! [`Device::launch_batch`]: one charge per batch, regardless of how many
//! chunks or threads executed it.

use gpu_sim::exec::BATCH_CHUNK;
use gpu_sim::Device;
use metric_space::{chunk_pairs, BatchMetric, ObjectArena};

/// Blocks below this many pairs run serially: with fewer than two chunks
/// there is nothing to fan out, and thread spawn cost would dominate.
pub(crate) const PAR_MIN_PAIRS: usize = 2 * BATCH_CHUNK;

/// Evaluate `out[i] = d(query, objects[ids[i]])` over one id block,
/// returning the block's `(total_work, span)` — the parallel-aware
/// equivalent of calling [`BatchMetric::distance_batch`] directly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn distance_block<O, M>(
    dev: &Device,
    threads: usize,
    metric: &M,
    objects: &[O],
    arena: Option<&ObjectArena>,
    query: &O,
    ids: &[u32],
    out: &mut [f64],
) -> (u64, u64)
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    if threads <= 1 || ids.len() < PAR_MIN_PAIRS {
        return metric.distance_batch(objects, arena, query, ids, out);
    }
    let chunks = chunk_pairs(BATCH_CHUNK, ids, out);
    dev.run_batch_chunks(threads, chunks, |c| {
        metric.distance_batch(objects, arena, query, c.ids, c.out)
    })
}

/// One chunk of a bounded distance block: disjoint `(ids, bounds, out)`
/// slices cut at the same fixed [`BATCH_CHUNK`] boundaries as
/// [`chunk_pairs`], so the bounded kernels inherit the identical
/// determinism argument (chunk boundaries depend only on block length;
/// per-chunk `(work, span)` combine by sum/max).
struct BoundedChunk<'a> {
    ids: &'a [u32],
    bounds: &'a [f64],
    out: &'a mut [Option<f64>],
}

fn chunk_bounded<'a>(
    chunk: usize,
    ids: &'a [u32],
    bounds: &'a [f64],
    out: &'a mut [Option<f64>],
) -> Vec<BoundedChunk<'a>> {
    assert!(chunk > 0, "chunk size must be positive");
    assert_eq!(ids.len(), bounds.len());
    assert_eq!(ids.len(), out.len());
    // Same `slice::chunks` boundary policy as `chunk_pairs` — one source
    // of truth, so the two chunkers can never drift.
    ids.chunks(chunk)
        .zip(bounds.chunks(chunk))
        .zip(out.chunks_mut(chunk))
        .map(|((ids, bounds), out)| BoundedChunk { ids, bounds, out })
        .collect()
}

/// Evaluate `out[i] = Some(d)` iff `d = d(query, objects[ids[i]]) ≤
/// bounds[i]` over one id block via the early-abandoning kernel
/// ([`BatchMetric::distance_batch_bounded`]), returning `(total_work,
/// span)` — the bounded sibling of [`distance_block`], with the same
/// serial-below-threshold / chunked-above dispatch and the same
/// thread-invariance guarantee.
#[allow(clippy::too_many_arguments)]
pub(crate) fn distance_block_bounded<O, M>(
    dev: &Device,
    threads: usize,
    metric: &M,
    objects: &[O],
    arena: Option<&ObjectArena>,
    query: &O,
    ids: &[u32],
    bounds: &[f64],
    out: &mut [Option<f64>],
) -> (u64, u64)
where
    O: Send + Sync,
    M: BatchMetric<O>,
{
    // The bounded kernels return `Err(LayoutUnsupported)` when handed an
    // arena whose layout they cannot resolve (e.g. the banded edit kernel
    // on an aligned arena). `Gts` only ever pairs a metric with an arena it
    // built itself via `build_arena_with` — which degrades the layout to
    // `Legacy` for exactly those metrics — so a mismatch here is an index
    // invariant violation, not a runtime condition.
    if threads <= 1 || ids.len() < PAR_MIN_PAIRS {
        return metric
            .distance_batch_bounded(objects, arena, query, ids, bounds, out)
            .expect("index paired a bounded kernel with an unsupported arena layout");
    }
    let chunks = chunk_bounded(BATCH_CHUNK, ids, bounds, out);
    dev.run_batch_chunks(threads, chunks, |c| {
        metric
            .distance_batch_bounded(objects, arena, query, c.ids, c.bounds, c.out)
            .expect("index paired a bounded kernel with an unsupported arena layout")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use metric_space::gen;
    use metric_space::{Item, ItemMetric};

    #[test]
    fn parallel_block_matches_serial_bitwise() {
        let items: Vec<Item> = gen::words(512, 3);
        let metric = ItemMetric::Edit;
        let arena = metric.build_arena(&items).expect("arena");
        let dev = gpu_sim::Device::new(DeviceConfig::rtx_2080_ti());
        let n = PAR_MIN_PAIRS + 777; // forces the chunked path
        let ids: Vec<u32> = (0..n as u32).map(|i| i % items.len() as u32).collect();
        let q = &items[0];
        let mut serial = vec![0.0; n];
        let expect = metric.distance_batch(&items, Some(&arena), q, &ids, &mut serial);
        for threads in [1usize, 2, 8] {
            let mut out = vec![0.0; n];
            let got = distance_block(
                &dev,
                threads,
                &metric,
                &items,
                Some(&arena),
                q,
                &ids,
                &mut out,
            );
            assert_eq!(out, serial, "threads = {threads}");
            assert_eq!(got, expect, "threads = {threads}: accounting");
        }
    }

    #[test]
    fn parallel_bounded_block_matches_serial_bitwise() {
        let items: Vec<Item> = gen::words(512, 5);
        let metric = ItemMetric::Edit;
        let arena = metric.build_arena(&items).expect("arena");
        let dev = gpu_sim::Device::new(DeviceConfig::rtx_2080_ti());
        let n = PAR_MIN_PAIRS + 311; // forces the chunked path
        let ids: Vec<u32> = (0..n as u32).map(|i| i % items.len() as u32).collect();
        let bounds: Vec<f64> = (0..n).map(|i| (i % 4) as f64).collect();
        let q = &items[0];
        let mut serial = vec![None; n];
        let expect = metric
            .distance_batch_bounded(&items, Some(&arena), q, &ids, &bounds, &mut serial)
            .expect("legacy arena");
        for threads in [1usize, 2, 8] {
            let mut out = vec![None; n];
            let got = distance_block_bounded(
                &dev,
                threads,
                &metric,
                &items,
                Some(&arena),
                q,
                &ids,
                &bounds,
                &mut out,
            );
            assert_eq!(out, serial, "threads = {threads}");
            assert_eq!(got, expect, "threads = {threads}: accounting");
        }
    }
}
