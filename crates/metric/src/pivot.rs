//! Pivot selection.
//!
//! The paper uses FFT (farthest-first traversal, the k-center heuristic of
//! Hochbaum & Shmoys) as its pivot selector, with a random first pivot —
//! citing \[62\] that no universally optimal pivot selector exists. The CPU
//! version here is used by the CPU baselines (MVPT, EGNAT) and by tests; the
//! GTS index runs the same logic as device kernels in `gts-core`.

use crate::dist::Metric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Farthest-first traversal over `ids` (indices into `items`): the first
/// pivot is seeded randomly, each subsequent pivot maximises the minimum
/// distance to the already-chosen pivots.
///
/// Returns `min(k, ids.len())` distinct positions *within `ids`*.
pub fn fft_select<O, M: Metric<O>>(
    items: &[O],
    ids: &[u32],
    metric: &M,
    k: usize,
    seed: u64,
) -> Vec<u32> {
    if ids.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let first = ids[rng.gen_range(0..ids.len())];
    let mut pivots = vec![first];
    // min distance from each candidate to the chosen pivot set
    let mut min_d: Vec<f64> = ids
        .iter()
        .map(|&i| metric.distance(&items[i as usize], &items[first as usize]))
        .collect();
    while pivots.len() < k.min(ids.len()) {
        let (best_pos, _) = min_d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN distance"))
            .expect("non-empty");
        let next = ids[best_pos];
        if pivots.contains(&next) {
            break; // all remaining candidates coincide with chosen pivots
        }
        pivots.push(next);
        for (pos, &i) in ids.iter().enumerate() {
            let d = metric.distance(&items[i as usize], &items[next as usize]);
            if d < min_d[pos] {
                min_d[pos] = d;
            }
        }
    }
    pivots
}

/// One FFT step: the element of `ids` farthest from `from` (an object id).
/// This is the zero-extra-distance pivot rule GTS uses for non-root nodes,
/// where `d(·, parent pivot)` is already materialised in the table list.
pub fn farthest_from<O, M: Metric<O>>(items: &[O], ids: &[u32], metric: &M, from: u32) -> u32 {
    assert!(!ids.is_empty());
    let mut best = ids[0];
    let mut best_d = -1f64;
    for &i in ids {
        let d = metric.distance(&items[i as usize], &items[from as usize]);
        if d > best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ItemMetric, Metric};
    use crate::object::Item;

    fn grid() -> Vec<Item> {
        // 2-d grid with two far-apart clusters.
        let mut v = Vec::new();
        for i in 0..5 {
            v.push(Item::vector(vec![i as f32, 0.0]));
            v.push(Item::vector(vec![i as f32 + 100.0, 0.0]));
        }
        v
    }

    #[test]
    fn fft_spreads_across_clusters() {
        let items = grid();
        let ids: Vec<u32> = (0..items.len() as u32).collect();
        let pivots = fft_select(&items, &ids, &ItemMetric::L2, 2, 42);
        assert_eq!(pivots.len(), 2);
        let a = items[pivots[0] as usize].as_vector().expect("vec")[0];
        let b = items[pivots[1] as usize].as_vector().expect("vec")[0];
        // One pivot per cluster: their x-coordinates differ by ~100.
        assert!((a - b).abs() > 90.0, "pivots {a} {b} not spread");
    }

    #[test]
    fn fft_deterministic_in_seed() {
        let items = grid();
        let ids: Vec<u32> = (0..items.len() as u32).collect();
        let a = fft_select(&items, &ids, &ItemMetric::L2, 3, 7);
        let b = fft_select(&items, &ids, &ItemMetric::L2, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn fft_caps_at_population() {
        let items = grid();
        let ids: Vec<u32> = vec![0, 1, 2];
        let pivots = fft_select(&items, &ids, &ItemMetric::L2, 10, 7);
        assert!(pivots.len() <= 3);
        for p in &pivots {
            assert!(ids.contains(p));
        }
    }

    #[test]
    fn farthest_from_is_argmax() {
        let items = grid();
        let ids: Vec<u32> = (0..items.len() as u32).collect();
        let far = farthest_from(&items, &ids, &ItemMetric::L2, 0);
        let d = ItemMetric::L2.distance(&items[0], &items[far as usize]);
        for &i in &ids {
            assert!(ItemMetric::L2.distance(&items[0], &items[i as usize]) <= d);
        }
    }
}
