//! # metric-space
//!
//! Metric-space substrate for the GTS reproduction (SIGMOD 2024,
//! arXiv:2404.00966). A *metric space* is a pair `(M, d)` where `d` is a
//! distance satisfying symmetry, non-negativity, identity, and the triangle
//! inequality (paper §3). This crate provides everything the indexes above it
//! need and nothing GPU-specific:
//!
//! * [`Metric`] — the distance-metric trait, with per-call *work* accounting
//!   (work units ≈ arithmetic operations) used by the simulated cost models;
//! * [`Item`]/[`ItemMetric`] — a dynamic object/metric pair covering the five
//!   evaluation datasets (strings under edit distance, vectors under L1 / L2 /
//!   angular-cosine distance);
//! * [`ObjectArena`]/[`BatchMetric`] — the flat object arena (contiguous
//!   payload buffers + offsets) and the batched distance-kernel layer the
//!   index hot paths launch one level at a time, with an early-abandoning
//!   (Ukkonen-banded) variant for bounded verification;
//! * [`Dataset`] and [`gen`] — seeded synthetic generators mirroring the
//!   paper's Words, T-Loc, Vector, DNA, and Color datasets (Table 2);
//! * [`SimilarityIndex`] — the query interface shared by GTS and every
//!   baseline (metric range query MRQ, Def. 3.1; metric kNN query MkNNQ,
//!   Def. 3.2);
//! * [`Partitioner`] — deterministic id→shard assignment (round-robin or
//!   multiplicative hash) used by the multi-device sharded index;
//! * [`pivot`] — farthest-first-traversal (FFT) pivot selection;
//! * [`lemmas`] — the triangle-inequality pruning predicates of Lemmas 5.1
//!   and 5.2;
//! * [`stats`] — sampled distance-distribution statistics feeding the §5.3
//!   cost model.

#![warn(missing_docs)]
pub mod arena;
pub mod batch;
pub mod dataset;
pub mod dist;
pub mod gen;
pub mod index;
pub mod lemmas;
pub mod object;
pub mod partition;
pub mod pivot;
pub mod stats;

pub use arena::{AlignedBlock, ArenaKind, ArenaLayout, LayoutUnsupported, ObjectArena};
pub use batch::{chunk_pairs, BatchChunk, BatchMetric};
pub use dataset::{Dataset, DatasetKind};
pub use dist::{EditDistance, EditScratch, ItemMetric, Metric, VectorMetric};
pub use index::{DynamicIndex, IndexError, Neighbor, SimilarityIndex};
pub use object::{Footprint, Item};
pub use partition::{PartitionStrategy, Partitioner};

/// Identifier of an object inside a dataset (index into `Dataset::items`).
pub type ObjId = u32;
