//! Batched distance kernels over a flat [`ObjectArena`].
//!
//! The scalar [`Metric`] interface evaluates one pair at a time, which is
//! how the index's *logic* is written — but the hot paths (pivot distances
//! per level, leaf verification, construction mapping) always evaluate a
//! query against **many** stored objects at once. [`BatchMetric`] is that
//! kernel-shaped interface: resolve ids against the arena, stream payloads
//! from contiguous buffers, reuse DP scratch across the whole batch, and
//! report the batch's total work and critical path in one go so the device
//! charges a single kernel per batch instead of bookkeeping per pair.
//!
//! Guarantees relied on by the exactness tests and the simulated clock:
//!
//! * `distance_batch` is **bit-identical** to calling [`Metric::distance`]
//!   per pair (same float operations in the same order), and its
//!   `(total, span)` equals the sum/max of per-pair [`Metric::work`] — so
//!   an arena-backed search produces the same answers *and the same
//!   simulated cycle counts* as the per-pair path it replaced.
//! * `distance_batch` is **layout-invariant**: resolving the same ids from
//!   a legacy or an [`ArenaLayout::Aligned`] arena produces bit-identical
//!   distances and identical `(total, span)` — both layouts run the one
//!   canonical lane-summation order of [`crate::dist::l2`], and the work
//!   model reads logical lengths only. The aligned path merely iterates
//!   whole 8-lane blocks (query padded once per batch), the shape rustc
//!   autovectorizes.
//! * `distance_batch_bounded` may abandon early (Ukkonen banding for edit
//!   distance) but is exact whenever it reports `Some(d)`, and `Some(d)` is
//!   reported iff `d ≤ bound`. It returns a typed [`LayoutUnsupported`]
//!   error — never a silent per-pair fallback — when a kernel cannot
//!   resolve the arena's layout (the banded edit kernel is exempt from the
//!   aligned layout; its rows are variable-width).
//! * The kernels are **chunk-safe**: evaluating disjoint sub-slices of one
//!   id block concurrently from several host threads (see [`chunk_pairs`])
//!   produces the same outputs and the same summed `(total, span)` as one
//!   serial call over the whole block. Each pair's result depends only on
//!   `(query, id)`, mutable state is confined to per-thread DP scratch
//!   ([`crate::dist::with_edit_scratch`]), and the arena is read-only — so
//!   callers may slice the arena-resolved block at any fixed chunk
//!   boundary and fan the chunks out.

use crate::arena::{AlignedBlock, ArenaKind, ArenaLayout, LayoutUnsupported, ObjectArena};
use crate::dist::{
    self, edit_distance_bounded_bytes_with, edit_distance_bytes_with, with_edit_scratch,
    EditDistance, ItemMetric, Metric, VectorMetric,
};
use crate::object::Item;

/// Scalar per-pair fallback shared by the default trait methods and by
/// specialised implementations when no arena is available.
fn scalar_batch<O, M: Metric<O> + ?Sized>(
    metric: &M,
    objects: &[O],
    query: &O,
    ids: &[u32],
    out: &mut [f64],
) -> (u64, u64) {
    let mut total = 0u64;
    let mut span = 0u64;
    for (slot, &id) in out.iter_mut().zip(ids) {
        let obj = &objects[id as usize];
        *slot = metric.distance(query, obj);
        let w = metric.work(query, obj);
        total += w;
        span = span.max(w);
    }
    (total, span)
}

fn scalar_batch_bounded<O, M: Metric<O> + ?Sized>(
    metric: &M,
    objects: &[O],
    query: &O,
    ids: &[u32],
    bounds: &[f64],
    out: &mut [Option<f64>],
) -> (u64, u64) {
    let mut total = 0u64;
    let mut span = 0u64;
    for ((slot, &id), &bound) in out.iter_mut().zip(ids).zip(bounds) {
        let obj = &objects[id as usize];
        let d = metric.distance(query, obj);
        *slot = (d <= bound).then_some(d);
        let w = metric.work(query, obj);
        total += w;
        span = span.max(w);
    }
    (total, span)
}

/// A [`Metric`] that can evaluate one query against many stored objects as
/// a single batch, optionally resolving payloads from a flat
/// [`ObjectArena`].
///
/// Every method has a scalar default, so `impl BatchMetric<MyObj> for
/// MyMetric {}` suffices to plug a custom metric into the index — the
/// batched entry points then dispatch to [`Metric::distance`] per pair with
/// identical results and work accounting, just without the flat-layout
/// speedup. [`ItemMetric`] overrides everything with arena-backed kernels.
///
/// # Chunk-safety contract
///
/// The index hot paths may split one id block into fixed-size chunks (see
/// [`chunk_pairs`]) and call `distance_batch` on the chunks from several
/// host threads concurrently. Implementations must therefore keep each
/// pair's result a pure function of `(query, id)` and confine any mutable
/// scratch to the call or the thread (the shipped edit kernels use the
/// per-thread scratch of [`crate::dist::with_edit_scratch`]). The scalar
/// defaults satisfy this automatically — `Metric` is `Send + Sync` and the
/// defaults hold no state.
pub trait BatchMetric<O>: Metric<O> {
    /// Build the flat arena for `objects`, or `None` when this metric (or
    /// this object type) has no flat layout — callers then pass
    /// `arena: None` to the batch kernels and get the scalar fallback.
    fn build_arena(&self, _objects: &[O]) -> Option<ObjectArena> {
        None
    }

    /// [`build_arena`] with an explicit payload layout request. The default
    /// ignores the request (custom metrics have no block-wise kernels);
    /// [`ItemMetric`] honours [`ArenaLayout::Aligned`] for the Lp vector
    /// metrics and degrades it to legacy for text and angular payloads,
    /// whose kernels have no block form.
    ///
    /// [`build_arena`]: BatchMetric::build_arena
    fn build_arena_with(&self, objects: &[O], layout: ArenaLayout) -> Option<ObjectArena> {
        let _ = layout;
        self.build_arena(objects)
    }

    /// Append one object to an arena previously produced by
    /// [`build_arena`]; `false` if the object cannot be stored flat (the
    /// caller should drop the arena and fall back).
    ///
    /// [`build_arena`]: BatchMetric::build_arena
    fn arena_push(&self, _arena: &mut ObjectArena, _obj: &O) -> bool {
        false
    }

    /// Batched kernel: `out[i] = d(query, objects[ids[i]])`.
    ///
    /// Returns `(total_work, span)` over the batch — the sum and max of the
    /// per-pair [`Metric::work`] — for one aggregate device charge.
    ///
    /// # Panics
    /// Implementations may panic if `ids.len() != out.len()` or an id is
    /// out of range.
    fn distance_batch(
        &self,
        objects: &[O],
        arena: Option<&ObjectArena>,
        query: &O,
        ids: &[u32],
        out: &mut [f64],
    ) -> (u64, u64) {
        let _ = arena;
        scalar_batch(self, objects, query, ids, out)
    }

    /// Early-abandoning batched kernel: `out[i] = Some(d)` iff
    /// `d = d(query, objects[ids[i]]) ≤ bounds[i]`, else `None`.
    ///
    /// `Some` answers are always exact. Implementations may abandon an
    /// evaluation once it provably exceeds its bound (and charge only the
    /// abandoned prefix's work); the default computes full distances and
    /// charges full work.
    ///
    /// # Errors
    /// A kernel that cannot resolve payloads from the arena's layout must
    /// return [`LayoutUnsupported`] rather than silently fall back to
    /// per-pair access (silent fallback would hide a mis-threaded layout
    /// behind a wall-clock regression). The shipped case is the
    /// Ukkonen-banded **edit** kernel, which is exempt from the aligned
    /// layout — its byte rows are variable-width, so no aligned text arena
    /// even exists; only a kind-mismatched (vector) aligned arena can
    /// trigger the error. The default implementation never errors (it
    /// ignores the arena entirely, which is its documented contract, not a
    /// fallback).
    fn distance_batch_bounded(
        &self,
        objects: &[O],
        arena: Option<&ObjectArena>,
        query: &O,
        ids: &[u32],
        bounds: &[f64],
        out: &mut [Option<f64>],
    ) -> Result<(u64, u64), LayoutUnsupported> {
        let _ = arena;
        Ok(scalar_batch_bounded(self, objects, query, ids, bounds, out))
    }
}

/// One chunk of a batched distance kernel: a disjoint slice of the id
/// block and the output slice it fills.
///
/// Produced by [`chunk_pairs`]; consumed by a host-thread worker calling
/// [`BatchMetric::distance_batch`] on exactly this slice pair. Chunks of
/// one block never overlap, so they can execute concurrently.
#[derive(Debug)]
pub struct BatchChunk<'a> {
    /// Object ids this chunk resolves (against the arena or object store).
    pub ids: &'a [u32],
    /// Output slots, parallel to `ids`.
    pub out: &'a mut [f64],
}

/// Split one `(ids, out)` block into fixed-size chunks of at most `chunk`
/// pairs each, in index order.
///
/// The boundaries depend only on `chunk` and the block length — never on
/// how many threads will run the chunks — which is what makes the
/// host-parallel execution deterministic: every chunk computes the same
/// pairs and reports the same `(work, span)` no matter which worker picks
/// it up. An empty block yields no chunks.
///
/// # Panics
/// Panics if `chunk == 0` or `ids.len() != out.len()`.
pub fn chunk_pairs<'a>(chunk: usize, ids: &'a [u32], out: &'a mut [f64]) -> Vec<BatchChunk<'a>> {
    assert!(chunk > 0, "chunk size must be positive");
    assert_eq!(ids.len(), out.len());
    // `slice::chunks` *is* the boundary policy: every chunk exactly
    // `chunk` items except a shorter tail. Parallel slices cut with the
    // same call share boundaries by construction — the property the
    // bounded-kernel chunker in gts-core relies on too.
    ids.chunks(chunk)
        .zip(out.chunks_mut(chunk))
        .map(|(ids, out)| BatchChunk { ids, out })
        .collect()
}

/// Clamp a float radius to the integer bound the banded edit DP expects:
/// an integer distance `d` satisfies `d ≤ r` iff `d ≤ ⌊r⌋`. Negative and
/// NaN radii admit no distance at all.
fn edit_bound(bound: f64) -> Option<u32> {
    if bound.is_nan() || bound < 0.0 {
        return None;
    }
    Some(bound.floor().min(f64::from(u32::MAX)) as u32)
}

impl BatchMetric<Item> for ItemMetric {
    fn build_arena(&self, objects: &[Item]) -> Option<ObjectArena> {
        self.build_arena_with(objects, ArenaLayout::Legacy)
    }

    fn build_arena_with(&self, objects: &[Item], layout: ArenaLayout) -> Option<ObjectArena> {
        // Only the Lp metrics have block-wise kernels; an aligned request
        // for edit (variable-width byte rows) or angular (scalar kernel)
        // degrades to the legacy layout.
        let layout = match self {
            ItemMetric::Vector(m) if m.block_kernel().is_some() => layout,
            _ => ArenaLayout::Legacy,
        };
        let arena = ObjectArena::from_items_with(objects, layout)?;
        // The arena family must match the metric, or the kernels below
        // would be handed payloads of the wrong type.
        match (self, arena.kind()) {
            (ItemMetric::Edit, ArenaKind::Text) => Some(arena),
            (ItemMetric::Vector(_), ArenaKind::Vector) => Some(arena),
            _ => None,
        }
    }

    fn arena_push(&self, arena: &mut ObjectArena, obj: &Item) -> bool {
        arena.push_item(obj)
    }

    fn distance_batch(
        &self,
        objects: &[Item],
        arena: Option<&ObjectArena>,
        query: &Item,
        ids: &[u32],
        out: &mut [f64],
    ) -> (u64, u64) {
        assert_eq!(ids.len(), out.len());
        let (mut total, mut span) = (0u64, 0u64);
        match (self, arena, query) {
            (ItemMetric::Edit, Some(arena), Item::Text(q)) => {
                let q = q.as_bytes();
                with_edit_scratch(|scratch| {
                    for (slot, &id) in out.iter_mut().zip(ids) {
                        let o = arena.text_bytes(id);
                        *slot = f64::from(edit_distance_bytes_with(q, o, scratch));
                        let w = EditDistance::work_full_lens(q.len(), o.len());
                        total += w;
                        span = span.max(w);
                    }
                });
            }
            (ItemMetric::Vector(m), Some(arena), Item::Vector(q)) => {
                match (arena.layout(), m.block_kernel()) {
                    (ArenaLayout::Aligned, Some(_)) => {
                        // Pad the query once for the whole batch; every
                        // pair is then a pure full-block loop. Work depends
                        // only on the query's dimensionality, so the charge
                        // is identical to the legacy layout's. Dispatch is
                        // a direct match (not the `block_kernel` fn pointer)
                        // so the block kernel inlines into the id loop.
                        let qb = AlignedBlock::pack(q);
                        let w = m.work_len(q.len());
                        match m {
                            VectorMetric::L1 => {
                                for (slot, &id) in out.iter_mut().zip(ids) {
                                    debug_assert_eq!(arena.arity(id), q.len());
                                    *slot = dist::l1_blocks(&qb, arena.blocks(id));
                                }
                            }
                            _ => {
                                for (slot, &id) in out.iter_mut().zip(ids) {
                                    debug_assert_eq!(arena.arity(id), q.len());
                                    *slot = dist::l2_blocks(&qb, arena.blocks(id));
                                }
                            }
                        }
                        total = w * ids.len() as u64;
                        span = if ids.is_empty() { 0 } else { w };
                    }
                    // Aligned arenas are never built for angular
                    // (`build_arena_with` degrades the request), but a
                    // hand-built one still resolves correctly per pair.
                    (ArenaLayout::Aligned, None) => {
                        return scalar_batch(self, objects, query, ids, out)
                    }
                    (ArenaLayout::Legacy, _) => {
                        for (slot, &id) in out.iter_mut().zip(ids) {
                            let o = arena.vector(id);
                            *slot = m.distance(q, o);
                            let w = m.work(q, o);
                            total += w;
                            span = span.max(w);
                        }
                    }
                }
            }
            _ => return scalar_batch(self, objects, query, ids, out),
        }
        (total, span)
    }

    fn distance_batch_bounded(
        &self,
        objects: &[Item],
        arena: Option<&ObjectArena>,
        query: &Item,
        ids: &[u32],
        bounds: &[f64],
        out: &mut [Option<f64>],
    ) -> Result<(u64, u64), LayoutUnsupported> {
        assert_eq!(ids.len(), out.len());
        assert_eq!(ids.len(), bounds.len());
        let (mut total, mut span) = (0u64, 0u64);
        // Both resolution paths (arena bytes vs boxed `Item` payloads) run
        // the same banded DP and charge the same banded work, so enabling
        // or disabling the arena never changes simulated cycle counts.
        match (self, query) {
            (ItemMetric::Edit, Item::Text(q)) => {
                // The banded edit kernel is exempt from the aligned layout:
                // its byte rows are variable-width and `build_arena_with`
                // never builds an aligned text arena, so an aligned arena
                // here is a mis-threaded (vector) arena — reject it with a
                // typed error instead of resolving garbage payloads.
                if arena.is_some_and(|a| a.layout() == ArenaLayout::Aligned) {
                    return Err(LayoutUnsupported {
                        kernel: "edit_bounded",
                        layout: ArenaLayout::Aligned,
                    });
                }
                let qb = q.as_bytes();
                with_edit_scratch(|scratch| {
                    for ((slot, &id), &bound) in out.iter_mut().zip(ids).zip(bounds) {
                        let o = match arena {
                            Some(arena) => arena.text_bytes(id),
                            None => objects[id as usize]
                                .as_text()
                                .expect("edit metric over text items")
                                .as_bytes(),
                        };
                        match edit_bound(bound) {
                            None => *slot = None,
                            Some(b) => {
                                *slot = edit_distance_bounded_bytes_with(qb, o, b, scratch)
                                    .map(f64::from);
                                // Charge the banded DP, not the full table.
                                let w = EditDistance::work_bounded_lens(qb.len(), o.len(), b);
                                total += w;
                                span = span.max(w);
                            }
                        }
                    }
                });
            }
            (ItemMetric::Vector(m), Item::Vector(q)) => {
                let aligned = arena
                    .filter(|a| a.layout() == ArenaLayout::Aligned)
                    .and_then(|a| m.block_kernel().map(|k| (a, k)));
                if let Some((arena, kernel)) = aligned {
                    // Same block-wise canonical order as `distance_batch`,
                    // with the bound check applied to the exact result —
                    // bit-identical accept/reject to the legacy layout.
                    let qb = AlignedBlock::pack(q);
                    let w = m.work_len(q.len());
                    for ((slot, &id), &bound) in out.iter_mut().zip(ids).zip(bounds) {
                        debug_assert_eq!(arena.arity(id), q.len());
                        let d = kernel(&qb, arena.blocks(id));
                        *slot = (d <= bound).then_some(d);
                    }
                    total = w * ids.len() as u64;
                    span = if ids.is_empty() { 0 } else { w };
                } else {
                    // A block-less metric (angular) handed an aligned arena
                    // resolves from the object store instead.
                    let legacy = arena.filter(|a| a.layout() == ArenaLayout::Legacy);
                    for ((slot, &id), &bound) in out.iter_mut().zip(ids).zip(bounds) {
                        let o = match legacy {
                            Some(arena) => arena.vector(id),
                            None => objects[id as usize]
                                .as_vector()
                                .expect("vector metric over vector items"),
                        };
                        let d = m.distance(q, o);
                        *slot = (d <= bound).then_some(d);
                        let w = m.work(q, o);
                        total += w;
                        span = span.max(w);
                    }
                }
            }
            _ => return Ok(scalar_batch_bounded(self, objects, query, ids, bounds, out)),
        }
        Ok((total, span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words() -> Vec<Item> {
        ["", "a", "ab", "abc", "kitten", "sitting", "zzzz"]
            .iter()
            .map(|s| Item::text(*s))
            .collect()
    }

    fn vectors() -> Vec<Item> {
        (0..8)
            .map(|i| Item::vector(vec![i as f32, -(i as f32) * 0.5, 2.0]))
            .collect()
    }

    #[test]
    fn batch_matches_scalar_for_every_item_metric() {
        for (metric, items) in [
            (ItemMetric::Edit, words()),
            (ItemMetric::L1, vectors()),
            (ItemMetric::L2, vectors()),
            (ItemMetric::ANGULAR, vectors()),
        ] {
            let arena = metric.build_arena(&items).expect("homogeneous");
            let ids: Vec<u32> = (0..items.len() as u32).collect();
            let q = &items[1];
            let mut got = vec![0.0; ids.len()];
            let (total, span) = metric.distance_batch(&items, Some(&arena), q, &ids, &mut got);
            let mut expect_total = 0u64;
            let mut expect_span = 0u64;
            for (i, &id) in ids.iter().enumerate() {
                let o = &items[id as usize];
                assert!(
                    got[i].to_bits() == metric.distance(q, o).to_bits(),
                    "{}: id {id} batch {} scalar {}",
                    metric.name(),
                    got[i],
                    metric.distance(q, o)
                );
                let w = metric.work(q, o);
                expect_total += w;
                expect_span = expect_span.max(w);
            }
            assert_eq!(
                (total, span),
                (expect_total, expect_span),
                "{}",
                metric.name()
            );
        }
    }

    #[test]
    fn fallback_without_arena_matches_too() {
        let items = words();
        let ids: Vec<u32> = (0..items.len() as u32).collect();
        let mut with = vec![0.0; ids.len()];
        let mut without = vec![0.0; ids.len()];
        let arena = ItemMetric::Edit.build_arena(&items).expect("arena");
        ItemMetric::Edit.distance_batch(&items, Some(&arena), &items[5], &ids, &mut with);
        ItemMetric::Edit.distance_batch(&items, None, &items[5], &ids, &mut without);
        assert_eq!(with, without);
    }

    #[test]
    fn bounded_is_exact_when_some() {
        let items = words();
        let arena = ItemMetric::Edit.build_arena(&items).expect("arena");
        let ids: Vec<u32> = (0..items.len() as u32).collect();
        for q in &items {
            for bound in [0.0, 1.0, 2.5, 10.0, -1.0, f64::INFINITY, f64::NAN, 1e300] {
                let bounds = vec![bound; ids.len()];
                let mut out = vec![None; ids.len()];
                ItemMetric::Edit
                    .distance_batch_bounded(&items, Some(&arena), q, &ids, &bounds, &mut out)
                    .expect("legacy text arena");
                for (&id, slot) in ids.iter().zip(&out) {
                    let real = ItemMetric::Edit.distance(q, &items[id as usize]);
                    match slot {
                        Some(d) => {
                            assert_eq!(*d, real);
                            assert!(*d <= bound);
                        }
                        // A NaN radius admits nothing and must abandon all.
                        None => assert!(
                            bound.is_nan() || real > bound,
                            "abandoned but {real} <= {bound}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_charges_identically_with_and_without_arena() {
        for (metric, items) in [(ItemMetric::Edit, words()), (ItemMetric::L2, vectors())] {
            let arena = metric.build_arena(&items).expect("arena");
            let ids: Vec<u32> = (0..items.len() as u32).collect();
            let bounds = vec![2.0; ids.len()];
            let mut with = vec![None; ids.len()];
            let mut without = vec![None; ids.len()];
            let q = &items[2];
            let charged_with = metric
                .distance_batch_bounded(&items, Some(&arena), q, &ids, &bounds, &mut with)
                .expect("legacy arena");
            let charged_without = metric
                .distance_batch_bounded(&items, None, q, &ids, &bounds, &mut without)
                .expect("no arena");
            assert_eq!(with, without, "{}", metric.name());
            assert_eq!(charged_with, charged_without, "{}", metric.name());
        }
    }

    #[test]
    fn chunk_pairs_fixed_boundaries() {
        let ids: Vec<u32> = (0..10).collect();
        let mut out = vec![0.0; 10];
        let jobs = chunk_pairs(4, &ids, &mut out);
        let lens: Vec<usize> = jobs.iter().map(|j| j.ids.len()).collect();
        assert_eq!(lens, vec![4, 4, 2]);
        assert_eq!(jobs[2].ids, &[8, 9]);
        let mut empty_out: Vec<f64> = Vec::new();
        assert!(chunk_pairs(4, &[], &mut empty_out).is_empty());
        // A block no larger than one chunk stays whole.
        let mut out1 = vec![0.0; 4];
        assert_eq!(chunk_pairs(4, &ids[..4], &mut out1).len(), 1);
    }

    #[test]
    fn chunked_parallel_execution_matches_serial() {
        // Run the same id block serially and as concurrently-executed
        // chunks; outputs must be bit-identical and (total, span) must sum
        // to the same aggregate.
        for (metric, items) in [(ItemMetric::Edit, words()), (ItemMetric::L2, vectors())] {
            let arena = metric.build_arena(&items).expect("arena");
            let n = 1000usize;
            let ids: Vec<u32> = (0..n as u32).map(|i| i % items.len() as u32).collect();
            let q = items[3].clone();
            let mut serial = vec![0.0; n];
            let expect = metric.distance_batch(&items, Some(&arena), &q, &ids, &mut serial);
            let mut parallel = vec![0.0; n];
            let jobs = chunk_pairs(64, &ids, &mut parallel);
            let got = std::thread::scope(|s| {
                let handles: Vec<_> = jobs
                    .into_iter()
                    .map(|job| {
                        let (metric, items, arena, q) = (&metric, &items, &arena, &q);
                        s.spawn(move || {
                            metric.distance_batch(items, Some(arena), q, job.ids, job.out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chunk worker"))
                    .fold((0u64, 0u64), |(t, sp), (w, s)| (t + w, sp.max(s)))
            });
            assert_eq!(serial, parallel, "{}", metric.name());
            assert_eq!(expect, got, "{}: chunked accounting", metric.name());
        }
    }

    #[test]
    fn kind_mismatch_yields_no_arena() {
        assert!(ItemMetric::Edit.build_arena(&vectors()).is_none());
        assert!(ItemMetric::L2.build_arena(&words()).is_none());
    }

    #[test]
    fn aligned_layout_honoured_only_for_lp_metrics() {
        let v = vectors();
        for metric in [ItemMetric::L1, ItemMetric::L2] {
            let a = metric
                .build_arena_with(&v, ArenaLayout::Aligned)
                .expect("arena");
            assert_eq!(a.layout(), ArenaLayout::Aligned, "{}", metric.name());
        }
        let a = ItemMetric::ANGULAR
            .build_arena_with(&v, ArenaLayout::Aligned)
            .expect("arena");
        assert_eq!(
            a.layout(),
            ArenaLayout::Legacy,
            "angular has no block kernel"
        );
        let a = ItemMetric::Edit
            .build_arena_with(&words(), ArenaLayout::Aligned)
            .expect("arena");
        assert_eq!(
            a.layout(),
            ArenaLayout::Legacy,
            "text rows have no block form"
        );
    }

    #[test]
    fn aligned_batch_matches_legacy_bitwise() {
        // Ragged-free but tail-exercising dims: 3 lanes of padding.
        let items: Vec<Item> = (0..9)
            .map(|i| {
                Item::vector(
                    (0..13)
                        .map(|d| (i * 13 + d) as f32 * 0.37 - 2.0)
                        .collect::<Vec<f32>>(),
                )
            })
            .collect();
        let ids: Vec<u32> = (0..items.len() as u32).cycle().take(200).collect();
        for metric in [ItemMetric::L1, ItemMetric::L2] {
            let legacy = metric.build_arena(&items).expect("arena");
            let aligned = metric
                .build_arena_with(&items, ArenaLayout::Aligned)
                .expect("arena");
            let q = &items[4];
            let mut out_l = vec![0.0; ids.len()];
            let mut out_a = vec![0.0; ids.len()];
            let charge_l = metric.distance_batch(&items, Some(&legacy), q, &ids, &mut out_l);
            let charge_a = metric.distance_batch(&items, Some(&aligned), q, &ids, &mut out_a);
            let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out_l), bits(&out_a), "{}: answers", metric.name());
            assert_eq!(charge_l, charge_a, "{}: (total, span)", metric.name());
        }
    }

    #[test]
    fn aligned_bounded_matches_legacy() {
        let items = vectors();
        let ids: Vec<u32> = (0..items.len() as u32).collect();
        let bounds: Vec<f64> = ids.iter().map(|&i| f64::from(i % 3) * 1.5).collect();
        for metric in [ItemMetric::L1, ItemMetric::L2] {
            let legacy = metric.build_arena(&items).expect("arena");
            let aligned = metric
                .build_arena_with(&items, ArenaLayout::Aligned)
                .expect("arena");
            let q = &items[2];
            let mut out_l = vec![None; ids.len()];
            let mut out_a = vec![None; ids.len()];
            let charge_l = metric
                .distance_batch_bounded(&items, Some(&legacy), q, &ids, &bounds, &mut out_l)
                .expect("legacy");
            let charge_a = metric
                .distance_batch_bounded(&items, Some(&aligned), q, &ids, &bounds, &mut out_a)
                .expect("aligned Lp is supported");
            assert_eq!(out_l, out_a, "{}", metric.name());
            assert_eq!(charge_l, charge_a, "{}: (total, span)", metric.name());
        }
    }

    #[test]
    fn bounded_edit_rejects_aligned_arena_with_typed_error() {
        let texts = words();
        // A mis-threaded aligned (vector) arena handed to the edit kernel.
        let aligned = ItemMetric::L2
            .build_arena_with(&vectors(), ArenaLayout::Aligned)
            .expect("arena");
        let ids = [0u32, 1];
        let bounds = [2.0, 2.0];
        let mut out = [None, None];
        let err = ItemMetric::Edit
            .distance_batch_bounded(&texts, Some(&aligned), &texts[0], &ids, &bounds, &mut out)
            .expect_err("aligned arenas must be rejected, not silently degraded");
        assert_eq!(err.kernel, "edit_bounded");
        assert_eq!(err.layout, ArenaLayout::Aligned);
        assert!(err.to_string().contains("edit_bounded"));
    }

    #[test]
    fn arena_push_via_metric() {
        let items = words();
        let mut arena = ItemMetric::Edit.build_arena(&items).expect("arena");
        assert!(ItemMetric::Edit.arena_push(&mut arena, &Item::text("new")));
        assert_eq!(arena.len(), items.len() + 1);
        assert!(!ItemMetric::Edit.arena_push(&mut arena, &Item::vector(vec![1.0])));
    }
}
