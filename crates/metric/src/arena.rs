//! Flat object arena: contiguous device-style storage for a homogeneous
//! object collection.
//!
//! [`Item`] keeps every payload behind its own heap allocation, which is the
//! right shape for a host-side dynamic union but the wrong shape for a
//! distance kernel: each evaluation chases a pointer and the payloads of
//! neighbouring objects share no cache lines. GPU similarity-search systems
//! (Johnson et al.'s billion-scale search, GENIE's generic match kernels)
//! all store objects as one contiguous buffer plus offsets, so a batch of
//! distance evaluations streams linearly through memory. [`ObjectArena`] is
//! that layout: one `f32` buffer for vector datasets, one byte buffer for
//! string datasets, and an offsets array mapping object ids to payload
//! ranges. The batched kernels of [`crate::BatchMetric`] resolve ids against
//! an arena instead of an `&[Item]`.

use crate::object::Item;

/// Payload family stored by an arena. A dataset is always homogeneous
/// (Table 2 of the paper), so one arena holds exactly one family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArenaKind {
    /// Byte-string payloads (Words, DNA; edit distance).
    Text,
    /// Dense `f32` payloads (T-Loc, Vector, Color; L1/L2/angular).
    Vector,
}

/// Contiguous storage for the payloads of a homogeneous object collection,
/// addressed by object id.
///
/// Ids are indices into the originating collection; the arena stores the
/// payload of object `i` at `offsets[i]..offsets[i + 1]` of the buffer
/// matching its [`ArenaKind`]. Appending keeps ids dense, mirroring how the
/// GTS object store only ever grows (ids are never recycled).
#[derive(Clone, Debug, Default)]
pub struct ObjectArena {
    text: bool,
    /// Vector payloads, flat (`Vector` arenas).
    floats: Vec<f32>,
    /// String payloads, flat bytes (`Text` arenas).
    bytes: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` is object `i`'s payload range; length
    /// `len + 1` with `offsets[0] = 0`.
    offsets: Vec<u32>,
}

impl ObjectArena {
    /// An empty arena of the given kind.
    pub fn new(kind: ArenaKind) -> ObjectArena {
        ObjectArena {
            text: kind == ArenaKind::Text,
            floats: Vec::new(),
            bytes: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Build an arena over a homogeneous `Item` collection. Returns `None`
    /// when the collection is empty or mixes text and vector objects (no
    /// flat layout exists; callers fall back to per-pair access).
    pub fn from_items(items: &[Item]) -> Option<ObjectArena> {
        let kind = match items.first()? {
            Item::Text(_) => ArenaKind::Text,
            Item::Vector(_) => ArenaKind::Vector,
        };
        let mut arena = ObjectArena::new(kind);
        arena.reserve_for(items);
        for item in items {
            if !arena.push_item(item) {
                return None;
            }
        }
        Some(arena)
    }

    fn reserve_for(&mut self, items: &[Item]) {
        self.offsets.reserve(items.len());
        let payload: usize = items.iter().map(Item::arity).sum();
        if self.text {
            self.bytes.reserve(payload);
        } else {
            self.floats.reserve(payload);
        }
    }

    /// Append one object's payload; its id is the previous [`len`].
    /// Returns `false` (arena unchanged) if the item's family does not
    /// match the arena's kind, or if the flat buffer would outgrow the
    /// `u32` offset space (callers degrade to per-pair access rather than
    /// silently wrapping payload ranges).
    ///
    /// [`len`]: ObjectArena::len
    pub fn push_item(&mut self, item: &Item) -> bool {
        match (self.text, item) {
            (true, Item::Text(s)) => {
                if u32::try_from(self.bytes.len() + s.len()).is_err() {
                    return false;
                }
                self.bytes.extend_from_slice(s.as_bytes());
                self.offsets.push(self.bytes.len() as u32);
                true
            }
            (false, Item::Vector(v)) => {
                if u32::try_from(self.floats.len() + v.len()).is_err() {
                    return false;
                }
                self.floats.extend_from_slice(v);
                self.offsets.push(self.floats.len() as u32);
                true
            }
            _ => false,
        }
    }

    /// Payload family of this arena.
    pub fn kind(&self) -> ArenaKind {
        if self.text {
            ArenaKind::Text
        } else {
            ArenaKind::Vector
        }
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the arena holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The byte-string payload of object `id`.
    ///
    /// # Panics
    /// Panics if this is a vector arena or `id` is out of range.
    #[inline]
    pub fn text_bytes(&self, id: u32) -> &[u8] {
        debug_assert!(self.text, "text_bytes on a vector arena");
        let (lo, hi) = self.range(id);
        &self.bytes[lo..hi]
    }

    /// The vector payload of object `id`.
    ///
    /// # Panics
    /// Panics if this is a text arena or `id` is out of range.
    #[inline]
    pub fn vector(&self, id: u32) -> &[f32] {
        debug_assert!(!self.text, "vector on a text arena");
        let (lo, hi) = self.range(id);
        &self.floats[lo..hi]
    }

    #[inline]
    fn range(&self, id: u32) -> (usize, usize) {
        let id = id as usize;
        (self.offsets[id] as usize, self.offsets[id + 1] as usize)
    }

    /// Payload length (characters or dimensions) of object `id` — the same
    /// quantity as [`Item::arity`], read without touching the payload.
    #[inline]
    pub fn arity(&self, id: u32) -> usize {
        let (lo, hi) = self.range(id);
        hi - lo
    }

    /// Bytes occupied by the flat buffers + offsets (device residency of
    /// the arena layout).
    pub fn size_bytes(&self) -> u64 {
        (self.bytes.len()
            + self.floats.len() * std::mem::size_of::<f32>()
            + self.offsets.len() * std::mem::size_of::<u32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_arena_roundtrip() {
        let items = [Item::text("abc"), Item::text(""), Item::text("zz")];
        let a = ObjectArena::from_items(&items).expect("homogeneous");
        assert_eq!(a.kind(), ArenaKind::Text);
        assert_eq!(a.len(), 3);
        assert_eq!(a.text_bytes(0), b"abc");
        assert_eq!(a.text_bytes(1), b"");
        assert_eq!(a.text_bytes(2), b"zz");
        assert_eq!(a.arity(1), 0);
        assert_eq!(a.arity(2), 2);
    }

    #[test]
    fn vector_arena_roundtrip() {
        let items = [Item::vector(vec![1.0, 2.0]), Item::vector(vec![3.0])];
        let a = ObjectArena::from_items(&items).expect("homogeneous");
        assert_eq!(a.kind(), ArenaKind::Vector);
        assert_eq!(a.vector(0), &[1.0, 2.0]);
        assert_eq!(a.vector(1), &[3.0]);
        assert_eq!(a.arity(0), 2);
    }

    #[test]
    fn mixed_and_empty_rejected() {
        assert!(ObjectArena::from_items(&[]).is_none());
        let mixed = [Item::text("a"), Item::vector(vec![1.0])];
        assert!(ObjectArena::from_items(&mixed).is_none());
    }

    #[test]
    fn push_grows_and_rejects_mismatch() {
        let mut a = ObjectArena::new(ArenaKind::Text);
        assert!(a.is_empty());
        assert!(a.push_item(&Item::text("hi")));
        assert!(!a.push_item(&Item::vector(vec![0.0])), "kind mismatch");
        assert_eq!(a.len(), 1);
        assert_eq!(a.text_bytes(0), b"hi");
    }

    #[test]
    fn size_accounts_payload_and_offsets() {
        let a = ObjectArena::from_items(&[Item::text("abcd")]).expect("arena");
        assert_eq!(a.size_bytes(), 4 + 2 * 4, "4 payload bytes + 2 u32 offsets");
        let v = ObjectArena::from_items(&[Item::vector(vec![0.0; 8])]).expect("arena");
        assert_eq!(v.size_bytes(), 8 * 4 + 2 * 4);
    }
}
